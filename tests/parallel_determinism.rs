//! The load-bearing test for the parallel engine's seed-splitter
//! contract: **every sweep surface produces byte-identical results for
//! any worker count.**
//!
//! Each surface is run at `jobs = 1` and at several parallel worker
//! counts (including whatever `DYNVOTE_JOBS` resolves to, so the CI
//! `parallel-smoke` job exercises 2- and 8-worker schedules), and the
//! full result structures *and* their rendered CSV artifacts are
//! compared for equality. If scheduling ever leaks into results — a
//! shared RNG stream, a slot written by index-of-completion instead of
//! task index — this is the test that goes red.

use dynvote::markov::sweep;
use dynvote::mc::{simulate_replicated, McConfig};
use dynvote::par;
use dynvote::sim::experiments::{results_to_csv, ExperimentPlan};
use dynvote::AlgorithmKind;

/// The parallel worker counts to pit against the serial run: fixed 2
/// and 8, plus the environment's resolution (`DYNVOTE_JOBS` or the
/// machine's core count) so CI can sweep schedules externally.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![2, 8, par::resolve_jobs(None)];
    counts.sort_unstable();
    counts.dedup();
    counts.retain(|&j| j > 1);
    counts
}

#[test]
fn figure_sweep_is_byte_identical_for_any_worker_count() {
    // The ISSUE-mandated grid: 3 algorithms × 8 ratios.
    let algos = [
        AlgorithmKind::Hybrid,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::Voting,
    ];
    let grid = sweep::ratio_grid(0.25, 4.0, 7);
    assert_eq!(grid.len(), 8);
    let serial = sweep::figure_series_jobs(5, &algos, &grid, 1);
    for jobs in worker_counts() {
        let parallel = sweep::figure_series_jobs(5, &algos, &grid, jobs);
        assert_eq!(serial, parallel, "sweep structs diverged at jobs = {jobs}");
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "sweep CSV diverged at jobs = {jobs}"
        );
    }
}

#[test]
fn mc_replication_batch_is_byte_identical_for_any_worker_count() {
    let config = McConfig {
        n: 5,
        ratio: 1.5,
        horizon: 1_200.0,
        burn_in: 100.0,
        ..McConfig::default()
    };
    let serial = simulate_replicated(AlgorithmKind::Hybrid, &config, 8, 1);
    for jobs in worker_counts() {
        let parallel = simulate_replicated(AlgorithmKind::Hybrid, &config, 8, jobs);
        // Full-struct equality: every replication's every field, plus
        // the across-replication aggregates.
        assert_eq!(serial, parallel, "mc batch diverged at jobs = {jobs}");
    }
}

#[test]
fn experiment_grid_is_byte_identical_for_any_worker_count() {
    let plan = ExperimentPlan {
        algorithms: vec![AlgorithmKind::Hybrid, AlgorithmKind::Voting],
        replications: 2,
        duration: 25.0,
        ..ExperimentPlan::default()
    };
    let serial = plan.execute(1);
    let serial_csv = results_to_csv(&serial);
    for jobs in worker_counts() {
        let parallel = plan.execute(jobs);
        assert_eq!(
            serial, parallel,
            "experiment grid diverged at jobs = {jobs}"
        );
        assert_eq!(
            serial_csv,
            results_to_csv(&parallel),
            "experiment CSV diverged at jobs = {jobs}"
        );
    }
}

#[test]
fn replication_seeds_are_schedule_independent() {
    // The splitter is a pure function of (master, index): anyone can
    // reproduce replication i without running replications 0..i.
    let master = 0xD1CE;
    let batch = simulate_replicated(
        AlgorithmKind::DynamicVoting,
        &McConfig {
            horizon: 800.0,
            burn_in: 50.0,
            seed: master,
            ..McConfig::default()
        },
        4,
        8,
    );
    let lone = dynvote::mc::simulate(
        AlgorithmKind::DynamicVoting,
        &McConfig {
            horizon: 800.0,
            burn_in: 50.0,
            seed: par::seed_for(master, 3),
            ..McConfig::default()
        },
    );
    assert_eq!(batch.replications[3], lone);
}
