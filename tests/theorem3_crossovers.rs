//! Integration test: Theorem 3 — the full crossover table, n = 3..=20.
//!
//! "For n from 3 to 20, there is a crossover point c such that if the
//! repair/failure ratio μ/λ > c, the availability of the hybrid
//! algorithm is greater than the availability of dynamic-linear, while
//! the reverse is true for μ/λ < c."
//!
//! The paper quotes c to two decimals; we reproduce every entry within
//! ±0.01 and certify uniqueness of each crossing by sign-scan (the
//! numeric analogue of the paper's Descartes'-rule argument).

use dynvote::markov::chains::{hybrid_chain, linear_chain};
use dynvote::markov::{theorem3_crossover, THEOREM3_PAPER};

#[test]
fn crossover_table_matches_the_paper() {
    for &(n, paper) in &THEOREM3_PAPER {
        let c = theorem3_crossover(n);
        assert_eq!(c.n, n);
        assert!(
            (c.ratio - paper).abs() < 0.01,
            "n={n}: computed {:.4}, paper {paper}",
            c.ratio
        );
        assert_eq!(c.sign_changes, 1, "n={n}: crossing must be unique");
    }
}

#[test]
fn inequality_direction_matches_the_theorem() {
    // Above the crossover the hybrid wins; below, dynamic-linear wins.
    for &(n, paper) in &THEOREM3_PAPER {
        let above = paper + 0.05;
        let below = paper - 0.05;
        let hybrid_above = hybrid_chain(n, above).site_availability().unwrap();
        let linear_above = linear_chain(n, above).site_availability().unwrap();
        assert!(
            hybrid_above > linear_above,
            "n={n}: hybrid must win at ratio {above}"
        );
        let hybrid_below = hybrid_chain(n, below).site_availability().unwrap();
        let linear_below = linear_chain(n, below).site_availability().unwrap();
        assert!(
            hybrid_below < linear_below,
            "n={n}: dynamic-linear must win at ratio {below}"
        );
    }
}

#[test]
fn paper_summary_holds_for_reasonable_ratios() {
    // "In sum, for networks with three to twenty sites, the hybrid
    // algorithm has greater availability than the dynamic-linear
    // algorithm ... for all reasonable repair/failure ratios." The
    // paper's largest crossover is 1.19, so ratio 1.25 and up is
    // uniformly hybrid territory.
    for n in 3..=20 {
        for ratio in [1.25, 2.0, 5.0, 10.0] {
            let hybrid = hybrid_chain(n, ratio).site_availability().unwrap();
            let linear = linear_chain(n, ratio).site_availability().unwrap();
            if ratio <= 5.0 {
                assert!(hybrid > linear, "n={n} ratio={ratio}");
            } else {
                // At big n and ratio both availabilities approach the
                // ceiling and their difference drops below f64's
                // resolution of the steady-state solve; only require
                // no *detectable* reversal.
                assert!(hybrid > linear - 1e-12, "n={n} ratio={ratio}");
            }
        }
    }
}

#[test]
fn crossover_is_u_shaped_in_n() {
    // The computed table dips from n=3 to its minimum at n=5 and rises
    // monotonically afterwards — the structural shape of the paper's
    // table.
    let table: Vec<f64> = (3..=20).map(|n| theorem3_crossover(n).ratio).collect();
    assert!(table[0] > table[1] && table[1] > table[2], "dip to n=5");
    for w in table[2..].windows(2) {
        assert!(w[0] < w[1], "rise after n=5: {w:?}");
    }
}
