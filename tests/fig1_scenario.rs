//! Integration test: the Fig. 1 partition graph, at both stack levels,
//! for all six algorithms.

use dynvote::sim::{SimConfig, Simulation};
use dynvote::{fig1_partition_graph, run_scenario, AlgorithmKind, ReplicaSystem, SiteSet};

fn set(s: &str) -> SiteSet {
    SiteSet::parse(s).unwrap()
}

/// The distinguished partition per epoch, per the Section VI-A
/// narrative (None = all updates denied).
fn expected(kind: AlgorithmKind) -> [Option<SiteSet>; 4] {
    match kind {
        AlgorithmKind::Voting => [Some(set("ABC")), None, Some(set("CDE")), None],
        AlgorithmKind::DynamicVoting => [Some(set("ABC")), Some(set("AB")), None, None],
        AlgorithmKind::DynamicLinear => [
            Some(set("ABC")),
            Some(set("AB")),
            Some(set("A")),
            Some(set("A")),
        ],
        // The modified hybrid accepts exactly the hybrid's histories.
        AlgorithmKind::Hybrid | AlgorithmKind::ModifiedHybrid => {
            [Some(set("ABC")), Some(set("AB")), None, Some(set("BC"))]
        }
        // The footnote-6 candidate rejects BC at time 4: its pair rule
        // demands a *network majority* alongside the surviving current
        // copy, trading the hybrid's narrow two-of-trio path for many
        // wider ones (which is why it still wins on availability).
        AlgorithmKind::OptimalCandidate => [Some(set("ABC")), Some(set("AB")), None, None],
    }
}

#[test]
fn model_level_matches_the_paper_narrative() {
    for kind in AlgorithmKind::ALL {
        let mut sys = ReplicaSystem::new(5, kind.instantiate(5));
        let reports = run_scenario(&mut sys, &fig1_partition_graph());
        let want = expected(kind);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(
                report.distinguished(),
                want[i],
                "{kind} at {}",
                report.label
            );
        }
    }
}

#[test]
fn protocol_level_matches_the_model_level() {
    // Replay the same partition graph through real messages: every
    // partition gets one update submission, and the set of successful
    // commits must match the model exactly.
    for kind in AlgorithmKind::ALL {
        let mut sim = Simulation::new(SimConfig {
            n: 5,
            algorithm: kind,
            ..SimConfig::default()
        });
        let want = expected(kind);
        let mut committed = Vec::new();
        for (i, step) in fig1_partition_graph().iter().enumerate() {
            sim.impose_partitions(&step.partitions);
            let before = sim.stats().commits;
            let mut winner = None;
            for p in &step.partitions {
                sim.submit_update(p.first().unwrap());
                sim.quiesce();
                if sim.stats().commits > before && winner.is_none() {
                    winner = Some(*p);
                }
            }
            committed.push(winner);
            assert_eq!(winner, want[i], "{kind} at epoch {}", i + 1);
        }
        assert!(sim.check_invariants().is_empty(), "{kind}");
    }
}

#[test]
fn per_partition_verdicts_are_exclusive() {
    // Within each epoch at most one partition commits, for every
    // algorithm — the pessimism property observed at scenario level.
    for kind in AlgorithmKind::ALL {
        let mut sys = ReplicaSystem::new(5, kind.instantiate(5));
        for report in run_scenario(&mut sys, &fig1_partition_graph()) {
            let committed = report
                .outcomes
                .iter()
                .filter(|(_, o)| o.committed())
                .count();
            assert!(committed <= 1, "{kind} at {}", report.label);
        }
    }
}

#[test]
fn fig1_shows_the_size_tradeoff_the_paper_highlights() {
    // "voting's distinguished partition (CDE) is three times as large as
    // dynamic-linear's distinguished partition (A)" at time 3; the
    // hybrid's BC at time 4 is larger than dynamic-linear's A.
    let steps = fig1_partition_graph();
    let mut voting = ReplicaSystem::new(5, AlgorithmKind::Voting.instantiate(5));
    let mut linear = ReplicaSystem::new(5, AlgorithmKind::DynamicLinear.instantiate(5));
    let mut hybrid = ReplicaSystem::new(5, AlgorithmKind::Hybrid.instantiate(5));
    let v = run_scenario(&mut voting, &steps);
    let l = run_scenario(&mut linear, &steps);
    let h = run_scenario(&mut hybrid, &steps);
    assert_eq!(v[2].distinguished().unwrap().len(), 3);
    assert_eq!(l[2].distinguished().unwrap().len(), 1);
    assert_eq!(h[3].distinguished().unwrap().len(), 2);
    assert_eq!(l[3].distinguished().unwrap().len(), 1);
}
