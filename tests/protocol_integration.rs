//! Integration test: the message-level protocol against the model-level
//! semantics, plus end-to-end failure stories the paper tells in prose.

use dynvote::sim::{SimConfig, Simulation};
use dynvote::{AlgorithmKind, ReplicaSystem, SiteId, SiteSet};

fn set(s: &str) -> SiteSet {
    SiteSet::parse(s).unwrap()
}

/// Under a quiesced, failure-free network the protocol must agree with
/// the model on every partition script.
#[test]
fn protocol_agrees_with_model_on_partition_scripts() {
    let scripts: Vec<Vec<&str>> = vec![
        vec!["ABCDE", "ABC", "AB", "ABCD", "ABCDE"],
        vec!["ABCD", "CD", "ACD", "A", "ABCDE"],
        vec!["ABCDE", "ABCDE", "DE", "BCDE", "BD"],
        vec!["ABE", "AB", "B", "BC", "ABCDE"],
    ];
    for kind in AlgorithmKind::ALL {
        // The modified hybrid is excluded from the *equality* check: its
        // Change 1 leaves the choice of replacement "down site"
        // implementation-defined, and the omniscient model (which knows
        // the absent current copy) and the message-level coordinator
        // (which only sees its partition) legitimately choose
        // differently, after which their accept sets may diverge. Both
        // instantiations are safe (chaos tests) and have identical
        // availability (statespace tests); see
        // `dynvote_core::algorithms::modified_hybrid`.
        let exact = kind != AlgorithmKind::ModifiedHybrid;
        for script in &scripts {
            let mut model = ReplicaSystem::new(5, kind.instantiate(5));
            let mut sim = Simulation::new(SimConfig {
                n: 5,
                algorithm: kind,
                ..SimConfig::default()
            });
            for part in script {
                let p = set(part);
                let model_committed = model.attempt_update(p).committed();
                sim.impose_partitions(&[p]);
                let before = sim.stats().commits;
                sim.submit_update(p.first().unwrap());
                sim.quiesce();
                let sim_committed = sim.stats().commits > before;
                if !exact {
                    continue;
                }
                assert_eq!(
                    model_committed, sim_committed,
                    "{kind}: partition {p} of script {script:?}"
                );
                // And the metadata of partition members must agree.
                if model_committed {
                    for site in p.iter() {
                        assert_eq!(
                            model.meta(site),
                            sim.site(site).meta(),
                            "{kind}: metadata at {site} after {p}"
                        );
                    }
                }
            }
            assert!(sim.check_invariants().is_empty(), "{kind}");
        }
    }
}

/// The restart protocol (`Make_Current`, Section V-C): a recovered site
/// in a distinguished partition catches up, and version numbers bump as
/// if an update occurred.
#[test]
fn make_current_bumps_the_version_like_an_update() {
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.crash_site(SiteId(3));
    sim.submit_update(SiteId(0));
    sim.quiesce();
    assert_eq!(sim.site(SiteId(0)).meta().version, 2);
    assert_eq!(sim.site(SiteId(3)).meta().version, 1);
    sim.recover_site(SiteId(3));
    sim.quiesce();
    // Make_Current committed a no-op as version 3, everywhere.
    for i in 0..5 {
        assert_eq!(sim.site(SiteId(i)).meta().version, 3, "site {i}");
    }
    assert!(sim.check_invariants().is_empty());
}

/// A recovered site in a *minority* partition must stay stale ("S
/// cannot request missing updates from anyone; it may try again at a
/// later time").
#[test]
fn make_current_fails_outside_the_distinguished_partition() {
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.crash_site(SiteId(4));
    sim.submit_update(SiteId(0));
    sim.quiesce();
    // E comes back but can only talk to D: a two-site minority.
    sim.impose_partitions(&[set("ABC"), set("DE")]);
    sim.recover_site(SiteId(4));
    sim.quiesce();
    assert_eq!(
        sim.site(SiteId(4)).meta().version,
        1,
        "E must remain stale in the DE minority"
    );
    assert!(sim.check_invariants().is_empty());
}

/// Catch-up inside the commit: a coordinator with a stale copy fetches
/// missing updates before committing (the Catch_Up phase).
#[test]
fn stale_coordinator_catches_up_before_committing() {
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();
    // D and E miss two updates.
    sim.impose_partitions(&[set("ABC"), set("DE")]);
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.submit_update(SiteId(1));
    sim.quiesce();
    assert_eq!(sim.site(SiteId(3)).meta().version, 1);
    // The network heals; an update arrives at stale D, which must fetch
    // versions 2..3 from a current site before committing version 4.
    sim.impose_partitions(&[set("ABCDE")]);
    sim.submit_update(SiteId(3));
    sim.quiesce();
    assert_eq!(sim.site(SiteId(3)).meta().version, 4);
    assert_eq!(sim.site(SiteId(3)).log().len(), 4);
    assert!(sim.check_invariants().is_empty());
}

/// The lock layer: concurrent coordinators cannot deadlock the system
/// (busy votes + timeouts), and progress resumes immediately.
#[test]
fn racing_coordinators_make_progress() {
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        seed: 3,
        ..SimConfig::default()
    });
    // Race two coordinators per round. (Racing *all five* at the same
    // instant livelocks deterministically — every copy is locked by its
    // own coordinator, every vote returns busy, everyone aborts; real
    // deployments break such ties with randomized retry, which is the
    // workload driver's job, not the protocol's.)
    for _ in 0..5 {
        sim.submit_update(SiteId(0));
        sim.submit_update(SiteId(3));
        sim.quiesce();
    }
    let stats = sim.stats();
    assert!(stats.commits >= 5, "at least one commit per round");
    assert_eq!(stats.commits as usize, sim.ledger().len());
    assert!(sim.check_invariants().is_empty());
}

/// Reads are served exactly where updates are (paper footnote 5): the
/// model-level `can_update` answers for both.
#[test]
fn read_availability_equals_update_availability() {
    let mut sys = ReplicaSystem::new(5, AlgorithmKind::Hybrid.instantiate(5));
    sys.attempt_update(SiteSet::all(5));
    sys.attempt_update(set("ABC"));
    for bits in 1u64..(1 << 5) {
        let p = SiteSet::from_bits(bits);
        assert_eq!(sys.can_update(p), sys.decide(p).is_accepted());
    }
}
