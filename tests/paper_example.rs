//! Integration test: the Section IV worked example, executed at *both*
//! levels of the stack — the model-level replica system and the
//! message-level protocol simulator — and checked against the paper's
//! printed state tables.

use dynvote::sim::{SimConfig, Simulation};
use dynvote::{AlgorithmKind, CopyMeta, Distinguished, ReplicaSystem, SiteId, SiteSet};

fn set(s: &str) -> SiteSet {
    SiteSet::parse(s).unwrap()
}

/// The expected `(VN, SC, DS)` at each site after each step, with the
/// paper's version numbers shifted so the opening state is version 9.
struct Expectation {
    partition: &'static str,
    version: u64,
    cardinality: u32,
    distinguished: Distinguished,
}

fn expectations() -> Vec<Expectation> {
    vec![
        Expectation {
            partition: "ABC",
            version: 10,
            cardinality: 3,
            distinguished: Distinguished::Trio(set("ABC")),
        },
        Expectation {
            partition: "AC",
            version: 11,
            cardinality: 3,
            distinguished: Distinguished::Trio(set("ABC")),
        },
        Expectation {
            partition: "BCDE",
            version: 12,
            cardinality: 4,
            distinguished: Distinguished::Single(SiteId(1)),
        },
        Expectation {
            partition: "BE",
            version: 13,
            cardinality: 2,
            distinguished: Distinguished::Single(SiteId(1)),
        },
    ]
}

#[test]
fn section_iv_at_the_model_level() {
    let mut sys = ReplicaSystem::new(5, AlgorithmKind::Hybrid.instantiate(5));
    for _ in 0..9 {
        assert!(sys.attempt_update(SiteSet::all(5)).committed());
    }
    for exp in expectations() {
        let p = set(exp.partition);
        let outcome = sys.attempt_update(p);
        assert!(outcome.committed(), "partition {p} must commit");
        for site in p.iter() {
            let meta = sys.meta(site);
            assert_eq!(meta.version, exp.version, "{p}: version at {site}");
            assert_eq!(meta.cardinality, exp.cardinality, "{p}: SC at {site}");
            assert_eq!(meta.distinguished, exp.distinguished, "{p}: DS at {site}");
        }
    }
    // The paper's final table: A left behind at version 11, C and D at 12.
    assert_eq!(sys.meta(SiteId(0)).version, 11);
    assert_eq!(sys.meta(SiteId(2)).version, 12);
    assert_eq!(sys.meta(SiteId(3)).version, 12);
}

#[test]
fn section_iv_at_the_protocol_level() {
    // The same story through real messages: impose each partition with
    // link failures, submit the update at the site the paper names, and
    // let the three-phase protocol do the rest.
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        algorithm: AlgorithmKind::Hybrid,
        ..SimConfig::default()
    });
    for _ in 0..9 {
        assert!(sim.submit_update(SiteId(0)));
        sim.quiesce();
    }
    let submitters = [SiteId(0), SiteId(0), SiteId(3), SiteId(4)];
    for (exp, submitter) in expectations().iter().zip(submitters) {
        sim.impose_partitions(&[set(exp.partition)]);
        assert!(sim.submit_update(submitter));
        sim.quiesce();
        for site in set(exp.partition).iter() {
            let meta: CopyMeta = sim.site(site).meta();
            assert_eq!(
                meta.version, exp.version,
                "{}: version at {site}",
                exp.partition
            );
            assert_eq!(
                meta.cardinality, exp.cardinality,
                "{}: SC at {site}",
                exp.partition
            );
            assert_eq!(
                meta.distinguished, exp.distinguished,
                "{}: DS at {site}",
                exp.partition
            );
        }
    }
    assert_eq!(sim.stats().commits, 13);
    assert!(sim.check_invariants().is_empty());
}

#[test]
fn updates_the_paper_says_are_hybrid_only() {
    // "Note that neither dynamic voting nor dynamic-linear would permit
    // this update" — the BCDE step after the static-phase AC update.
    for kind in [AlgorithmKind::DynamicVoting, AlgorithmKind::DynamicLinear] {
        let mut sys = ReplicaSystem::new(5, kind.instantiate(5));
        for _ in 0..9 {
            sys.attempt_update(SiteSet::all(5));
        }
        assert!(sys.attempt_update(set("ABC")).committed(), "{kind}");
        assert!(sys.attempt_update(set("AC")).committed(), "{kind}");
        assert!(
            !sys.attempt_update(set("BCDE")).committed(),
            "{kind} must reject BCDE (only the hybrid's trio rule admits it)"
        );
    }
}
