//! Integration test: the three evaluation paths agree.
//!
//! Availability is computed three independent ways — hand-derived
//! chains (transcribed from the papers), machine-derived chains (BFS
//! over the executable kernel), and Monte-Carlo simulation (concrete
//! per-site state, no abstraction). A modelling error in any one of
//! them shows up as disagreement here.

use dynvote::markov::statespace::DerivedChain;
use dynvote::markov::{site_up_probability, sweep};
use dynvote::mc::{simulate, McConfig};
use dynvote::AlgorithmKind;

#[test]
fn hand_and_derived_chains_agree_everywhere() {
    for kind in [
        AlgorithmKind::Voting,
        AlgorithmKind::DynamicVoting,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::Hybrid,
    ] {
        for n in 3..=9 {
            let derived = DerivedChain::build(kind, n);
            for ratio in [0.2, 0.63, 1.0, 2.5, 8.0] {
                let a = sweep::availability(kind, n, ratio);
                let b = derived.site_availability(ratio);
                assert!(
                    (a - b).abs() < 1e-9,
                    "{kind} n={n} ratio={ratio}: hand {a} vs derived {b}"
                );
            }
        }
    }
}

#[test]
fn monte_carlo_confirms_the_analysis() {
    // One long paired run per algorithm at a representative point; the
    // Markov value must fall within the simulation's confidence band
    // (plus a small allowance for residual batch-means bias).
    for kind in AlgorithmKind::ALL {
        let analytic = sweep::availability(kind, 5, 1.0);
        let mc = simulate(
            kind,
            &McConfig {
                n: 5,
                ratio: 1.0,
                horizon: 60_000.0,
                seed: 31_337,
                ..McConfig::default()
            },
        );
        let tolerance = 3.0 * mc.site_half_width + 0.004;
        assert!(
            (analytic - mc.site_availability).abs() < tolerance,
            "{kind}: analytic {analytic} vs simulated {} ± {}",
            mc.site_availability,
            mc.site_half_width
        );
    }
}

#[test]
fn monte_carlo_tracks_the_ratio_axis() {
    // The agreement must hold across the ratio axis, not just at one
    // point (this is what validates the figure shapes).
    for ratio in [0.3, 0.63, 2.0, 6.0] {
        let analytic = sweep::availability(AlgorithmKind::Hybrid, 5, ratio);
        let mc = simulate(
            AlgorithmKind::Hybrid,
            &McConfig {
                n: 5,
                ratio,
                horizon: 40_000.0,
                seed: 7,
                ..McConfig::default()
            },
        );
        assert!(
            (analytic - mc.site_availability).abs() < 3.0 * mc.site_half_width + 0.006,
            "ratio {ratio}: {analytic} vs {}",
            mc.site_availability
        );
    }
}

#[test]
fn marginal_up_fraction_is_exact_in_every_path() {
    // Whatever the algorithm, the marginal distribution of up sites is
    // Binomial(n, p) — a strong internal consistency check on the
    // chains' failure/repair bookkeeping.
    let p = site_up_probability(1.7);
    for kind in AlgorithmKind::ALL {
        let chain = DerivedChain::build(kind, 6).at_ratio(1.7);
        let expected = chain.expected_up().unwrap();
        assert!(
            (expected - 6.0 * p).abs() < 1e-9,
            "{kind}: E[up] {expected} vs {}",
            6.0 * p
        );
    }
}

#[test]
fn heterogeneous_chain_matches_monte_carlo() {
    // The Section VII challenge setting: per-site rates. The unlumped
    // exact chain and the Monte-Carlo simulator must agree — the chain
    // has no symmetry to lean on here, so this validates the unlumped
    // abstraction directly.
    use dynvote::markov::hetero::{hetero_availability, SiteRates};
    use dynvote::LinearOrder;

    let raw: [(f64, f64); 5] = [(1.0, 0.8), (1.0, 2.0), (0.5, 1.0), (2.0, 5.0), (1.0, 3.0)];
    let rates: Vec<SiteRates> = raw
        .iter()
        .map(|&(failure, repair)| SiteRates { failure, repair })
        .collect();
    for kind in [
        AlgorithmKind::Voting,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::Hybrid,
    ] {
        let analytic = hetero_availability(kind, &rates, LinearOrder::lexicographic(5));
        let mc = simulate(
            kind,
            &McConfig {
                rates: Some(raw.to_vec()),
                horizon: 40_000.0,
                seed: 616,
                ..McConfig::default()
            },
        );
        assert!(
            (analytic - mc.site_availability).abs() < 3.0 * mc.site_half_width + 0.006,
            "{kind}: analytic {analytic} vs simulated {} ± {}",
            mc.site_availability,
            mc.site_half_width
        );
    }
}

#[test]
fn modified_hybrid_availability_equals_hybrid() {
    // Section VII: the modified hybrid "permits exactly the same
    // updates", so the availabilities coincide exactly.
    for n in 3..=8 {
        let hybrid = DerivedChain::build(AlgorithmKind::Hybrid, n);
        let modified = DerivedChain::build(AlgorithmKind::ModifiedHybrid, n);
        for ratio in [0.3, 0.8, 1.5, 4.0] {
            let h = hybrid.site_availability(ratio);
            let m = modified.site_availability(ratio);
            assert!((h - m).abs() < 1e-10, "n={n} ratio={ratio}: {h} vs {m}");
        }
    }
}

#[test]
fn footnote6_conjecture_holds_for_odd_n_at_reasonable_ratios_only() {
    // The paper's closing conjecture — the footnote-6 candidate "bests"
    // the hybrid — turns out to be *parity- and ratio-dependent* in the
    // homogeneous model (a finding of this reproduction; see
    // EXPERIMENTS.md): the candidate wins for odd n above a crossover
    // that grows with n, and loses for even n at every ratio we tested.
    for n in [5usize, 7, 9] {
        let candidate = DerivedChain::build(AlgorithmKind::OptimalCandidate, n);
        let hybrid = DerivedChain::build(AlgorithmKind::Hybrid, n);
        for ratio in [2.0, 5.0, 10.0] {
            let c = candidate.site_availability(ratio);
            let h = hybrid.site_availability(ratio);
            assert!(
                c > h,
                "odd n={n} ratio={ratio}: candidate {c} <= hybrid {h}"
            );
        }
    }
    for n in [4usize, 6, 10] {
        let candidate = DerivedChain::build(AlgorithmKind::OptimalCandidate, n);
        let hybrid = DerivedChain::build(AlgorithmKind::Hybrid, n);
        for ratio in [0.5, 2.0, 10.0] {
            let c = candidate.site_availability(ratio);
            let h = hybrid.site_availability(ratio);
            assert!(
                c < h,
                "even n={n} ratio={ratio}: candidate {c} >= hybrid {h}"
            );
        }
    }
    // And at small ratios the hybrid wins even for odd n >= 7.
    let candidate = DerivedChain::build(AlgorithmKind::OptimalCandidate, 7);
    let hybrid = DerivedChain::build(AlgorithmKind::Hybrid, 7);
    assert!(candidate.site_availability(0.3) < hybrid.site_availability(0.3));
}
