//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json).
//!
//! A recursive-descent JSON parser and a writer (compact and pretty)
//! over the vendored `serde` crate's [`Value`] tree. The API surface
//! mirrors the upstream entry points this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`],
//! [`from_value`], and [`Value`] itself (with `Index`, `get`,
//! `as_array`, and scalar `PartialEq` comparisons provided by the
//! vendored `serde`).

#![warn(missing_docs)]

use std::fmt;

pub use serde::{Number, Value};

/// JSON parse/convert error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to its compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Convert a serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize())
}

/// Convert a [`Value`] tree into a deserializable type.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::deserialize(&value).map_err(Error::from)
}

/// Parse JSON text into a deserializable type.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::deserialize(&value).map_err(Error::from)
}

// ----- writer ------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out)?,
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) -> Result<()> {
    if let Number::F64(v) = n {
        if !v.is_finite() {
            return Err(Error(format!("cannot serialize non-finite float {v}")));
        }
    }
    out.push_str(&n.to_string());
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| Error(e.to_string()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char> {
        self.pos += 1; // past 'u'
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // Expect a low surrogate "\uXXXX" immediately after.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| Error("invalid surrogate pair".into()));
                }
            }
            return Err(Error("unpaired surrogate".into()));
        }
        char::from_u32(high).ok_or_else(|| Error("invalid \\u escape".into()))
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error("truncated \\u escape".into()))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error(format!("bad hex digit at byte {}", self.pos)))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        let number = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|e| Error(format!("bad number `{text}`: {e}")))?,
            )
        } else if negative {
            Number::I64(
                text.parse::<i64>()
                    .map_err(|e| Error(format!("bad number `{text}`: {e}")))?,
            )
        } else {
            Number::U64(
                text.parse::<u64>()
                    .map_err(|e| Error(format!("bad number `{text}`: {e}")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\"y","d":-3.5}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_parses_back() {
        let v: Value = from_str(r#"{"rows":[{"k":1},{"k":2}],"tag":"ok"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn large_u64_survives() {
        let text = format!("{}", u64::MAX);
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
