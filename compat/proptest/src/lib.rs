//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Keeps the shape of the proptest API this workspace uses — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`sample::select`],
//! [`any`], `ProptestConfig::with_cases`, and the `prop_assert` family —
//! over a deterministic seeded generator instead of upstream's
//! shrinking value trees.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   per-test seed; reproducing is re-running the (deterministic) test.
//! * **Determinism.** Case streams derive from a fixed hash of the test
//!   name, so failures are stable across runs and machines.
//! * `prop_assume!` skips the case without replacement, so heavily
//!   filtered strategies see fewer effective cases.

use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use rand::{rngs::StdRng, Rng, SeedableRng};

/// Run-shaping knobs (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's name, so each
/// test gets a distinct but stable case stream.
#[doc(hidden)]
#[must_use]
pub fn case_seed(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A generator of random values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map the produced value (stand-in for `Strategy::prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Derive a follow-up strategy from the produced value (stand-in
    /// for `Strategy::prop_flat_map`).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let seed = self.base.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Always produces a clone of the given value (stand-in for
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform values of a whole type (stand-in for `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: rand::Standard>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections (stand-in
    /// for `proptest::collection::SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size: empty range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "vec size: empty range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from
    /// `size` (stand-in for `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniform choice from a slice, cloned eagerly (stand-in for
    /// `proptest::sample::select`).
    pub fn select<T: Clone>(values: &[T]) -> Select<T> {
        assert!(!values.is_empty(), "select: empty choice set");
        Select {
            values: values.to_vec(),
        }
    }

    /// See [`select`].
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }
}

/// The commonly used names (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert within a property test (panics with case context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Inequality assert within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to a `continue` targeting the case loop generated by
/// [`proptest!`]; only valid at the top level of a property body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests (stand-in for `proptest::proptest!`). Each
/// `fn name(pat in strategy, ...) { body }` becomes a `#[test]`-able
/// function running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                $crate::case_seed(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                let ($($arg,)+) = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tagged() -> impl Strategy<Value = (usize, Vec<u64>)> {
        (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0u64..100, n..n + 1)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(n in 2usize..=8, x in -4i32..4) {
            prop_assert!((2..=8).contains(&n));
            prop_assert!((-4..4).contains(&x));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in tagged()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn select_draws_members(k in 0usize..3, pick in crate::sample::select(&[10u8, 20, 30])) {
            let _ = k;
            prop_assert!([10u8, 20, 30].contains(&pick));
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::{SeedableRng, StdRng};
        let mut a = <StdRng as SeedableRng>::seed_from_u64(crate::case_seed("x"));
        let mut b = <StdRng as SeedableRng>::seed_from_u64(crate::case_seed("x"));
        let s = crate::collection::vec(0u64..1000, 3usize..9);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
