//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8).
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the *subset* of the `rand` API it actually
//! uses: a seedable deterministic generator ([`rngs::StdRng`], here
//! xoshiro256++ seeded through SplitMix64), the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`, and the [`SeedableRng`]
//! constructor `seed_from_u64`.
//!
//! The streams differ from upstream `rand`'s `StdRng` (which is
//! ChaCha12); everything in this workspace treats seeds as opaque
//! determinism handles, never as cross-library fixtures, so only
//! *stability within this workspace* matters — and that is guaranteed
//! by the explicit algorithm here, which will never change out from
//! under a recorded fault schedule.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a generator's raw output
/// (the stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling; the bias is < 2^-64
                // per draw, far below anything these simulations can
                // observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                (start..end.wrapping_add(1)).sample_from(rng)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The generator extension trait (stand-in for `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

/// Seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let k = rng.gen_range(3usize..17);
            assert!((3..17).contains(&k));
            let j = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&j));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
