//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build environment has no network access, so the workspace
//! vendors a minimal serde: instead of upstream's visitor-based
//! zero-copy architecture, [`Serialize`] renders a value into a JSON
//! [`Value`] tree and [`Deserialize`] reads one back. `serde_json`
//! (also vendored) supplies the text layer over the same tree.
//!
//! The derive macros (re-exported from `serde_derive`) generate the
//! same *wire shapes* as upstream serde's defaults, so data written by
//! this stand-in round-trips through real serde and vice versa:
//!
//! * named-field struct → JSON object;
//! * newtype struct → the inner value, transparently;
//! * tuple struct → JSON array;
//! * unit enum variant → the variant name as a string;
//! * newtype/tuple/struct enum variant → externally tagged
//!   `{"Variant": ...}`;
//! * `Option` → `null` or the value; `Vec` and tuples → arrays.
//!
//! Field attributes (`#[serde(...)]`) are *not* supported; the
//! workspace does not use them.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON number, kept in its narrowest faithful representation
/// so `u64` bit-sets survive round-trips that `f64` would corrupt.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
}

impl Number {
    /// The value as an `f64` (lossy above 2^53).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as an `i64`, if it fits.
    #[must_use]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v < i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep integral floats recognisable as numbers with
                    // a decimal point, as serde_json does ("1.0").
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no NaN/Inf; upstream errors out. Mirror that at
            // the writer; Display is only reached via writer paths.
            Number::F64(v) => write!(f, "null /* {v} */"),
        }
    }
}

/// The JSON data model shared by the vendored `serde` and `serde_json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, if this is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and absent keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Array element lookup.
    #[must_use]
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|items| items.get(index))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        #[allow(clippy::redundant_closure_call)]
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == ($conv)(*other))
            }
        }
        #[allow(clippy::redundant_closure_call)]
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq!(
    u64 => Number::U64,
    u32 => |v: u32| Number::U64(v.into()),
    i32 => |v: i32| Number::I64(v.into()),
    i64 => Number::I64,
    usize => |v: usize| Number::U64(v as u64),
    f64 => Number::F64,
);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Render into a JSON value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be read back from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse from a JSON value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// The owned-deserialization marker bound (`serde::de::DeserializeOwned`).
pub mod de {
    /// Blanket alias for [`crate::Deserialize`]: the vendored model has
    /// no borrowed deserialization, so every `Deserialize` is owned.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Fetch a named field of an object (derive-macro support).
#[doc(hidden)]
pub fn field<'v>(fields: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))
}

// ----- primitive impls ---------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                let n = n.ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(value)? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected 2-element array"))?;
        if items.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected 3-element array"))?;
        if items.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Maps serialize as objects keyed by the key's JSON string form
        // (matching serde_json's requirement of string-like keys).
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.serialize() {
                    Value::String(s) => s,
                    other => other.to_string_repr(),
                };
                (key, v.serialize())
            })
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Value {
    /// A compact canonical string form (object-key fallback).
    #[must_use]
    fn to_string_repr(&self) -> String {
        match self {
            Value::String(s) => s.clone(),
            Value::Number(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".to_owned(),
            _ => format!("{self:?}"),
        }
    }
}
