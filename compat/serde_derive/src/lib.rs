//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored
//! `serde` crate's `Value`-tree data model. Because the build
//! environment cannot fetch `syn`/`quote`, the input item is parsed by
//! hand from the raw `TokenStream` and the impl is emitted as a source
//! string. Supported shapes (everything this workspace derives):
//!
//! * non-generic named-field structs → JSON objects;
//! * non-generic newtype structs → transparent (the inner value);
//! * non-generic tuple structs → JSON arrays;
//! * non-generic enums with unit / newtype / tuple / struct variants →
//!   `"Variant"` strings and externally tagged `{"Variant": ...}`
//!   objects, matching upstream serde's default representation.
//!
//! `#[serde(...)]` attributes and generic types are rejected with a
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: optional name (named structs/variants only).
struct Field {
    name: Option<String>,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize` for the annotated item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = serialize_struct_body(name, shape);
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Serialize): generated code parses")
}

/// Derive `serde::Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = deserialize_struct_body(name, shape);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("derive(Deserialize): generated code parses")
}

// ----- code generation: Serialize ----------------------------------------

fn serialize_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_owned(),
        Shape::Newtype => "::serde::Serialize::serialize(&self.0)".to_owned(),
        Shape::Tuple(fields) => {
            let items: Vec<String> = (0..fields.len())
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_deref().unwrap_or_else(|| {
                        panic!("derive(Serialize) on {name}: unnamed field in named shape")
                    });
                    format!(
                        "(\"{fname}\".to_string(), ::serde::Serialize::serialize(&self.{fname}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
    }
}

fn serialize_variant_arm(ty: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        Shape::Unit => format!("{ty}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"),
        Shape::Newtype => format!(
            "{ty}::{v}(inner) => ::serde::Value::Object(vec![\
                 (\"{v}\".to_string(), ::serde::Serialize::serialize(inner))]),\n"
        ),
        Shape::Tuple(fields) => {
            let binds: Vec<String> = (0..fields.len()).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b})"))
                .collect();
            format!(
                "{ty}::{v}({binds}) => ::serde::Value::Object(vec![\
                     (\"{v}\".to_string(), ::serde::Value::Array(vec![{items}]))]),\n",
                binds = binds.join(", "),
                items = items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let names: Vec<&str> = fields
                .iter()
                .map(|f| f.name.as_deref().expect("named variant field"))
                .collect();
            let pairs: Vec<String> = names
                .iter()
                .map(|n| format!("(\"{n}\".to_string(), ::serde::Serialize::serialize({n}))"))
                .collect();
            format!(
                "{ty}::{v} {{ {names} }} => ::serde::Value::Object(vec![\
                     (\"{v}\".to_string(), ::serde::Value::Object(vec![{pairs}]))]),\n",
                names = names.join(", "),
                pairs = pairs.join(", ")
            )
        }
    }
}

// ----- code generation: Deserialize --------------------------------------

fn deserialize_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!(
            "match value {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 _ => Err(::serde::Error::custom(\"expected null for {name}\")),\n\
             }}"
        ),
        Shape::Newtype => format!("Ok({name}(::serde::Deserialize::deserialize(value)?))"),
        Shape::Tuple(fields) => {
            let n = fields.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array()\
                     .ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::Error::custom(\"wrong arity for {name}\"));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_deref().expect("named struct field");
                    format!(
                        "{fname}: ::serde::Deserialize::deserialize(\
                             ::serde::field(fields, \"{fname}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let fields = value.as_object()\
                     .ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
    }
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                // Accept the {"Variant": null} spelling too, so hand-written
                // JSON stays forgiving.
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => match inner {{\n\
                         ::serde::Value::Null => Ok({name}::{vn}),\n\
                         _ => Err(::serde::Error::custom(\
                             \"unit variant {name}::{vn} takes no payload\")),\n\
                     }},\n"
                ));
            }
            Shape::Newtype => tagged_arms.push_str(&format!(
                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)),\n"
            )),
            Shape::Tuple(fields) => {
                let n = fields.len();
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let items = inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                         if items.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\
                                 \"wrong arity for {name}::{vn}\"));\n\
                         }}\n\
                         Ok({name}::{vn}({items}))\n\
                     }},\n",
                    items = items.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let fname = f.name.as_deref().expect("named variant field");
                        format!(
                            "{fname}: ::serde::Deserialize::deserialize(\
                                 ::serde::field(fields, \"{fname}\", \"{name}::{vn}\")?)?"
                        )
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let fields = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                         Ok({name}::{vn} {{ {inits} }})\n\
                     }},\n",
                    inits = inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::custom(format!(\n\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => Err(::serde::Error::custom(\n\
                         \"expected string or single-key object for {name}\")),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

// ----- token-stream parsing ----------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut pos, "type name");

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive on {name}: generic types are not supported by the vendored serde_derive");
    }

    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_fields(g.stream(), true, &name))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let fields = parse_fields(g.stream(), false, &name);
                    if fields.len() == 1 {
                        Shape::Newtype
                    } else {
                        Shape::Tuple(fields)
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("derive on {name}: unexpected struct body {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive on {name}: expected enum body, found {other:?}"),
            };
            Item::Enum {
                variants: parse_variants(body, &name),
                name,
            }
        }
        other => panic!("derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Skip outer attributes (including doc comments, which arrive as
/// `#[doc = ...]`) and a `pub` / `pub(...)` visibility prefix.
fn skip_attributes_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Bracket)
                {
                    if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                        reject_serde_attr(&g.stream());
                    }
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn reject_serde_attr(attr: &TokenStream) {
    let mut iter = attr.clone().into_iter();
    if let Some(TokenTree::Ident(id)) = iter.next() {
        if id.to_string() == "serde" {
            panic!("#[serde(...)] attributes are not supported by the vendored serde_derive");
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize, what: &str) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("derive: expected {what}, found {other:?}"),
    }
}

/// Split a field list on top-level commas, tracking `<`/`>` depth so
/// commas inside generic arguments (`HashMap<K, V>`) don't split.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut groups: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth: i64 = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                groups.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

fn parse_fields(stream: TokenStream, named: bool, ty: &str) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut pos = 0;
            skip_attributes_and_vis(&tokens, &mut pos);
            if named {
                let name = expect_ident(&tokens, &mut pos, "field name");
                match tokens.get(pos) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("derive on {ty}: expected `:` after `{name}`, got {other:?}"),
                }
                Field { name: Some(name) }
            } else {
                Field { name: None }
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream, ty: &str) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|tokens| {
            let mut pos = 0;
            skip_attributes_and_vis(&tokens, &mut pos);
            let name = expect_ident(&tokens, &mut pos, "variant name");
            let shape = match tokens.get(pos) {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let fields = parse_fields(g.stream(), false, ty);
                    if fields.len() == 1 {
                        Shape::Newtype
                    } else {
                        Shape::Tuple(fields)
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_fields(g.stream(), true, ty))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    panic!("derive on {ty}: explicit discriminants are not supported")
                }
                other => panic!("derive on {ty}: unexpected variant body {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}
