//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! A minimal wall-clock harness behind the subset of the criterion 0.5
//! API this workspace's benches use: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], and the builder knobs `warm_up_time`,
//! `measurement_time`, `sample_size`.
//!
//! No statistics, plots, or saved baselines: each benchmark warms up,
//! then runs timed samples and prints the median per-iteration time.
//! The numbers are honest but unsophisticated — good for spotting
//! order-of-magnitude regressions, not for publication.
//!
//! Passing `--test` (as `cargo test` does for `harness = false` bench
//! targets) runs every benchmark body exactly once, so `cargo test`
//! stays fast while still executing the bench code paths.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle (stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration before timed samples.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Set the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }

    #[doc(hidden)]
    pub fn configure_from_args(mut self) -> Self {
        // `cargo test` invokes harness=false bench binaries with
        // `--test`; run each body once and skip timing in that mode.
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }
}

/// A named benchmark identifier (stand-in for `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Record the work per iteration (echoed, not used in statistics).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, |b| f(b));
        self
    }

    /// Run a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, |b| f(b, input));
        self
    }

    /// Close the group (kept for API parity; settings die with the value).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut body: impl FnMut(&mut Bencher)) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            mode: if self.criterion.test_mode {
                Mode::TestOnce
            } else {
                Mode::Measure {
                    warm_up: self.criterion.warm_up_time,
                    budget: self.criterion.measurement_time,
                    samples,
                }
            },
            median: None,
        };
        body(&mut bencher);
        match bencher.median {
            Some(median) => println!("{label:<50} {}", format_duration(median)),
            None => println!("{label:<50} ok (test mode)"),
        }
    }
}

enum Mode {
    TestOnce,
    Measure {
        warm_up: Duration,
        budget: Duration,
        samples: usize,
    },
}

/// Per-benchmark timing driver (stand-in for `criterion::Bencher`).
pub struct Bencher {
    mode: Mode,
    median: Option<Duration>,
}

impl Bencher {
    /// Time the routine. In test mode it runs exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::TestOnce => {
                std::hint::black_box(routine());
            }
            Mode::Measure {
                warm_up,
                budget,
                samples,
            } => {
                // Warm up and size one sample so that `samples` samples
                // roughly fill the measurement budget.
                let warm_start = Instant::now();
                let mut iters_per_sample: u64 = 0;
                while warm_start.elapsed() < warm_up || iters_per_sample == 0 {
                    std::hint::black_box(routine());
                    iters_per_sample += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / iters_per_sample as f64;
                let per_sample = budget.as_secs_f64() / samples as f64;
                let iters = ((per_sample / per_iter).ceil() as u64).max(1);

                let mut times: Vec<Duration> = (0..samples)
                    .map(|_| {
                        let start = Instant::now();
                        for _ in 0..iters {
                            std::hint::black_box(routine());
                        }
                        start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX)
                    })
                    .collect();
                times.sort_unstable();
                self.median = Some(times[times.len() / 2]);
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns/iter")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs/iter", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms/iter", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", nanos as f64 / 1_000_000_000.0)
    }
}

/// Group benchmark functions with a shared [`Criterion`] config
/// (stand-in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 8).to_string(), "solve/8");
        assert_eq!(BenchmarkId::from_parameter("hybrid").to_string(), "hybrid");
    }

    #[test]
    fn groups_run_bodies() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("t");
            group.bench_function("noop", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("inp", 3), &3u32, |b, &x| b.iter(|| x * 2));
            group.finish();
        }
        assert!(ran > 0);
    }
}
