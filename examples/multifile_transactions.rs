//! Multi-file transactions — the paper's footnote 2 in action.
//!
//! ```text
//! cargo run --example multifile_transactions
//! ```
//!
//! A seven-site distributed database holds two files with different
//! replication footprints and different replica control algorithms. A
//! transaction that touches both files needs a distinguished partition
//! *for each*, and the write is all-or-nothing.

use dynvote::algorithms::{Hybrid, StaticVoting};
use dynvote::{MultiFileSystem, SiteSet, Transaction};

fn set(s: &str) -> SiteSet {
    SiteSet::parse(s).unwrap()
}

fn report(label: &str, out: &dynvote::TransactionOutcome) {
    println!(
        "{label}: {}",
        if out.committed {
            "COMMITTED"
        } else {
            "aborted"
        }
    );
    for (file, verdict) in &out.verdicts {
        println!("    file #{}: {verdict}", file.index());
    }
}

fn main() {
    // Seven sites A..G. `inventory` lives on the "west" sites with the
    // hybrid algorithm; `orders` lives on the "east" sites under plain
    // majority voting. C, D, E are replicated in both.
    let mut db = MultiFileSystem::new(7);
    let inventory = db.add_file("inventory", set("ABCDE"), Box::new(Hybrid::new()));
    let orders = db.add_file("orders", set("CDEFG"), Box::new(StaticVoting::uniform(5)));
    println!(
        "inventory @ {} (hybrid), orders @ {} (voting)\n",
        db.replication_sites(inventory),
        db.replication_sites(orders)
    );

    // A healthy network serves a cross-file order placement: read the
    // inventory, write the order.
    let place_order = Transaction {
        reads: vec![inventory],
        writes: vec![orders],
    };
    report(
        "place order from ABCDEFG",
        &db.attempt_transaction(set("ABCDEFG"), &place_order),
    );

    // The network splits west/east: ABCD | EFG.
    println!("\n-- partition ABCD | EFG --");
    // The west side holds 4 of inventory's 5 copies but only 2 of
    // orders' 5: the cross-file transaction aborts atomically...
    report(
        "place order from ABCD",
        &db.attempt_transaction(set("ABCD"), &place_order),
    );
    // ...while a pure inventory restock commits.
    report(
        "restock from ABCD",
        &db.attempt_transaction(set("ABCD"), &Transaction::write(&[inventory])),
    );
    // The east side can write orders? EFG is 3 of orders' 5 copies.
    report(
        "order tweak from EFG",
        &db.attempt_transaction(set("EFG"), &Transaction::write(&[orders])),
    );

    // The partition shifts: BCDE together hold 3 of inventory's 4
    // *current* copies (the ABCD restock shrank its quorum base to 4,
    // and E's copy is stale — dynamic voting counts current copies, not
    // bodies) and 3 of orders' 5 — so the cross-file transaction flows
    // again. (It only *reads* inventory, so E's stale copy stays stale;
    // footnote 5 reads move no metadata.)
    println!("\n-- partition A | BCDE | FG --");
    report(
        "cross-file from BCDE",
        &db.attempt_transaction(set("BCDE"), &place_order),
    );
    // CDE alone, though, holds only C and D current for inventory —
    // exactly half of 4, and the tie-breaking distinguished site (A) is
    // absent: atomicity makes the whole transaction abort.
    println!("\n-- partition AB | CDE | FG --");
    report(
        "cross-file from CDE",
        &db.attempt_transaction(set("CDE"), &place_order),
    );

    // Versions tell the story site by site.
    println!("\nfinal versions (.: no copy):");
    for file in [inventory, orders] {
        print!("  {:<10}", db.file_name(file));
        for i in 0..7 {
            match db.version_at(file, dynvote::SiteId::new(i)) {
                Some(v) => print!(" {v}"),
                None => print!(" ."),
            }
        }
        println!();
    }
}
