//! An availability study: regenerate the data behind Figs. 3 and 4 and
//! cross-check the analysis with Monte-Carlo simulation.
//!
//! ```text
//! cargo run --release --example availability_study
//! ```
//!
//! Three independent machines answer the same question — "how often
//! does an update arriving at a random site succeed?":
//!
//! 1. the hand-derived Markov chains of the papers (Fig. 2 et al.);
//! 2. Markov chains *derived mechanically* from the executable kernel;
//! 3. discrete-event Monte-Carlo simulation of the stochastic model.

use dynvote::markov::statespace::DerivedChain;
use dynvote::markov::{self, normalized, sweep};
use dynvote::mc::{simulate, McConfig};
use dynvote::AlgorithmKind;

fn main() {
    // ---- Figs. 3/4: normalised availability curves, five sites ------
    println!("Fig. 3 data (n=5, small ratios):");
    print!("{}", sweep::fig3().to_csv());
    println!("\nFig. 4 data (n=5, big ratios):");
    print!("{}", sweep::fig4().to_csv());

    // ---- Three-way cross-validation at a single point ---------------
    let (n, ratio) = (5, 1.5);
    println!("\nthree-way cross-validation at n={n}, ratio={ratio}:");
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "algorithm", "hand-chain", "derived", "monte-carlo"
    );
    for kind in AlgorithmKind::ALL {
        let fast = sweep::availability(kind, n, ratio);
        let derived = DerivedChain::build(kind, n).site_availability(ratio);
        let mc = simulate(
            kind,
            &McConfig {
                n,
                ratio,
                horizon: 30_000.0,
                seed: 99,
                ..McConfig::default()
            },
        );
        println!(
            "{:<18} {fast:>12.6} {derived:>12.6} {:>12.6}",
            kind.id(),
            mc.site_availability
        );
    }

    // ---- The crossover structure over n ------------------------------
    println!("\nTheorem 3 crossovers (hybrid vs dynamic-linear):");
    for c in markov::theorem3_table() {
        let bar_len = (c.ratio * 40.0) as usize;
        println!("  n={:<3} c={:<7.4} {}", c.n, c.ratio, "#".repeat(bar_len));
    }
    println!("\nthe dip-then-rise shape (minimum near n=5) is the paper's key");
    println!("structural finding: the static trio phase helps most at moderate scale.");

    // ---- Where does normalisation matter? ----------------------------
    let a = sweep::availability(AlgorithmKind::Hybrid, 5, 0.5);
    println!(
        "\nat ratio 0.5: raw availability {:.4}, normalised {:.4} of the",
        a,
        normalized(a, 0.5)
    );
    println!("theoretical ceiling p = mu/(lambda+mu) = 1/3.");
}
