//! Boot a live five-site cluster, load it, kill a node under load,
//! watch quorum commits continue, then restart the node and watch it
//! catch up via `Make_Current`.
//!
//! ```sh
//! cargo run --example live_cluster
//! ```
//!
//! Unlike the discrete-event simulator, this runs the protocol kernel
//! on real OS threads and wall-clock timers (in-process channel
//! transport here; `dynvote serve` / `dynvote loadgen` do the same
//! over loopback TCP).

use dynvote::cluster::wire::{ClientOp, ClientReply};
use dynvote::cluster::{Cluster, ClusterConfig, LoadGen, LoadGenConfig, WorkloadTarget};
use dynvote::{AlgorithmKind, SiteId};
use std::time::Duration;

fn main() {
    let n = 5;
    let config = ClusterConfig::new(n, AlgorithmKind::Hybrid);
    let cluster = Cluster::boot(&config).expect("boot cluster");
    println!("booted {n}-site hybrid cluster (channel transport)\n");

    let burst = |label: &str, cluster: &Cluster| {
        let lg = LoadGenConfig {
            concurrency: 3,
            duration: Duration::from_millis(600),
            read_fraction: 0.1,
            seed: 7,
            ..LoadGenConfig::default()
        };
        let report = LoadGen::run(&lg, |w| {
            Box::new(cluster.client(SiteId(w as u8))) as Box<dyn WorkloadTarget>
        })
        .expect("valid loadgen config");
        println!(
            "{label}: {} commits in {:.2}s ({:.0}/s), p50 {:.3} ms, p99 {:.3} ms",
            report.committed,
            report.duration_secs,
            report.throughput_per_sec,
            report.update_latency.p50_ms,
            report.update_latency.p99_ms,
        );
        report.committed
    };

    // Phase 1: all five sites up.
    let healthy = burst("all sites up      ", &cluster);
    assert!(healthy > 0);

    // Phase 2: kill site E under load — four sites still form a
    // distinguished partition, so commits continue.
    cluster.crash(SiteId(4)).expect("crash E");
    println!("\ncrashed site E");
    let degraded = burst("site E down       ", &cluster);
    assert!(degraded > 0, "quorum commits must continue with E down");
    let meta_e_down = probe_meta(&cluster, SiteId(4));

    // Phase 3: restart E. Make_Current pulls it back to currency.
    cluster.recover(SiteId(4)).expect("recover E");
    assert!(cluster.await_quiescence(Duration::from_secs(10)));
    println!("\nrecovered site E (restart protocol ran)");
    let after = burst("after recovery    ", &cluster);
    assert!(after > 0);

    // E's copy must have caught up past where it stood while down.
    assert!(cluster.await_quiescence(Duration::from_secs(10)));
    let meta_e = probe_meta(&cluster, SiteId(4));
    assert!(
        meta_e.version > meta_e_down.version,
        "E caught up: VN {} -> {}",
        meta_e_down.version,
        meta_e.version
    );
    println!(
        "site E caught up: VN {} while down -> VN {} after recovery",
        meta_e_down.version, meta_e.version
    );

    // Every copy converged, every log is a gapless prefix of the chain.
    let audit = cluster.audit().expect("audit");
    println!(
        "\nfinal audit: {} workload commits, chain length {}, consistent = {}",
        audit.commits, audit.chain_len, audit.consistent
    );
    assert!(audit.consistent, "violations: {:?}", audit.violations);
    cluster.shutdown();
}

fn probe_meta(cluster: &Cluster, site: SiteId) -> dynvote::CopyMeta {
    let mut client = cluster.client(site);
    match client.request(ClientOp::Probe { key: 0 }).expect("probe") {
        ClientReply::Probe { meta, .. } => meta,
        other => panic!("unexpected probe reply {other:?}"),
    }
}
