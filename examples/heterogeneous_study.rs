//! The Section VII challenge, explored: heterogeneous reliability, the
//! placement of the distinguished site, and witness placement.
//!
//! ```text
//! cargo run --release --example heterogeneous_study
//! ```
//!
//! The paper closes by asking for the optimal *dynamic* vote assignment
//! "in heterogeneous models … which lack uniformity in repair/failure
//! ratios". This example measures the knobs the algorithm family
//! actually exposes when sites differ in reliability.

use dynvote::algorithms::VotingWithWitnesses;
use dynvote::markov::hetero::{
    hetero_availability, hetero_chain_for, optimal_order, order_study, SiteRates,
};
use dynvote::{AlgorithmKind, LinearOrder, SiteSet};

fn main() {
    // Five sites from flaky to rock-solid.
    let rates = [
        SiteRates {
            failure: 1.0,
            repair: 0.6,
        },
        SiteRates {
            failure: 1.0,
            repair: 1.0,
        },
        SiteRates {
            failure: 1.0,
            repair: 2.0,
        },
        SiteRates {
            failure: 1.0,
            repair: 4.0,
        },
        SiteRates {
            failure: 1.0,
            repair: 8.0,
        },
    ];
    println!("per-site up-probabilities:");
    for (i, r) in rates.iter().enumerate() {
        println!(
            "  site {i}: p = {:.3}  (fails ~1/day, repairs in ~{:.1} h)",
            r.up_probability(),
            24.0 / r.repair
        );
    }

    // --- Knob 1: where does the distinguished site belong? ----------
    println!("\ndistinguished-site placement (site availability):");
    println!(
        "{:<18} {:>16} {:>16} {:>10}",
        "algorithm", "reliable-first", "reliable-last", "gain"
    );
    for kind in AlgorithmKind::ALL {
        let study = order_study(kind, &rates);
        println!(
            "{:<18} {:>16.6} {:>16.6} {:>+10.4}",
            kind.id(),
            study.reliable_first,
            study.reliable_last,
            study.reliable_first - study.reliable_last
        );
    }
    println!("\nonly dynamic-linear responds: its tie-break gamble belongs on the");
    println!("most reliable site — and so placed, it overtakes the hybrid, whose");
    println!("trio mechanism provably never consults the ordering.");

    // Exhaustive confirmation over all 5! = 120 orders.
    let (best_order, best) = optimal_order(AlgorithmKind::DynamicLinear, &rates);
    let top = (0..5)
        .map(dynvote::SiteId::new)
        .max_by_key(|s| best_order.rank(*s))
        .unwrap();
    println!(
        "exhaustive search over all 120 orders: best availability {best:.6}, top-ranked site {top} (the most reliable) — reliable-first is globally optimal."
    );

    // --- Knob 2: where does a witness belong? ------------------------
    println!("\nwitness placement (two copies + one witness, three sites):");
    let three = [
        SiteRates {
            failure: 1.0,
            repair: 8.0,
        },
        SiteRates {
            failure: 1.0,
            repair: 2.0,
        },
        SiteRates {
            failure: 1.0,
            repair: 0.7,
        },
    ];
    for witness in 0..3usize {
        let copies: SiteSet = (0..3)
            .filter(|&i| i != witness)
            .map(dynvote::SiteId::new)
            .collect();
        let a = hetero_chain_for(
            Box::new(VotingWithWitnesses::uniform(3, copies)),
            &three,
            LinearOrder::lexicographic(3),
        )
        .site_availability()
        .expect("irreducible");
        println!(
            "  witness on site {witness} (p={:.3}): availability {a:.6}",
            three[witness].up_probability()
        );
    }
    println!("  -> data copies want reliable homes; the witness takes the flaky one.");

    // --- How big is heterogeneity's effect overall? -------------------
    println!("\nhybrid availability: heterogeneous vs matched homogeneous mean:");
    let hetero = hetero_availability(AlgorithmKind::Hybrid, &rates, LinearOrder::lexicographic(5));
    let mean_p: f64 = rates.iter().map(|r| r.up_probability()).sum::<f64>() / 5.0;
    let matched_ratio = mean_p / (1.0 - mean_p);
    let homo = dynvote::markov::availability(AlgorithmKind::Hybrid, 5, matched_ratio);
    println!("  heterogeneous:         {hetero:.6}");
    println!("  homogeneous (same p̄):  {homo:.6}");
    println!("  -> here heterogeneity *helps* the dynamic algorithm: its");
    println!("     shrinking quorum gravitates towards whichever sites stay up,");
    println!("     so a few very reliable sites beat uniformly mediocre ones in");
    println!("     this configuration — the opposite of static voting folklore.");
}
