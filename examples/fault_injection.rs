//! Fault injection: run the message-level protocol through crashes,
//! partitions and message loss, and watch Theorem 1 hold.
//!
//! ```text
//! cargo run --example fault_injection
//! ```
//!
//! The discrete-event simulator executes the full Section V protocol —
//! voting, catch-up, two-phase commit, the cooperative termination
//! protocol and the restart protocol — while an adversarial schedule
//! crashes sites, severs links and drops 10% of messages. The engine's
//! omniscient ledger confirms that no interleaving ever commits two
//! different updates at the same version.

use dynvote::sim::{FaultSchedule, NemesisProfile, SimConfig, Simulation};
use dynvote::{AlgorithmKind, SiteId};

fn main() {
    // ---- Act 1: a scripted catastrophe -------------------------------
    println!("=== Act 1: scripted coordinator crash (the 2PC blocking window) ===");
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        algorithm: AlgorithmKind::Hybrid,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();
    println!(
        "v1 committed everywhere; chain length {}",
        sim.ledger().len()
    );

    // A starts an update and crashes while the votes are in flight.
    sim.submit_update(SiteId(0));
    sim.run_until(sim.clock() + 0.015);
    sim.crash_site(SiteId(0));
    sim.run_until(sim.clock() + 1.0);
    println!(
        "coordinator A crashed mid-protocol; B..E hold prepare records: {}",
        (1..5)
            .map(|i| sim.site(SiteId(i)).is_in_doubt().to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // The in-doubt locks block new updates — the price of 2PC safety.
    sim.submit_update(SiteId(2));
    sim.run_until(sim.clock() + 1.0);
    println!(
        "update at C while in doubt: commits = {} (still blocked)",
        sim.stats().commits
    );

    // A recovers; its presumed-abort answer releases everyone.
    sim.recover_site(SiteId(0));
    sim.quiesce();
    sim.submit_update(SiteId(2));
    sim.quiesce();
    println!(
        "after A recovers: commits = {}, violations = {:?}",
        sim.stats().commits,
        sim.check_invariants()
    );

    // ---- Act 2: a nemesis schedule -----------------------------------
    // The chaos is no longer ad-hoc: it is a serializable FaultSchedule,
    // so the exact same adversary can be saved, shared and replayed
    // (`sim.apply_schedule` is deterministic per engine seed).
    println!("\n=== Act 2: 200 time units under a generated nemesis schedule ===");
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        algorithm: AlgorithmKind::Hybrid,
        drop_probability: 0.10,
        seed: 42,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();

    let schedule = FaultSchedule::generate(5, 200.0, 42, &NemesisProfile::default());
    println!(
        "schedule: {} events (crashes, partitions, one-way cuts, lossy/",
        schedule.len()
    );
    println!(
        "duplicating/reordering bursts), horizon {:.0}",
        schedule.end_time()
    );
    sim.apply_schedule(&schedule);
    sim.schedule_poisson_arrivals(4.0, 200.0);
    sim.run_until(220.0);

    // Heal the world and let every blocked transaction resolve.
    sim.heal();
    sim.quiesce();

    let stats = sim.stats();
    println!("updates submitted   {}", stats.submitted);
    println!("commits             {}", stats.commits);
    println!("rejected (quorum)   {}", stats.rejected);
    println!("rejected (locked)   {}", stats.lock_busy);
    println!(
        "messages dropped    {}/{}",
        stats.messages_dropped, stats.messages_sent
    );
    println!("messages duplicated {}", stats.messages_duplicated);
    println!("site crashes        {}", stats.site_crashes);

    let violations = sim.check_invariants();
    assert!(
        violations.is_empty(),
        "consistency violated: {violations:?}"
    );
    println!("\nconsistency: OK — the committed history is a single chain of");
    println!(
        "{} versions, and every site's log is a prefix of it.",
        sim.ledger().len()
    );

    // Final updates prove the healed system converges. (The channel
    // still drops 10% of messages, so a site can miss a vote request
    // and sit out a round — it simply stays stale, unlocked, and joins
    // the next quorum; a few rounds suffice.)
    for round in 1..=10 {
        sim.submit_update(SiteId(3));
        sim.quiesce();
        let versions: Vec<u64> = (0..5).map(|i| sim.site(SiteId(i)).meta().version).collect();
        if versions.iter().all(|&v| v == versions[0]) {
            println!(
                "converged after {round} round(s): all sites at v{}",
                versions[0]
            );
            break;
        }
        println!("round {round}: versions {versions:?} (a vote request was dropped)");
    }
    assert!(sim.check_invariants().is_empty());
}
