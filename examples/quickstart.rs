//! Quickstart: manage a replicated file with the hybrid algorithm.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through the crate's three levels: the pure decision kernel, the
//! model-level replica system, and the analytic availability machinery.

use dynvote::algorithms::Hybrid;
use dynvote::{markov, AlgorithmKind, ReplicaSystem, SiteSet};

fn main() {
    // --- Level 1: a replica system under explicit partitions ---------
    // A file replicated at five sites A..E, managed by the hybrid
    // algorithm of Jajodia & Mutchler.
    let mut system = ReplicaSystem::new(5, Hybrid::new());

    println!("fresh system:\n{}", system.state_table());

    // The whole network is connected: updates flow.
    let outcome = system.attempt_update(SiteSet::all(5));
    println!("update in ABCDE: {}", outcome.verdict);

    // The network partitions into ABC | DE. The majority side still
    // serves updates...
    let abc = SiteSet::parse("ABC").unwrap();
    let de = SiteSet::parse("DE").unwrap();
    println!("update in ABC:   {}", system.attempt_update(abc).verdict);
    // ...and the minority side is refused, keeping the copies
    // consistent.
    println!("update in DE:    {}", system.attempt_update(de).verdict);

    // Dynamic voting's trick: the quorum base shrank to ABC, so losing
    // yet another site still leaves a quorum — 2 of 3 current copies —
    // where static voting (needing 3 of 5) would already be stuck.
    let ab = SiteSet::parse("AB").unwrap();
    println!("update in AB:    {}", system.attempt_update(ab).verdict);
    println!("\nstate after the partitions:\n{}", system.state_table());

    // --- Level 2: exact availability numbers -------------------------
    // How much availability does each algorithm offer at a
    // repair/failure ratio of 2 (sites up two thirds of the time)?
    println!("site availability at n=5, mu/lambda = 2:");
    for kind in AlgorithmKind::ALL {
        let a = markov::availability(kind, 5, 2.0);
        println!("  {:<18} {a:.6}", kind.id());
    }

    // --- Level 3: the paper's headline number -------------------------
    let c = markov::theorem3_crossover(5);
    println!(
        "\nthe hybrid overtakes dynamic-linear at mu/lambda = {:.3} (paper: 0.63)",
        c.ratio
    );
}
