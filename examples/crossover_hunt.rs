//! Crossover hunting: map where each algorithm overtakes another, and
//! test the paper's Section VII conjecture about the "optimal"
//! algorithm.
//!
//! ```text
//! cargo run --release --example crossover_hunt
//! ```
//!
//! Theorem 3 locates the hybrid/dynamic-linear crossovers; this example
//! extends the same machinery to every pair in the family, and then
//! evaluates the footnote-6 candidate the authors conjectured to beat
//! the hybrid ("Preliminary evidence suggests that the hybrid algorithm
//! is in turn bested by...").

use dynvote::markov::statespace::DerivedChain;
use dynvote::markov::{crossover, sweep};
use dynvote::AlgorithmKind;

fn pairwise(n: usize, first: AlgorithmKind, second: AlgorithmKind) {
    let a = DerivedChain::build(first, n);
    let b = DerivedChain::build(second, n);
    let diff = |r: f64| a.site_availability(r) - b.site_availability(r);
    let found = crossover::find_crossovers(n, diff, 0.05, 5.0);
    match found.as_slice() {
        [] => {
            let sample = diff(1.0);
            println!(
                "  {:<18} vs {:<18} no crossover in [0.05, 5]; {} dominates",
                first.id(),
                second.id(),
                if sample > 0.0 {
                    first.id()
                } else {
                    second.id()
                }
            );
        }
        list => {
            for c in list {
                println!(
                    "  {:<18} vs {:<18} crossover at ratio {:.4}",
                    first.id(),
                    second.id(),
                    c.ratio
                );
            }
        }
    }
}

fn main() {
    let n = 5;
    println!("pairwise crossovers at n = {n} (who wins above the ratio):");
    let contenders = [
        AlgorithmKind::Voting,
        AlgorithmKind::DynamicVoting,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::Hybrid,
        AlgorithmKind::OptimalCandidate,
    ];
    for (i, &first) in contenders.iter().enumerate() {
        for &second in &contenders[i + 1..] {
            pairwise(n, first, second);
        }
    }

    // ---- The Section VII conjecture -----------------------------------
    println!("\nSection VII conjecture: candidate >= hybrid everywhere?");
    let mut worst = f64::INFINITY;
    let mut worst_at = (0usize, 0.0f64);
    for n in 3..=10 {
        let candidate = DerivedChain::build(AlgorithmKind::OptimalCandidate, n);
        for i in 1..=50 {
            let ratio = 0.2 * f64::from(i);
            let margin = candidate.site_availability(ratio)
                - sweep::availability(AlgorithmKind::Hybrid, n, ratio);
            if margin < worst {
                worst = margin;
                worst_at = (n, ratio);
            }
        }
    }
    println!(
        "  minimum margin over n=3..10, ratio=0.2..10: {worst:+.3e} at n={}, ratio={:.1}",
        worst_at.0, worst_at.1
    );
    if worst >= -1e-12 {
        println!("  the conjecture HOLDS on the grid: the candidate never loses.");
    } else {
        println!("  counterexample found — see EXPERIMENTS.md for discussion.");
    }

    // ---- How big is the win? ------------------------------------------
    println!("\nhybrid's edge over dynamic-linear by n (ratio = 2):");
    for n in 3..=12 {
        let h = sweep::availability(AlgorithmKind::Hybrid, n, 2.0);
        let l = sweep::availability(AlgorithmKind::DynamicLinear, n, 2.0);
        let bar = "#".repeat(((h - l) * 20_000.0) as usize);
        println!("  n={n:<3} +{:.5} {bar}", h - l);
    }
}
