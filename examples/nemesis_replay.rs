//! Nemesis schedules as shareable bug reports: serialize, replay,
//! minimize.
//!
//! ```text
//! cargo run --example nemesis_replay
//! ```
//!
//! A `FaultSchedule` is a plain data value — a list of time-stamped
//! crash / partition / one-way-cut / lossy / duplicate / reorder
//! windows — so a failing chaos run can be written to JSON, attached to
//! a bug report, and replayed bit-for-bit (the engine draws all its
//! randomness from the seeded RNG; same seed + same schedule means the
//! same event stream). When a schedule *does* trigger a violation, the
//! delta-debugging minimizer strips it down to a 1-minimal reproducer.

use dynvote::sim::{minimize, FaultSchedule, NemesisProfile, SimConfig, Simulation};
use dynvote::{AlgorithmKind, SiteId};

/// One deterministic chaos run; returns the sim for inspection.
fn run(schedule: &FaultSchedule, trap: Option<SiteId>) -> Simulation {
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        algorithm: AlgorithmKind::Hybrid,
        seed: 9,
        ..SimConfig::default()
    });
    if let Some(site) = trap {
        sim.set_divergence_trap(site);
    }
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.apply_schedule(schedule);
    sim.schedule_poisson_arrivals(3.0, 60.0);
    sim.run_until(75.0);
    sim.heal();
    sim.quiesce();
    sim
}

fn main() {
    // ---- Serialize and replay ----------------------------------------
    println!("=== A schedule is data: JSON round-trip, identical replay ===");
    let schedule = FaultSchedule::generate(5, 60.0, 7, &NemesisProfile::default());
    let json = schedule.to_json();
    println!(
        "generated {} events; first lines of the JSON:",
        schedule.len()
    );
    for line in json.lines().take(8) {
        println!("    {line}");
    }
    println!("    ...");

    let replayed = FaultSchedule::from_json(&json).expect("round-trips");
    let (a, b) = (run(&schedule, None), run(&replayed, None));
    assert_eq!(
        format!("{:?}", a.ledger()),
        format!("{:?}", b.ledger()),
        "replay must reproduce the exact committed history"
    );
    println!(
        "replayed: {} commits, {} drops, {} duplicates — ledger identical",
        b.stats().commits,
        b.stats().messages_dropped,
        b.stats().messages_duplicated
    );
    assert!(a.check_invariants().is_empty());

    // ---- Minimize a failing schedule ---------------------------------
    // The protocol has no known divergence bug, so we plant one: a
    // test-only trap that fabricates a violation whenever one chosen
    // site crashes. The minimizer only sees a black-box oracle
    // ("does this schedule still fail?") — exactly what it would see
    // chasing a real bug.
    println!("\n=== Delta-debugging a failing schedule ===");
    let trap = schedule
        .events
        .iter()
        .find_map(|e| match e {
            dynvote::sim::NemesisEvent::Crash { site, .. } => Some(SiteId::new(*site)),
            _ => None,
        })
        .expect("generated schedules contain crashes");
    println!("planted bug: any crash of site {trap:?} corrupts the ledger");

    let mut oracle_calls = 0u32;
    let minimal = minimize(&schedule, |candidate| {
        oracle_calls += 1;
        !run(candidate, Some(trap)).check_invariants().is_empty()
    });
    println!(
        "minimized {} events -> {} in {} oracle runs:",
        schedule.len(),
        minimal.len(),
        oracle_calls
    );
    print!("{}", minimal.to_json());
    assert!(minimal.len() < schedule.len());
    assert!(
        !run(&minimal, Some(trap)).check_invariants().is_empty(),
        "the minimal schedule still reproduces the failure"
    );
    println!("\nthe reproducer still fails — attach that JSON to the bug report.");
}
