//! The paper's Fig. 1 partition graph, replayed against all four
//! classic algorithms side by side.
//!
//! ```text
//! cargo run --example partition_graph
//! ```
//!
//! Five sites fragment and re-join over four epochs; at each epoch an
//! update arrives in every partition. The example shows *which*
//! partition (if any) each algorithm lets commit — reproducing the
//! Section VI-A narrative that motivates the availability analysis:
//! sometimes voting wins (CDE at time 3 vs dynamic-linear's lonely A),
//! sometimes the dynamic algorithms win (AB at time 2), and the hybrid
//! recovers the larger BC partition at time 4.

use dynvote::{fig1_partition_graph, run_scenario, AlgorithmKind, ReplicaSystem};

fn main() {
    let steps = fig1_partition_graph();

    println!("partition graph (Fig. 1):");
    for step in &steps {
        let parts: Vec<String> = step.partitions.iter().map(|p| p.to_string()).collect();
        println!("  {}: {}", step.label, parts.join(" | "));
    }
    println!();

    let kinds = [
        AlgorithmKind::Voting,
        AlgorithmKind::DynamicVoting,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::Hybrid,
    ];

    for kind in kinds {
        println!("=== {} ===", kind.id());
        let mut system = ReplicaSystem::new(5, kind.instantiate(5));
        for report in run_scenario(&mut system, &steps) {
            match report.distinguished() {
                Some(p) => println!(
                    "  {}: partition {p} is distinguished ({} sites serve updates)",
                    report.label,
                    p.len()
                ),
                None => println!("  {}: all updates denied", report.label),
            }
            // Show each partition's verdict with the admitting rule.
            for (partition, outcome) in &report.outcomes {
                println!("      {partition:<6} -> {}", outcome.verdict);
            }
        }
        println!();
    }

    println!("note how the hybrid denies time 3 (A and B each hold only one of");
    println!("the trio ABC) but recovers at time 4: B and C are two of the trio,");
    println!("even though C's copy is stale — step 5 of Is_Distinguished counts");
    println!("trio members in P, not just current copies in I.");
}
