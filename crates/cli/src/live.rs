//! `dynvote serve` / `dynvote loadgen` — the live-cluster commands.
//!
//! `serve` boots an n-node TCP loopback cluster at fixed ports and
//! keeps it running; `loadgen` connects from a separate process,
//! hammers it with a closed-loop workload (optionally crashing and
//! restarting one node mid-run), audits every node, and emits a
//! machine-readable JSON report. `loadgen` exits non-zero on a
//! consistency violation or a missed `--min-commits` floor, so CI can
//! gate on it directly.

use crate::opts::Opts;
use dynvote_cluster::wire::{ClientOp, ClientReply};
use dynvote_cluster::{
    Cluster, ClusterConfig, EventCountEntry, FrontDoorConfig, KeyDist, LoadGen, LoadGenConfig,
    NetCounterEntry, NetStats, OpenLoop, OpenLoopConfig, ShardCounterEntry, ShardStats, TcpClient,
    TransportKind, WorkloadTarget, DEFAULT_MAX_BATCH, MAX_SHARD_THREADS,
};
use dynvote_core::par::resolve_jobs;
use dynvote_core::{AlgorithmKind, ConfigError, SiteId};
use dynvote_protocol::{DurableState, EventKind};
use dynvote_storage::{FsyncPolicy, NodeStore};
use std::net::SocketAddr;
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

fn parse_algo(name: &str) -> Result<AlgorithmKind, String> {
    name.parse()
        .map_err(|_| format!("unknown algorithm {name:?}; see `dynvote help`"))
}

fn secs(value: f64, flag: &str) -> Result<Duration, String> {
    if !value.is_finite() || value < 0.0 {
        return Err(format!("--{flag} must be a non-negative number of seconds"));
    }
    Ok(Duration::from_secs_f64(value))
}

/// `dynvote serve`.
pub fn serve_cmd(opts: &Opts) -> Result<(), String> {
    opts.reject_unknown(&[
        "algo",
        "n",
        "keys",
        "port-base",
        "duration",
        "trace",
        "data-dir",
        "fsync",
        "http-port",
        "max-inflight",
        "max-conns",
        "shard-threads",
        "max-batch",
    ])
    .map_err(|e| format!("{e}; see `dynvote help`"))?;
    let algorithm = parse_algo(opts.get("algo").unwrap_or("hybrid"))?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let keys: usize = opts.get_or("keys", 1).map_err(|e| e.to_string())?;
    // 0 (the default) means auto: explicit request > DYNVOTE_JOBS >
    // hardware thread count, the same resolution every other parallel
    // surface in this repo uses. The node clamps to the object count at
    // boot, so `--keys 1` still runs the single-threaded fast path.
    let shard_threads: usize = opts.get_or("shard-threads", 0).map_err(|e| e.to_string())?;
    let shard_threads = resolve_jobs(Some(shard_threads)).min(MAX_SHARD_THREADS);
    let max_batch: usize = opts
        .get_or("max-batch", DEFAULT_MAX_BATCH)
        .map_err(|e| e.to_string())?;
    let port_base: u16 = opts.get_or("port-base", 7700).map_err(|e| e.to_string())?;
    let duration = secs(
        opts.get_or("duration", 0.0).map_err(|e| e.to_string())?,
        "duration",
    )?;
    let trace: bool = opts.get_or("trace", false).map_err(|e| e.to_string())?;

    let mut config = ClusterConfig::new(n, algorithm)
        .with_transport(TransportKind::Tcp)
        .with_objects(keys)
        .with_port_base(port_base)
        .with_shard_threads(shard_threads)
        .with_max_batch(max_batch)
        .with_trace(trace);
    // The HTTP front door is opt-in; its tuning knobs without
    // --http-port are a typed configuration error, not a silent ignore.
    let http_port: Option<u16> = match opts.get("http-port") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value {raw:?} for --http-port"))?,
        ),
    };
    if http_port.is_none()
        && (opts.get("max-inflight").is_some() || opts.get("max-conns").is_some())
    {
        return Err(ConfigError::Requires {
            field: "--max-inflight / --max-conns",
            requires: "--http-port",
        }
        .to_string());
    }
    if let Some(port) = http_port {
        config = config.with_http(FrontDoorConfig {
            http_port_base: Some(port),
            max_inflight: opts
                .get_or("max-inflight", 512)
                .map_err(|e| e.to_string())?,
            max_conns: opts.get_or("max-conns", 8192).map_err(|e| e.to_string())?,
        });
    }
    // Durability is opt-in; without --data-dir the cluster runs in
    // explicit amnesia mode, and asking for an fsync discipline there
    // is a typed configuration error, not a silent ignore.
    let durable = match (opts.get("data-dir"), opts.get("fsync")) {
        (None, Some(_)) => {
            return Err(ConfigError::Requires {
                field: "--fsync",
                requires: "--data-dir",
            }
            .to_string())
        }
        (None, None) => false,
        (Some(dir), spec) => {
            let fsync = FsyncPolicy::parse(spec.unwrap_or("always"))?;
            config = config.with_data_dir(dir, fsync);
            true
        }
    };
    // Typed validation up front (satellite: no panics on absurd input).
    config.validate().map_err(|e| e.to_string())?;
    let cluster = Cluster::boot(&config).map_err(|e| e.to_string())?;
    for i in 0..n {
        let site = SiteId(i as u8);
        let addr = cluster.addr(site).expect("tcp cluster has addresses");
        match cluster.http_addr(site) {
            Some(http) => println!("site {site} listening on {addr} (http {http})"),
            None => println!("site {site} listening on {addr}"),
        }
    }
    let mode = if durable { "durable" } else { "amnesia" };
    println!(
        "cluster ready: n={n} algo={algorithm} objects={keys} transport=tcp durability={mode} \
         shard-threads={shard_threads} max-batch={max_batch}"
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    if duration.is_zero() {
        loop {
            thread::sleep(Duration::from_secs(3600));
        }
    }
    thread::sleep(duration);

    let quiesced = cluster.await_quiescence(Duration::from_secs(10));
    let audit = cluster.audit().map_err(|e| e.to_string())?;
    println!(
        "final audit: commits={} chain_len={} consistent={}",
        audit.commits, audit.chain_len, audit.consistent
    );
    for violation in &audit.violations {
        eprintln!("violation: {violation}");
    }
    cluster.shutdown();
    if !quiesced {
        return Err("cluster failed to quiesce before shutdown".into());
    }
    if !audit.consistent {
        return Err("consistency violation detected by the final audit".into());
    }
    Ok(())
}

/// `dynvote recover` — offline inspection of a serve data directory:
/// run the same recovery a booting site would (newest valid snapshot +
/// WAL tail replay, truncating at the first torn record) and print what
/// each site would come back with, without modifying anything.
pub fn recover_cmd(opts: &Opts) -> Result<(), String> {
    opts.reject_unknown(&["data-dir", "n"])
        .map_err(|e| format!("{e}; see `dynvote help`"))?;
    let data_dir = opts
        .get("data-dir")
        .ok_or("--data-dir is required; see `dynvote help`")?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let root = Path::new(data_dir);
    let mut sites: Vec<(usize, std::path::PathBuf)> = std::fs::read_dir(root)
        .map_err(|e| format!("read {data_dir}: {e}"))?
        .filter_map(|entry| {
            let entry = entry.ok()?;
            let name = entry.file_name().into_string().ok()?;
            let index = name.strip_prefix("site-")?.parse().ok()?;
            Some((index, entry.path()))
        })
        .collect();
    if sites.is_empty() {
        return Err(format!(
            "{data_dir} holds no site-<i> directories (is it a `dynvote serve --data-dir` root?)"
        ));
    }
    sites.sort();
    let mut truncated_sites = 0u32;
    for (index, dir) in &sites {
        let (states, report) = NodeStore::inspect(dir, DurableState::initial(n))
            .map_err(|e| format!("site-{index}: {e}"))?;
        let snapshot = report
            .snapshot_epoch
            .map_or_else(|| "none".to_owned(), |e| e.to_string());
        println!(
            "site-{index}: snapshot={snapshot} objects={} segments={} records={} corrupt_snapshots={}",
            states.len(),
            report.segments_replayed,
            report.records_replayed,
            report.corrupt_snapshots,
        );
        for (object, state) in states.iter().enumerate() {
            let prepared = state.prepared.map_or_else(
                || "none".to_owned(),
                |(txn, coordinator)| format!("{txn:?} via {coordinator}"),
            );
            println!(
                "site-{index}/object-{object}: VN={} SC={} DS={:?} log={} commits={} \
                 prepared={prepared} next_seq={}",
                state.meta.version,
                state.meta.cardinality,
                state.meta.distinguished,
                state.log.len(),
                state.commits.len(),
                state.next_seq,
            );
        }
        if let Some(torn) = &report.truncated {
            truncated_sites += 1;
            println!(
                "site-{index}: torn tail at epoch {} offset {}: {} (recovery stops there)",
                torn.epoch, torn.offset, torn.reason
            );
        }
    }
    if truncated_sites > 0 {
        eprintln!("{truncated_sites} site(s) had torn WAL tails; the prefixes above are what a reboot recovers");
    }
    Ok(())
}

/// `dynvote loadgen`.
pub fn loadgen_cmd(opts: &Opts) -> Result<(), String> {
    opts.reject_unknown(&[
        "algo",
        "n",
        "host",
        "port-base",
        "concurrency",
        "duration",
        "read-fraction",
        "keys",
        "key-dist",
        "seed",
        "min-commits",
        "crash",
        "crash-after",
        "restart-after",
        "open-loop",
        "rate",
        "connections",
        "http-port",
    ])
    .map_err(|e| format!("{e}; see `dynvote help`"))?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let host = opts.get("host").unwrap_or("127.0.0.1");
    let port_base: u16 = opts.get_or("port-base", 7700).map_err(|e| e.to_string())?;
    let open_loop: bool = opts.get_or("open-loop", false).map_err(|e| e.to_string())?;
    if !open_loop {
        for flag in ["rate", "connections", "http-port"] {
            if opts.get(flag).is_some() {
                return Err(ConfigError::Requires {
                    field: "--rate / --connections / --http-port",
                    requires: "--open-loop true",
                }
                .to_string());
            }
        }
    }
    let duration = secs(
        opts.get_or("duration", 5.0).map_err(|e| e.to_string())?,
        "duration",
    )?;
    let read_fraction: f64 = opts
        .get_or("read-fraction", 0.1)
        .map_err(|e| e.to_string())?;
    let keys: u32 = opts.get_or("keys", 1).map_err(|e| e.to_string())?;
    let key_dist: KeyDist = opts
        .get("key-dist")
        .unwrap_or("uniform")
        .parse()
        .map_err(|e: ConfigError| e.to_string())?;
    let seed: u64 = opts.get_or("seed", 7).map_err(|e| e.to_string())?;
    let min_commits: u64 = opts.get_or("min-commits", 0).map_err(|e| e.to_string())?;
    let crash_site: Option<usize> =
        match opts.get("crash") {
            None => None,
            Some(raw) => Some(raw.parse().map_err(|_| {
                format!("invalid value {raw:?} for --crash (expected a site index)")
            })?),
        };
    if let Some(site) = crash_site {
        if site >= n {
            return Err(format!("--crash {site} out of range for n={n}"));
        }
    }
    let crash_after = secs(
        opts.get_or("crash-after", 1.5).map_err(|e| e.to_string())?,
        "crash-after",
    )?;
    let restart_after = secs(
        opts.get_or("restart-after", 1.5)
            .map_err(|e| e.to_string())?,
        "restart-after",
    )?;

    let addrs: Vec<SocketAddr> = (0..n)
        .map(|i| {
            format!("{host}:{}", port_base + i as u16)
                .parse()
                .map_err(|_| format!("invalid address {host}:{}", port_base + i as u16))
        })
        .collect::<Result<_, String>>()?;

    // Wait for the cluster to come up (serve may still be booting).
    let deadline = Instant::now() + Duration::from_secs(10);
    for addr in &addrs {
        loop {
            match TcpClient::connect(*addr) {
                Ok(_) => break,
                Err(e) if Instant::now() >= deadline => {
                    return Err(format!("cluster not reachable at {addr}: {e}"));
                }
                Err(_) => thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    // One induced crash/restart mid-run, driven over the same wire.
    let chaos = crash_site.map(|site| {
        let addr = addrs[site];
        thread::spawn(move || -> Result<(), String> {
            let mut client =
                TcpClient::connect(addr).map_err(|e| format!("chaos connect {addr}: {e}"))?;
            thread::sleep(crash_after);
            client
                .request(&ClientOp::Crash)
                .map_err(|e| format!("crash request: {e}"))?;
            thread::sleep(restart_after);
            client
                .request(&ClientOp::Recover)
                .map_err(|e| format!("recover request: {e}"))?;
            Ok(())
        })
    });

    // ---- open-loop branch: paced arrivals against the HTTP front door
    if open_loop {
        let config = OpenLoopConfig {
            rate: opts.get_or("rate", 500.0).map_err(|e| e.to_string())?,
            duration,
            connections: opts
                .get_or("connections", 1024)
                .map_err(|e| e.to_string())?,
            read_fraction,
            keys,
            key_dist,
            seed,
        };
        config.validate().map_err(|e| e.to_string())?;
        let http_base: u16 = opts.get_or("http-port", 7800).map_err(|e| e.to_string())?;
        let targets: Vec<SocketAddr> = (0..n)
            .map(|i| {
                format!("{host}:{}", http_base + i as u16)
                    .parse()
                    .map_err(|_| format!("invalid address {host}:{}", http_base + i as u16))
            })
            .collect::<Result<_, String>>()?;
        let run = OpenLoop::run(&config, &targets);
        let mut report = run.map_err(|e| e.to_string())?;
        if let Some(handle) = chaos {
            handle
                .join()
                .map_err(|_| "chaos thread panicked".to_string())??;
        }
        thread::sleep(Duration::from_millis(200));
        let (audited_commits, consistent) = audit_over_wire(&addrs)?;
        report.algorithm = opts.get("algo").unwrap_or("unlabeled").into();
        report.sites = n;
        println!("{}", report.to_json());
        eprintln!(
            "audited: coordinator commits = {audited_commits}, consistent = {consistent} \
             (client observed {} commits, peak {} open connections)",
            report.committed, report.peak_open
        );
        if !consistent {
            return Err("serializability violation: a node's log diverged from the chain".into());
        }
        if report.committed < min_commits {
            return Err(format!(
                "only {} updates committed; --min-commits {min_commits} not met",
                report.committed
            ));
        }
        return Ok(());
    }

    // ---- closed-loop branch: self-pacing workers on the binary port
    let config = LoadGenConfig {
        concurrency: opts.get_or("concurrency", 4).map_err(|e| e.to_string())?,
        duration,
        read_fraction,
        keys,
        key_dist,
        seed,
    };
    // Typed validation before any socket is touched (satellite: absurd
    // concurrency / read mixes are rejected, never panicked on).
    config.validate().map_err(|e| e.to_string())?;
    let run = LoadGen::run(&config, |w| {
        let addr = addrs[w % addrs.len()];
        let client = TcpClient::connect(addr)
            .unwrap_or_else(|e| panic!("loadgen worker connect {addr}: {e}"));
        Box::new(client) as Box<dyn WorkloadTarget>
    });
    let mut report = run.map_err(|e| e.to_string())?;
    if let Some(handle) = chaos {
        handle
            .join()
            .map_err(|_| "chaos thread panicked".to_string())??;
    }

    // Give in-flight commit fan-out a moment to drain, then audit every
    // node over the wire.
    thread::sleep(Duration::from_millis(200));
    let mut audited_commits = 0u64;
    let mut consistent = true;
    for (site, addr) in addrs.iter().enumerate() {
        let mut client =
            TcpClient::connect(*addr).map_err(|e| format!("audit connect {addr}: {e}"))?;
        match client
            .request(&ClientOp::Audit)
            .map_err(|e| format!("audit request {addr}: {e}"))?
        {
            ClientReply::Audit {
                commits,
                consistent: ok,
                ..
            } => {
                audited_commits += commits;
                consistent &= ok;
            }
            other => return Err(format!("unexpected audit reply {other:?}")),
        }
        // Pull this node's protocol event tallies into the JSON report
        // (zero counts are omitted to keep the report readable).
        match client
            .request(&ClientOp::Events)
            .map_err(|e| format!("events request {addr}: {e}"))?
        {
            ClientReply::Events { counts } => {
                for (kind, &count) in EventKind::ALL.iter().zip(&counts) {
                    if count > 0 {
                        report.events.push(EventCountEntry {
                            site,
                            event: kind.name().to_owned(),
                            count,
                        });
                    }
                }
            }
            other => return Err(format!("unexpected events reply {other:?}")),
        }
        // And the reactor's transport/front-door counters: dial
        // failures, backpressure drops, decode errors — the failure
        // modes `take_error` used to swallow (zero counts omitted).
        match client
            .request(&ClientOp::NetStats)
            .map_err(|e| format!("net-stats request {addr}: {e}"))?
        {
            ClientReply::NetStats { counts } => {
                for (name, &count) in NetStats::NAMES.iter().zip(&counts) {
                    if count > 0 {
                        report.net.push(NetCounterEntry {
                            site,
                            counter: (*name).to_owned(),
                            count,
                        });
                    }
                }
            }
            other => return Err(format!("unexpected net-stats reply {other:?}")),
        }
        // And the shard pool's execution counters: per-worker dispatch
        // totals, queue-depth high-water marks, and the merge-barrier
        // wait tallies (zero counts omitted).
        match client
            .request(&ClientOp::ShardStats)
            .map_err(|e| format!("shard-stats request {addr}: {e}"))?
        {
            ClientReply::ShardStats { workers, counts } => {
                for (name, &count) in ShardStats::names_for(workers as usize).iter().zip(&counts) {
                    if count > 0 {
                        report.shard.push(ShardCounterEntry {
                            site,
                            counter: name.clone(),
                            count,
                        });
                    }
                }
            }
            other => return Err(format!("unexpected shard-stats reply {other:?}")),
        }
    }

    // The protocol is opaque to a wire client, so the report's algorithm
    // field is a caller-supplied label (matching serve's --algo).
    report.algorithm = opts.get("algo").unwrap_or("unlabeled").into();
    report.transport = "tcp".into();
    report.sites = n;
    println!("{}", report.to_json());
    eprintln!(
        "audited: coordinator commits = {audited_commits}, consistent = {consistent} \
         (client observed {} commits)",
        report.committed
    );

    if !consistent {
        return Err("serializability violation: a node's log diverged from the chain".into());
    }
    if report.committed < min_commits {
        return Err(format!(
            "only {} updates committed; --min-commits {min_commits} not met",
            report.committed
        ));
    }
    Ok(())
}

/// Audit every node over the binary wire: summed coordinator commits
/// and the conjunction of per-node consistency verdicts.
fn audit_over_wire(addrs: &[SocketAddr]) -> Result<(u64, bool), String> {
    let mut audited_commits = 0u64;
    let mut consistent = true;
    for addr in addrs {
        let mut client =
            TcpClient::connect(*addr).map_err(|e| format!("audit connect {addr}: {e}"))?;
        match client
            .request(&ClientOp::Audit)
            .map_err(|e| format!("audit request {addr}: {e}"))?
        {
            ClientReply::Audit {
                commits,
                consistent: ok,
                ..
            } => {
                audited_commits += commits;
                consistent &= ok;
            }
            other => return Err(format!("unexpected audit reply {other:?}")),
        }
    }
    Ok((audited_commits, consistent))
}
