//! `dynvote repro` — regenerate every table and figure of the paper.
//!
//! Each reproduction prints (a) what the paper reports and (b) what this
//! implementation computes, so the comparison is self-contained.

use dynvote_core::{fig1_partition_graph, run_scenario, AlgorithmKind, ReplicaSystem, SiteSet};
use dynvote_markov::chains::{hybrid_chain, voting_availability};
use dynvote_markov::{statespace::DerivedChain, sweep, theorem3_table, THEOREM3_PAPER};
use dynvote_mc::{simulate, McConfig};

/// Dispatch a repro target; returns false for unknown names.
pub fn run(target: &str) -> bool {
    match target {
        "all" => {
            for t in [
                "fig1", "example4", "fig2", "theorem2", "table1", "fig3", "fig4", "sigmod87",
                "optimal", "mc",
            ] {
                println!("================ repro {t} ================");
                run(t);
                println!();
            }
        }
        "fig1" => fig1(),
        "example4" => example4(),
        "fig2" => fig2(),
        "theorem2" => theorem2(),
        "table1" => table1(),
        "fig3" => figure(3),
        "fig4" => figure(4),
        "sigmod87" => sigmod87(),
        "optimal" => optimal(),
        "mc" => mc_validation(),
        _ => return false,
    }
    true
}

/// Fig. 1: the partition-graph scenario, one column per algorithm.
fn fig1() {
    println!("Fig. 1 — partition graph for a file replicated at A, B, C, D, E");
    println!("(distinguished partition per epoch; '-' = updates denied)\n");
    let steps = fig1_partition_graph();
    let kinds = [
        AlgorithmKind::Voting,
        AlgorithmKind::DynamicVoting,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::Hybrid,
    ];
    let mut reports = Vec::new();
    for kind in kinds {
        let mut sys = ReplicaSystem::new(5, kind.instantiate(5));
        reports.push(run_scenario(&mut sys, &steps));
    }
    print!("{:<8}", "epoch");
    for kind in kinds {
        print!("{:<16}", kind.id());
    }
    println!();
    for (i, step) in steps.iter().enumerate() {
        print!("{:<8}", step.label);
        for report in &reports {
            let cell = report[i]
                .distinguished()
                .map_or_else(|| "-".to_owned(), |p| p.to_string());
            print!("{cell:<16}");
        }
        println!();
    }
    println!("\npaper: voting serves ABC@t1 and CDE@t3; the dynamic algorithms");
    println!("serve AB@t2; only dynamic-linear (A) and the hybrid (BC) serve @t4.");
}

/// The Section IV worked example, state table by state table.
fn example4() {
    println!("Section IV — the hybrid algorithm worked example (5 sites)\n");
    let mut sys = ReplicaSystem::new(5, AlgorithmKind::Hybrid.instantiate(5));
    for _ in 0..9 {
        sys.attempt_update(SiteSet::all(5));
    }
    let steps: [(&str, &str); 4] = [
        ("update at A, partition ABC", "ABC"),
        (
            "update at A, partition AC (static phase: SC, DS unchanged)",
            "AC",
        ),
        (
            "update at D, partition BCDE (trio majority B,C; dynamic again)",
            "BCDE",
        ),
        ("update at E, partition BE (half of four incl. DS=B)", "BE"),
    ];
    println!(
        "initial state (nine updates by all five sites):\n{}",
        sys.state_table()
    );
    for (label, partition) in steps {
        let p = SiteSet::parse(partition).expect("valid partition");
        let outcome = sys.attempt_update(p);
        println!("{label}: {}\n{}", outcome.verdict, sys.state_table());
    }
}

/// Fig. 2: the hybrid's state diagram, machine-checked.
fn fig2() {
    println!("Fig. 2 — the hybrid state diagram (shown for n = 5)\n");
    let chain = hybrid_chain(5, 1.0);
    println!("states ({} = 3n-5):", chain.ctmc.len());
    for (i, s) in chain.states.iter().enumerate() {
        println!(
            "  [{i}] {:<14} up={} {}",
            s.label,
            s.up,
            if s.accepting { "accepting" } else { "blocked" }
        );
    }
    println!("\ntransitions (λ=1, μ=ratio; here ratio=1):");
    for &(from, to, rate) in chain.ctmc.transitions() {
        println!(
            "  {} -> {}  rate {rate}",
            chain.states[from].label, chain.states[to].label
        );
    }
    println!("\ncross-check: machine-derived chain from the executable kernel");
    for n in 3..=8 {
        let hand = hybrid_chain(n, 1.3)
            .site_availability()
            .expect("irreducible");
        let derived = DerivedChain::build(AlgorithmKind::Hybrid, n).site_availability(1.3);
        println!(
            "  n={n}: hand chain {hand:.12}  derived {derived:.12}  |diff| {:.2e}",
            (hand - derived).abs()
        );
    }
}

/// Theorem 2: hybrid availability strictly exceeds dynamic voting.
fn theorem2() {
    println!("Theorem 2 — hybrid > dynamic voting for every repair/failure ratio\n");
    println!(
        "{:<4} {:>10} {:>14} {:>14} {:>12}",
        "n", "ratio", "hybrid", "dynamic", "margin"
    );
    let mut min_margin = f64::INFINITY;
    for n in [3usize, 5, 10, 20] {
        for ratio in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let h = sweep::availability(AlgorithmKind::Hybrid, n, ratio);
            let d = sweep::availability(AlgorithmKind::DynamicVoting, n, ratio);
            let margin = h - d;
            min_margin = min_margin.min(margin);
            println!("{n:<4} {ratio:>10.2} {h:>14.8} {d:>14.8} {margin:>12.2e}");
        }
    }
    println!("\nminimum margin over the grid: {min_margin:.3e}");
    println!("(margins at n=20, ratio>=5 underflow f64 — both availabilities");
    println!("agree to ~1e-13 of the ceiling; everywhere else strictly positive)");
}

/// Theorem 3: the crossover table, computed vs the paper.
fn table1() {
    println!("Theorem 3 — hybrid vs dynamic-linear crossover points\n");
    println!(
        "{:<4} {:>12} {:>8} {:>8}  {:>12}",
        "n", "computed c", "paper", "delta", "sign changes"
    );
    for c in theorem3_table() {
        let paper = THEOREM3_PAPER[c.n - 3].1;
        println!(
            "{:<4} {:>12.4} {:>8.2} {:>+8.4}  {:>12}",
            c.n,
            c.ratio,
            paper,
            c.ratio - paper,
            c.sign_changes
        );
    }
    println!("\nhybrid beats dynamic-linear iff μ/λ exceeds c; a single sign");
    println!("change certifies the crossing is unique in the scanned interval.");
}

/// Figs. 3 and 4: normalised availability curves for five sites.
fn figure(which: u8) {
    let sweep = if which == 3 {
        println!("Fig. 3 — normalised availability, five sites, μ/λ in [0.1, 2.0]\n");
        sweep::fig3()
    } else {
        println!("Fig. 4 — normalised availability, five sites, μ/λ in [2.0, 10.0]\n");
        sweep::fig4()
    };
    print!("{}", sweep.to_csv());
    println!("\nshape checks: every curve below 1.0 (the perfect-algorithm bound);");
    println!("hybrid above dynamic-linear beyond the 0.63 crossover; voting lowest.");
}

/// The SIGMOD 1987 evaluation: dynamic voting vs static voting.
fn sigmod87() {
    println!("SIGMOD 1987 — dynamic voting vs static majority voting\n");
    println!("site availability at μ/λ = 2.0:");
    println!(
        "{:<4} {:>12} {:>12} {:>14} {:>12}",
        "n", "voting", "dynamic", "dynamic-linear", "hybrid"
    );
    for n in 3..=12 {
        let v = voting_availability(n, 2.0);
        let d = sweep::availability(AlgorithmKind::DynamicVoting, n, 2.0);
        let l = sweep::availability(AlgorithmKind::DynamicLinear, n, 2.0);
        let h = sweep::availability(AlgorithmKind::Hybrid, n, 2.0);
        println!("{n:<4} {v:>12.6} {d:>12.6} {l:>14.6} {h:>12.6}");
    }
    println!("\nthe papers' claims, checked across ratios 0.5..10:");
    let mut dl_beats_voting_n4plus = true;
    let mut voting_beats_dl_n3 = true;
    for i in 1..=20 {
        let ratio = 0.5 * f64::from(i);
        for n in 4..=12 {
            if sweep::availability(AlgorithmKind::DynamicLinear, n, ratio)
                <= voting_availability(n, ratio)
            {
                dl_beats_voting_n4plus = false;
            }
        }
        if ratio >= 1.0
            && sweep::availability(AlgorithmKind::DynamicLinear, 3, ratio)
                >= voting_availability(3, ratio)
        {
            voting_beats_dl_n3 = false;
        }
    }
    println!(
        "  dynamic-linear > voting for n >= 4:          {}",
        if dl_beats_voting_n4plus {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    println!(
        "  voting > dynamic-linear for n = 3 (μ/λ >= 1): {}",
        if voting_beats_dl_n3 { "HOLDS" } else { "FAILS" }
    );
}

/// Section VII: the conjectured-optimal variant vs the hybrid.
fn optimal() {
    println!("Section VII — the footnote-6 candidate vs the hybrid\n");
    println!("(site availability; the paper conjectures the candidate wins)\n");
    println!(
        "{:<4} {:>8} {:>14} {:>14} {:>12}",
        "n", "ratio", "candidate", "hybrid", "margin"
    );
    let mut wins = 0usize;
    let mut total = 0usize;
    for n in [4usize, 5, 7, 10] {
        let candidate = DerivedChain::build(AlgorithmKind::OptimalCandidate, n);
        for ratio in [0.5, 1.0, 2.0, 5.0] {
            let c = candidate.site_availability(ratio);
            let h = sweep::availability(AlgorithmKind::Hybrid, n, ratio);
            total += 1;
            if c >= h - 1e-15 {
                wins += 1;
            }
            println!("{n:<4} {ratio:>8.2} {c:>14.8} {h:>14.8} {:>12.2e}", c - h);
        }
    }
    println!("\ncandidate >= hybrid at {wins}/{total} grid points");
}

/// Cross-validation: Markov analysis vs Monte-Carlo simulation.
fn mc_validation() {
    println!("Cross-validation — Markov steady state vs Monte-Carlo simulation\n");
    println!(
        "{:<16} {:>10} {:>12} {:>16} {:>8}",
        "algorithm", "markov", "monte-carlo", "95% half-width", "agree"
    );
    for kind in AlgorithmKind::ALL {
        let markov = sweep::availability(kind, 5, 1.0);
        let mc = simulate(
            kind,
            &McConfig {
                n: 5,
                ratio: 1.0,
                horizon: 40_000.0,
                seed: 2024,
                ..McConfig::default()
            },
        );
        let agree = (markov - mc.site_availability).abs() < 3.0 * mc.site_half_width + 0.005;
        println!(
            "{:<16} {markov:>10.5} {:>12.5} {:>16.5} {:>8}",
            kind.id(),
            mc.site_availability,
            mc.site_half_width,
            if agree { "yes" } else { "NO" }
        );
    }
}
