//! The non-repro subcommands: ad-hoc availability queries, sweeps,
//! crossover hunts and protocol simulations.

use crate::opts::Opts;
use dynvote_core::{par, AlgorithmKind, SiteId};
use dynvote_markov::hetero::{order_study, SiteRates};
use dynvote_markov::{crossover, statespace::DerivedChain, sweep};
use dynvote_mc::{simulate, simulate_replicated_with_progress, McConfig};
use dynvote_sim::{
    experiments::{results_to_csv, ExperimentPlan},
    minimize, FaultSchedule, NemesisProfile, SimConfig, Simulation,
};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};

fn parse_algo(name: &str) -> Result<AlgorithmKind, String> {
    name.parse()
        .map_err(|_| format!("unknown algorithm {name:?}; see `dynvote help`"))
}

/// Resolve `--jobs` (0 or absent = auto: `DYNVOTE_JOBS`, then the
/// machine's available parallelism).
fn jobs_from(opts: &Opts) -> Result<usize, String> {
    let requested: usize = opts.get_or("jobs", 0).map_err(|e| e.to_string())?;
    Ok(par::resolve_jobs(Some(requested)))
}

/// A thread-safe `[done/total]` progress counter printing one line per
/// completed task to stderr (stdout stays machine-readable). Lines may
/// arrive in any order under parallel execution; the *results* never do.
struct Progress {
    done: AtomicUsize,
    total: usize,
}

impl Progress {
    fn new(total: usize, jobs: usize, what: &str) -> Self {
        eprintln!("# {what}: {total} tasks on {jobs} worker(s)");
        Progress {
            done: AtomicUsize::new(0),
            total,
        }
    }

    fn tick(&self, label: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("# [{done}/{}] {label}", self.total);
    }
}

/// `dynvote avail`.
pub fn avail(opts: &Opts) -> Result<(), String> {
    let kind = parse_algo(opts.get("algo").unwrap_or("hybrid"))?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let ratio: f64 = opts.get_or("ratio", 1.0).map_err(|e| e.to_string())?;
    if !(2..=20).contains(&n) {
        return Err("--n must be in 2..=20".into());
    }
    if ratio <= 0.0 {
        return Err("--ratio must be positive".into());
    }
    let analytic = sweep::availability(kind, n, ratio);
    println!("algorithm        {}", kind.id());
    println!("sites            {n}");
    println!("repair/failure   {ratio}");
    println!("site availability (analytic)   {analytic:.8}");
    println!(
        "normalised availability        {:.8}",
        dynvote_markov::normalized(analytic, ratio)
    );
    if opts.get_or("mc", false).map_err(|e| e.to_string())? {
        let result = simulate(
            kind,
            &McConfig {
                n,
                ratio,
                ..McConfig::default()
            },
        );
        println!(
            "site availability (simulated)  {:.8} ± {:.8}",
            result.site_availability, result.site_half_width
        );
    }
    Ok(())
}

#[derive(Serialize)]
struct SweepJson {
    n: usize,
    algorithms: Vec<String>,
    rows: Vec<SweepRowJson>,
}

#[derive(Serialize)]
struct SweepRowJson {
    ratio: f64,
    normalized_availability: Vec<f64>,
}

/// `dynvote sweep`.
pub fn sweep_cmd(opts: &Opts) -> Result<(), String> {
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let lo: f64 = opts.get_or("lo", 0.1).map_err(|e| e.to_string())?;
    let hi: f64 = opts.get_or("hi", 10.0).map_err(|e| e.to_string())?;
    let steps: usize = opts.get_or("steps", 30).map_err(|e| e.to_string())?;
    if lo <= 0.0 || hi < lo || steps == 0 {
        return Err("need 0 < lo <= hi and steps >= 1".into());
    }
    let algos: Vec<AlgorithmKind> = match opts.get("algos") {
        None => sweep::FIGURE_ALGOS.to_vec(),
        Some(list) => list.split(',').map(parse_algo).collect::<Result<_, _>>()?,
    };
    let jobs = jobs_from(opts)?;
    let grid = sweep::ratio_grid(lo, hi, steps);
    let progress = Progress::new(grid.len(), jobs, "sweep");
    let result = sweep::figure_series_with_progress(n, &algos, &grid, jobs, |row| {
        progress.tick(&format!("ratio {:.4}", row.ratio));
    });
    match opts.get("format").unwrap_or("csv") {
        "csv" => print!("{}", result.to_csv()),
        "json" => {
            let json = SweepJson {
                n: result.n,
                algorithms: result
                    .algorithms
                    .iter()
                    .map(|a| a.id().to_owned())
                    .collect(),
                rows: result
                    .rows
                    .iter()
                    .map(|r| SweepRowJson {
                        ratio: r.ratio,
                        normalized_availability: r.values.clone(),
                    })
                    .collect(),
            };
            println!(
                "{}",
                serde_json::to_string_pretty(&json).expect("serializable")
            );
        }
        other => return Err(format!("unknown format {other:?} (csv|json)")),
    }
    Ok(())
}

/// `dynvote crossover`.
pub fn crossover_cmd(opts: &Opts) -> Result<(), String> {
    let first = parse_algo(opts.get("first").unwrap_or("hybrid"))?;
    let second = parse_algo(opts.get("second").unwrap_or("dynamic-linear"))?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let lo: f64 = opts.get_or("lo", 0.05).map_err(|e| e.to_string())?;
    let hi: f64 = opts.get_or("hi", 5.0).map_err(|e| e.to_string())?;
    let a = DerivedChain::build(first, n);
    let b = DerivedChain::build(second, n);
    let diff = |ratio: f64| a.site_availability(ratio) - b.site_availability(ratio);
    let found = crossover::find_crossovers(n, diff, lo, hi);
    if found.is_empty() {
        let sample = diff(0.5 * (lo + hi));
        println!(
            "no crossover in [{lo}, {hi}]: {} is uniformly {} there",
            first.id(),
            if sample > 0.0 { "better" } else { "worse" }
        );
    } else {
        for c in found {
            println!(
                "{} overtakes {} at μ/λ = {:.4} (n = {n})",
                first.id(),
                second.id(),
                c.ratio
            );
        }
    }
    Ok(())
}

/// `dynvote chain` — print a chain as text or Graphviz DOT.
pub fn chain_cmd(opts: &Opts) -> Result<(), String> {
    let kind = parse_algo(opts.get("algo").unwrap_or("hybrid"))?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let ratio: f64 = opts.get_or("ratio", 1.0).map_err(|e| e.to_string())?;
    if !(2..=20).contains(&n) || ratio <= 0.0 {
        return Err("need 2 <= n <= 20 and a positive ratio".into());
    }
    let chain = DerivedChain::build(kind, n).at_ratio(ratio);
    let title = format!("{} (n={n}, ratio={ratio})", kind.id());
    match opts.get("format").unwrap_or("text") {
        "dot" => print!("{}", chain.to_dot(&title)),
        "text" => {
            println!("{title}: {} states", chain.ctmc.len());
            let pi = chain.steady_state().map_err(|e| e.to_string())?;
            for (i, (s, p)) in chain.states.iter().zip(&pi).enumerate() {
                println!(
                    "  [{i:>3}] {:<44} π={p:.6} {}",
                    s.label,
                    if s.accepting { "accepting" } else { "" }
                );
            }
            println!(
                "site availability: {:.8}",
                chain.site_availability().map_err(|e| e.to_string())?
            );
        }
        other => return Err(format!("unknown format {other:?} (text|dot)")),
    }
    Ok(())
}

/// Parse `--rates "1:0.6,1:2,..."` into per-site (failure, repair).
fn parse_rates(text: &str) -> Result<Vec<SiteRates>, String> {
    text.split(',')
        .map(|pair| {
            let (f, r) = pair
                .split_once(':')
                .ok_or_else(|| format!("rate {pair:?} must look like failure:repair"))?;
            let failure: f64 = f.trim().parse().map_err(|_| format!("bad rate {f:?}"))?;
            let repair: f64 = r.trim().parse().map_err(|_| format!("bad rate {r:?}"))?;
            if failure <= 0.0 || repair <= 0.0 {
                return Err(format!("rates must be positive in {pair:?}"));
            }
            Ok(SiteRates { failure, repair })
        })
        .collect()
}

/// `dynvote hetero` — heterogeneous availability and the
/// distinguished-site ordering study (the paper's Section VII
/// challenge).
pub fn hetero_cmd(opts: &Opts) -> Result<(), String> {
    let rates = parse_rates(opts.get("rates").unwrap_or("1:0.6,1:1,1:2,1:4,1:8"))?;
    let n = rates.len();
    if !(2..=12).contains(&n) {
        return Err("need 2..=12 sites".into());
    }
    println!("per-site rates (failure:repair, p = up probability):");
    for (i, r) in rates.iter().enumerate() {
        println!(
            "  {}: {}:{}  p={:.4}",
            dynvote_core::SiteId::new(i),
            r.failure,
            r.repair,
            r.up_probability()
        );
    }
    println!();
    println!(
        "{:<18} {:>16} {:>16} {:>12}",
        "algorithm", "reliable-first", "reliable-last", "gain"
    );
    for kind in AlgorithmKind::ALL {
        let study = order_study(kind, &rates);
        println!(
            "{:<18} {:>16.8} {:>16.8} {:>+12.2e}",
            kind.id(),
            study.reliable_first,
            study.reliable_last,
            study.reliable_first - study.reliable_last
        );
    }
    println!("\n(`reliable-first` ranks the most reliable site greatest in the");
    println!("file's linear order, so it is preferred as the distinguished site.)");
    Ok(())
}

/// `dynvote witnesses` — availability of voting with witnesses vs full
/// copies (E12).
pub fn witnesses_cmd(opts: &Opts) -> Result<(), String> {
    use dynvote_core::algorithms::VotingWithWitnesses;
    use dynvote_core::{LinearOrder, SiteId, SiteSet};
    use dynvote_markov::hetero::{hetero_chain_for, SiteRates};

    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let ratio: f64 = opts.get_or("ratio", 2.0).map_err(|e| e.to_string())?;
    if !(2..=8).contains(&n) || ratio <= 0.0 {
        return Err("need 2 <= n <= 8 and a positive ratio".into());
    }
    println!("voting with witnesses at n={n}, ratio={ratio}:");
    println!(
        "{:<12} {:>16} {:>12}",
        "data copies", "availability", "vs all-copies"
    );
    let rates = vec![SiteRates::homogeneous(ratio); n];
    let full = dynvote_markov::chains::voting_availability(n, ratio);
    for copies in (1..=n).rev() {
        let copy_set: SiteSet = (0..copies).map(SiteId::new).collect();
        let a = hetero_chain_for(
            Box::new(VotingWithWitnesses::uniform(n, copy_set)),
            &rates,
            LinearOrder::lexicographic(n),
        )
        .site_availability()
        .map_err(|e| e.to_string())?;
        println!(
            "{:<12} {:>16.6} {:>+12.4}",
            format!("{copies} of {n}"),
            a,
            a - full
        );
    }
    println!("\n(each witness stores a version number instead of the file —");
    println!("the availability cost of the saved storage, quantified)");
    Ok(())
}

/// `dynvote joint` — joint availability of multi-file transactions
/// (E15).
pub fn joint_cmd(opts: &Opts) -> Result<(), String> {
    use dynvote_mc::{simulate_joint, MultiMcConfig};

    let ratio: f64 = opts.get_or("ratio", 1.0).map_err(|e| e.to_string())?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let horizon: f64 = opts
        .get_or("horizon", 40_000.0)
        .map_err(|e| e.to_string())?;
    let seed: u64 = opts.get_or("seed", 0xFEED).map_err(|e| e.to_string())?;
    let algos: Vec<AlgorithmKind> = match opts.get("algos") {
        None => vec![AlgorithmKind::Hybrid, AlgorithmKind::Voting],
        Some(list) => list.split(',').map(parse_algo).collect::<Result<_, _>>()?,
    };
    if !(2..=12).contains(&n) || ratio <= 0.0 || horizon <= 0.0 {
        return Err("need 2 <= n <= 12, positive ratio and horizon".into());
    }
    let result = simulate_joint(&MultiMcConfig {
        files: algos.clone(),
        n,
        ratio,
        horizon,
        seed,
        ..MultiMcConfig::default()
    });
    println!("joint availability of a transaction touching every file");
    println!("(n={n}, ratio={ratio}, horizon={horizon}):\n");
    for (kind, marginal) in algos.iter().zip(&result.marginals) {
        println!("  marginal {:<18} {marginal:.4}", kind.id());
    }
    println!(
        "  joint (measured)            {:.4} ± {:.4}",
        result.joint_system, result.joint_half_width
    );
    println!(
        "  independence would predict  {:.4}",
        result.independence_product
    );
    println!("  joint, site-weighted        {:.4}", result.joint_site);
    println!("\nshared failures correlate the files: the joint sits near the");
    println!("weakest marginal, far above the independence product.");
    Ok(())
}

/// `dynvote votes` — the optimal static vote assignment vs uniform vs
/// the dynamic family (E16).
pub fn votes_cmd(opts: &Opts) -> Result<(), String> {
    use dynvote_core::LinearOrder;
    use dynvote_markov::hetero::hetero_availability;
    use dynvote_markov::optimal_vote_assignment;

    let rates = parse_rates(opts.get("rates").unwrap_or("1:0.6,1:1,1:2,1:4,1:8"))?;
    let max_vote: u64 = opts.get_or("max-vote", 3).map_err(|e| e.to_string())?;
    let n = rates.len();
    if !(2..=8).contains(&n) || !(1..=4).contains(&max_vote) {
        return Err("need 2..=8 sites and max-vote 1..=4".into());
    }
    let result = optimal_vote_assignment(&rates, max_vote);
    println!("optimal static vote assignment (votes 0..={max_vote} per site):");
    println!("  assignment      {}", result.votes);
    println!("  availability    {:.6}", result.availability);
    println!("  uniform votes   {:.6}", result.uniform_availability);
    println!("\nthe dynamic family under the same rates:");
    for kind in [
        AlgorithmKind::DynamicVoting,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::Hybrid,
    ] {
        let a = hetero_availability(kind, &rates, LinearOrder::lexicographic(n));
        println!(
            "  {:<16} {a:.6} ({:+.4} vs optimal static)",
            kind.id(),
            a - result.availability
        );
    }
    Ok(())
}

/// `dynvote transient` — availability over time from the all-up start.
pub fn transient_cmd(opts: &Opts) -> Result<(), String> {
    let kind = parse_algo(opts.get("algo").unwrap_or("hybrid"))?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let ratio: f64 = opts.get_or("ratio", 1.0).map_err(|e| e.to_string())?;
    let until: f64 = opts.get_or("until", 10.0).map_err(|e| e.to_string())?;
    let steps: usize = opts.get_or("steps", 20).map_err(|e| e.to_string())?;
    if !(2..=20).contains(&n) || ratio <= 0.0 || until <= 0.0 || steps == 0 {
        return Err("need 2 <= n <= 20, positive ratio/until, steps >= 1".into());
    }
    let chain = DerivedChain::build(kind, n).at_ratio(ratio);
    let steady = chain.site_availability().map_err(|e| e.to_string())?;
    // The derived chain's initial state (index 0) is the all-up state.
    println!("t,site_availability");
    for i in 0..=steps {
        let t = until * i as f64 / steps as f64;
        println!("{t:.4},{:.8}", chain.site_availability_at(0, t));
    }
    println!("# steady state: {steady:.8}");
    Ok(())
}

/// `dynvote simulate`.
pub fn simulate_cmd(opts: &Opts) -> Result<(), String> {
    let kind = parse_algo(opts.get("algo").unwrap_or("hybrid"))?;
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let duration: f64 = opts.get_or("duration", 100.0).map_err(|e| e.to_string())?;
    let update_rate: f64 = opts.get_or("update-rate", 3.0).map_err(|e| e.to_string())?;
    let fault_rate: f64 = opts.get_or("fault-rate", 0.3).map_err(|e| e.to_string())?;
    let link_rate: f64 = opts
        .get_or("link-fault-rate", 0.3)
        .map_err(|e| e.to_string())?;
    let drop: f64 = opts.get_or("drop", 0.0).map_err(|e| e.to_string())?;
    let seed: u64 = opts.get_or("seed", 7).map_err(|e| e.to_string())?;
    let trace: bool = opts.get_or("trace", false).map_err(|e| e.to_string())?;
    if !(2..=20).contains(&n) || duration <= 0.0 || update_rate <= 0.0 {
        return Err("need 2 <= n <= 20, positive duration and update-rate".into());
    }

    let mut sim = Simulation::new(SimConfig {
        n,
        algorithm: kind,
        drop_probability: drop,
        seed,
        ..SimConfig::default()
    });
    if trace {
        sim.enable_trace();
    }
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.schedule_poisson_arrivals(update_rate, duration);
    if fault_rate > 0.0 || link_rate > 0.0 {
        sim.schedule_random_faults(fault_rate, link_rate, duration);
    }
    sim.run_until(duration * 1.1);
    // Heal and let in-doubt transactions resolve, then verify.
    for i in 0..n {
        sim.recover_site(SiteId::new(i));
        for j in i + 1..n {
            sim.repair_link(SiteId::new(i), SiteId::new(j));
        }
    }
    sim.quiesce();

    let stats = sim.stats();
    println!("algorithm           {}", kind.id());
    println!("simulated time      {:.1}", sim.clock());
    println!("updates submitted   {}", stats.submitted);
    println!("commits             {}", stats.commits);
    println!("rejected (quorum)   {}", stats.rejected);
    println!("rejected (locked)   {}", stats.lock_busy);
    println!("timeouts            {}", stats.timeouts);
    println!("messages sent       {}", stats.messages_sent);
    println!("messages dropped    {}", stats.messages_dropped);
    println!("site crashes        {}", stats.site_crashes);
    println!("site recoveries     {}", stats.site_recoveries);
    println!("chain length        {}", sim.ledger().len());
    println!("protocol events     {}", sim.event_tallies());
    let violations = sim.check_invariants();
    if violations.is_empty() {
        println!("consistency         OK (one-copy serializable)");
        Ok(())
    } else {
        for v in &violations {
            println!("VIOLATION: {v}");
        }
        Err("consistency violations detected".into())
    }
}

/// `dynvote chaos`: generate (or replay) a serialized nemesis fault
/// schedule, run it against one or all algorithms, and on failure
/// optionally delta-debug the schedule down to a minimal reproducer.
pub fn chaos_cmd(opts: &Opts) -> Result<(), String> {
    let algo = opts.get("algo").unwrap_or("all");
    let kinds: Vec<AlgorithmKind> = if algo == "all" {
        AlgorithmKind::ALL.to_vec()
    } else {
        vec![parse_algo(algo)?]
    };
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    let seed: u64 = opts.get_or("seed", 7).map_err(|e| e.to_string())?;
    let duration: f64 = opts.get_or("duration", 60.0).map_err(|e| e.to_string())?;
    let update_rate: f64 = opts.get_or("update-rate", 3.0).map_err(|e| e.to_string())?;
    let drop: f64 = opts.get_or("drop", 0.0).map_err(|e| e.to_string())?;
    if !(2..=20).contains(&n) || duration <= 0.0 || update_rate <= 0.0 {
        return Err("need 2 <= n <= 20, positive duration and update-rate".into());
    }
    let config = SimConfig {
        n,
        drop_probability: drop,
        seed,
        ..SimConfig::default()
    };
    config.validate().map_err(|e| e.to_string())?;

    let schedule = match opts.get("schedule") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read schedule {path}: {e}"))?;
            FaultSchedule::from_json(&text)?
        }
        None => FaultSchedule::generate(n, duration, seed, &NemesisProfile::default()),
    };
    if let Some(path) = opts.get("out") {
        std::fs::write(path, schedule.to_json())
            .map_err(|e| format!("cannot write schedule {path}: {e}"))?;
        println!("# schedule written to {path}");
    }
    println!(
        "nemesis schedule    {} events, horizon {:.1}",
        schedule.len(),
        schedule.end_time()
    );

    // One deterministic run: healthy prologue, schedule + workload,
    // heal, then let every in-doubt transaction resolve.
    let run_one = |kind: AlgorithmKind, schedule: &FaultSchedule| -> Simulation {
        let mut sim = Simulation::new(SimConfig {
            algorithm: kind,
            ..config.clone()
        });
        sim.submit_update(SiteId(0));
        sim.quiesce();
        sim.apply_schedule(schedule);
        sim.schedule_poisson_arrivals(update_rate, duration);
        sim.run_until(duration.max(schedule.end_time()) * 1.25);
        sim.heal();
        sim.quiesce();
        sim
    };

    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8}  verdict",
        "algorithm", "commits", "rejects", "dropped", "dups", "crashes"
    );
    let mut first_failing = None;
    for &kind in &kinds {
        let sim = run_one(kind, &schedule);
        let stats = sim.stats();
        let violations = sim.check_invariants();
        let verdict = if violations.is_empty() {
            "OK".to_string()
        } else {
            format!("{} VIOLATION(S)", violations.len())
        };
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8}  {verdict}",
            kind.id(),
            stats.commits,
            stats.rejected,
            stats.messages_dropped,
            stats.messages_duplicated,
            stats.site_crashes
        );
        for v in &violations {
            println!("    VIOLATION: {v}");
        }
        if !violations.is_empty() && first_failing.is_none() {
            first_failing = Some(kind);
        }
    }

    let Some(failing) = first_failing else {
        println!("consistency         OK for every algorithm (one-copy serializable)");
        return Ok(());
    };
    if opts.get_or("minimize", false).map_err(|e| e.to_string())? {
        println!("minimizing against {} ...", failing.id());
        let minimal = minimize(&schedule, |candidate| {
            !run_one(failing, candidate).check_invariants().is_empty()
        });
        println!(
            "minimal reproducer  {} of {} events",
            minimal.len(),
            schedule.len()
        );
        if let Some(path) = opts.get("min-out") {
            std::fs::write(path, minimal.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("# minimal schedule written to {path}");
        } else {
            println!("{}", minimal.to_json());
        }
    }
    Err("consistency violations detected".into())
}

/// `dynvote figures`: both paper figure sweeps (Figs. 3 and 4) through
/// the parallel engine.
pub fn figures_cmd(opts: &Opts) -> Result<(), String> {
    let n: usize = opts.get_or("n", 5).map_err(|e| e.to_string())?;
    if !(2..=20).contains(&n) {
        return Err("--n must be in 2..=20".into());
    }
    let jobs = jobs_from(opts)?;
    let figures = [
        ("fig3", sweep::ratio_grid(0.1, 2.0, 19)),
        ("fig4", sweep::ratio_grid(2.0, 10.0, 16)),
    ];
    let total: usize = figures.iter().map(|(_, g)| g.len()).sum();
    let progress = Progress::new(total, jobs, "figures");
    for (name, grid) in &figures {
        let result =
            sweep::figure_series_with_progress(n, &sweep::FIGURE_ALGOS, grid, jobs, |row| {
                progress.tick(&format!("{name} ratio {:.4}", row.ratio));
            });
        println!("# {name} (n = {n})");
        print!("{}", result.to_csv());
    }
    Ok(())
}

/// `dynvote mc`: a batch of independent Monte-Carlo replications with
/// seeds derived from the master seed by the counter-based splitter.
pub fn mc_cmd(opts: &Opts) -> Result<(), String> {
    let kind = parse_algo(opts.get("algo").unwrap_or("hybrid"))?;
    let config = McConfig {
        n: opts.get_or("n", 5).map_err(|e| e.to_string())?,
        ratio: opts.get_or("ratio", 1.0).map_err(|e| e.to_string())?,
        horizon: opts
            .get_or("horizon", 10_000.0)
            .map_err(|e| e.to_string())?,
        burn_in: opts.get_or("burn-in", 500.0).map_err(|e| e.to_string())?,
        batches: opts.get_or("batches", 20).map_err(|e| e.to_string())?,
        seed: opts.get_or("seed", 0xD1CE).map_err(|e| e.to_string())?,
        rates: None,
    };
    config.validate().map_err(|e| e.to_string())?;
    let replications: usize = opts.get_or("replications", 8).map_err(|e| e.to_string())?;
    if replications == 0 {
        return Err("--replications must be at least 1".into());
    }
    let jobs = jobs_from(opts)?;
    let progress = Progress::new(replications, jobs, "mc replications");
    let result = simulate_replicated_with_progress(kind, &config, replications, jobs, |i, r| {
        progress.tick(&format!(
            "replication {i}: site availability {:.6}",
            r.site_availability
        ));
    });
    println!(
        "replication,seed,site_availability,site_half_width,system_availability,events,commits"
    );
    for (i, r) in result.replications.iter().enumerate() {
        println!(
            "{i},{},{:.6},{:.6},{:.6},{},{}",
            dynvote_mc::ReplicatedResult::seed_of(config.seed, i),
            r.site_availability,
            r.site_half_width,
            r.system_availability,
            r.events,
            r.commits
        );
    }
    println!(
        "# site availability   {:.6} ± {:.6} (95%, {} replications)",
        result.site_availability, result.site_half_width, replications
    );
    println!(
        "# system availability {:.6} ± {:.6}",
        result.system_availability, result.system_half_width
    );
    println!(
        "# analytic reference  {:.6}",
        sweep::availability(kind, config.n, config.ratio)
    );
    Ok(())
}

/// `dynvote experiments`: an algorithms × replications grid of
/// message-level protocol simulations, one CSV row per cell.
pub fn experiments_cmd(opts: &Opts) -> Result<(), String> {
    let algorithms: Vec<AlgorithmKind> = match opts.get("algos") {
        None => AlgorithmKind::ALL.to_vec(),
        Some(list) => list.split(',').map(parse_algo).collect::<Result<_, _>>()?,
    };
    let plan = ExperimentPlan {
        algorithms,
        replications: opts.get_or("replications", 3).map_err(|e| e.to_string())?,
        n: opts.get_or("n", 5).map_err(|e| e.to_string())?,
        duration: opts.get_or("duration", 100.0).map_err(|e| e.to_string())?,
        update_rate: opts.get_or("update-rate", 3.0).map_err(|e| e.to_string())?,
        fault_rate: opts.get_or("fault-rate", 0.3).map_err(|e| e.to_string())?,
        link_fault_rate: opts
            .get_or("link-fault-rate", 0.3)
            .map_err(|e| e.to_string())?,
        drop_probability: opts.get_or("drop", 0.0).map_err(|e| e.to_string())?,
        master_seed: opts.get_or("seed", 7).map_err(|e| e.to_string())?,
    };
    plan.validate().map_err(|e| e.to_string())?;
    let jobs = jobs_from(opts)?;
    let progress = Progress::new(plan.cells(), jobs, "experiments");
    let results = plan.execute_with_progress(jobs, |r| {
        progress.tick(&format!(
            "{} rep {}: {} commits",
            r.algorithm.id(),
            r.replication,
            r.stats.commits
        ));
    });
    print!("{}", results_to_csv(&results));
    let violations: usize = results.iter().map(|r| r.violations).sum();
    if violations == 0 {
        println!("# consistency OK across all {} cells", results.len());
        Ok(())
    } else {
        Err(format!("{violations} consistency violation(s) detected"))
    }
}
