//! A minimal `--key value` argument parser (no external dependency).

use std::collections::HashMap;

/// Parsed command line: a subcommand path and `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Opts {
    /// Positional arguments before the first `--flag`.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Errors from argument parsing and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// `--flag` without a value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending raw value.
        value: String,
    },
    /// A flag the subcommand does not recognize.
    UnknownFlag(String),
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::MissingValue(flag) => write!(f, "--{flag} requires a value"),
            OptError::BadValue { flag, value } => {
                write!(f, "invalid value {value:?} for --{flag}")
            }
            OptError::UnknownFlag(flag) => write!(f, "unrecognized flag --{flag}"),
        }
    }
}

impl std::error::Error for OptError {}

impl Opts {
    /// Parse an argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, OptError> {
        let mut opts = Opts::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| OptError::MissingValue(flag.to_owned()))?;
                opts.flags.insert(flag.to_owned(), value);
            } else {
                opts.positional.push(arg);
            }
        }
        Ok(opts)
    }

    /// A string flag.
    #[must_use]
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Reject any flag outside `allowed` — a typo'd flag must fail loudly,
    /// not silently launch the subcommand with defaults.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), OptError> {
        let mut unknown: Vec<&str> = self
            .flags
            .keys()
            .map(String::as_str)
            .filter(|flag| !allowed.contains(flag))
            .collect();
        unknown.sort_unstable();
        match unknown.first() {
            Some(flag) => Err(OptError::UnknownFlag((*flag).to_owned())),
            None => Ok(()),
        }
    }

    /// A parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, OptError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| OptError::BadValue {
                flag: flag.to_owned(),
                value: raw.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::parse(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    #[test]
    fn positional_and_flags() {
        let opts = parse(&["repro", "table1", "--n", "5", "--ratio", "2.0"]);
        assert_eq!(opts.positional, vec!["repro", "table1"]);
        assert_eq!(opts.get("n"), Some("5"));
        assert_eq!(opts.get_or("ratio", 1.0).unwrap(), 2.0);
        assert_eq!(opts.get_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Opts::parse(vec!["--n".to_owned()]).unwrap_err();
        assert_eq!(err, OptError::MissingValue("n".to_owned()));
    }

    #[test]
    fn bad_value_is_an_error() {
        let opts = parse(&["--n", "five"]);
        assert!(opts.get_or::<usize>("n", 0).is_err());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let opts = parse(&["--n", "5", "--prot-base", "7700"]);
        assert_eq!(
            opts.reject_unknown(&["n", "port-base"]),
            Err(OptError::UnknownFlag("prot-base".to_owned()))
        );
        assert_eq!(opts.reject_unknown(&["n", "prot-base"]), Ok(()));
    }
}
