//! `dynvote` — the command-line harness.
//!
//! ```text
//! dynvote repro <target>      regenerate a paper table/figure
//! dynvote avail [...]         availability of one algorithm at (n, ratio)
//! dynvote sweep [...]         availability sweep as CSV or JSON
//! dynvote figures [...]       both paper figure sweeps, multi-core
//! dynvote crossover [...]     crossover ratio between two algorithms
//! dynvote mc [...]            parallel Monte-Carlo replication batch
//! dynvote simulate [...]      message-level protocol simulation run
//! dynvote experiments [...]   algorithms × seeds protocol-sim grid
//! dynvote chaos [...]         nemesis schedules: run, replay, minimize
//! dynvote serve [...]         boot a live TCP loopback cluster
//! dynvote loadgen [...]       closed-loop load against a served cluster
//! dynvote recover [...]       inspect a serve data directory offline
//! dynvote help                this text
//! ```

mod live;
mod opts;
mod repro;
mod runs;

use opts::Opts;
use std::process::ExitCode;

const HELP: &str = "\
dynvote — dynamic voting replica control (Jajodia & Mutchler)

USAGE:
    dynvote repro <target>
        Regenerate a table/figure. Targets:
            fig1      the Fig. 1 partition graph scenario
            example4  the Section IV worked example
            fig2      the hybrid state diagram + machine cross-check
            theorem2  hybrid vs dynamic voting dominance
            table1    the Theorem 3 crossover table (n = 3..20)
            fig3      normalised availability, 5 sites, small ratios (CSV)
            fig4      normalised availability, 5 sites, big ratios (CSV)
            sigmod87  dynamic voting vs static voting (the 1987 claims)
            optimal   the Section VII conjectured-optimal variant
            mc        Markov vs Monte-Carlo cross-validation
            hetero / witnesses / joint / votes
                      the extension experiments (E11–E16), defaults
            extensions  all four extension experiments
            all       everything

    dynvote avail --algo <name> --n <sites> --ratio <mu/lambda> [--mc true]
        Site availability of one algorithm (analytic; --mc adds a
        Monte-Carlo estimate). Algorithms: voting, dynamic,
        dynamic-linear, hybrid, modified-hybrid, optimal-candidate.

    dynvote sweep --n <sites> --lo <r> --hi <r> --steps <k>
                  [--algos a,b,c] [--format csv|json] [--jobs j]
        Normalised-availability sweep over a ratio grid. Grid points
        run on --jobs worker threads (0 or absent = auto, also settable
        via DYNVOTE_JOBS); results are byte-identical for any job
        count. Progress lines go to stderr.

    dynvote figures [--n <sites>] [--jobs j]
        Both paper figure sweeps (Figs. 3 and 4) as CSV, through the
        same parallel engine.

    dynvote crossover --first <algo> --second <algo> --n <sites>
        The ratio where `first` overtakes `second`.

    dynvote chain --algo <name> --n <sites> [--ratio r] [--format text|dot]
        The algorithm's availability Markov chain (machine-derived).
        DOT output draws the paper's Fig. 2: pipe into `dot -Tsvg`.

    dynvote hetero [--rates f:r,f:r,...]
        Heterogeneous per-site rates: availability of every algorithm
        with the distinguished site placed on the most vs. least
        reliable site (the Section VII challenge).

    dynvote transient --algo <name> --n <sites> [--ratio r]
                      [--until t] [--steps k]
        Availability trajectory from the all-up start (CSV), by
        uniformization of the derived chain.

    dynvote witnesses --n <sites> --ratio <r>
        Voting-with-witnesses availability as data copies are traded
        for witnesses (Paris's scheme).

    dynvote joint [--algos a,b] [--n k] [--ratio r]
        Joint availability of a transaction touching several files
        (footnote 2), vs the independence prediction.

    dynvote votes [--rates f:r,...] [--max-vote k]
        The availability-optimal static vote assignment (exhaustive,
        exact), compared against the dynamic algorithms.

    dynvote mc [--algo <name>] [--n k] [--ratio r] [--horizon t]
               [--burn-in t] [--batches b] [--replications R]
               [--seed s] [--jobs j]
        A batch of R independent Monte-Carlo replications; replication
        i is seeded by the counter-based splitter seed_for(seed, i), so
        the batch is byte-identical for any --jobs value. Prints one
        CSV row per replication plus the across-replication mean and
        95% interval.

    dynvote experiments [--algos a,b,c] [--replications R] [--n k]
                        [--duration t] [--update-rate r] [--fault-rate r]
                        [--link-fault-rate r] [--drop p] [--seed s]
                        [--jobs j]
        An algorithms × replications grid of message-level protocol
        simulations under fault injection, one CSV row per cell, run on
        --jobs worker threads. Exits non-zero if any cell violates
        one-copy serializability.

    dynvote simulate --n <sites> --algo <name> --duration <t>
                     [--update-rate r] [--fault-rate r] [--link-fault-rate r]
                     [--drop p] [--seed s] [--trace true]
        Run the message-level protocol under fault injection and report
        statistics, per-kind protocol event tallies, and invariant
        checks. --trace true prints every structured protocol event
        (votes, quorums, force-writes, termination rounds) to stderr.

    dynvote chaos [--algo <name|all>] [--n k] [--seed s] [--duration t]
                  [--update-rate r] [--drop p] [--schedule in.json]
                  [--out file.json] [--minimize true] [--min-out file.json]
        Generate (or replay, with --schedule) a serialized nemesis fault
        schedule — crashes, rolling and one-way partitions, lossy bursts,
        duplication, reordering — run it against one or all algorithms,
        and on a violation optionally delta-debug the schedule down to a
        minimal reproducer.

    dynvote serve [--n k] [--algo <name>] [--port-base p] [--duration secs]
                  [--keys k] [--trace true] [--data-dir path] [--fsync policy]
                  [--http-port p] [--max-inflight k] [--max-conns k]
                  [--shard-threads w] [--max-batch k]
        Boot a live n-node cluster on loopback TCP, node i listening on
        127.0.0.1:(port-base + i). With --duration 0 (default) it runs
        until killed; otherwise it audits consistency at the deadline
        and exits non-zero on a violation. --trace true renders every
        protocol event to stderr as it happens.

        --keys k hosts k independent replicated objects on the same
        sites (default 1). Each object runs its own voting state
        machine; commit rounds from different objects share peer
        frames and, with --data-dir, one group-commit fsync barrier
        seals all objects' steps from a batch. Ops pick an object with
        a \"key\" field; an absent key means object 0, so single-object
        clients keep working unchanged.

        --shard-threads w runs each node's protocol kernels on w
        shard-affine worker threads (object o is owned by worker
        o mod w; per-object execution stays single-threaded, so
        per-object state is byte-identical for any w). 0 (default)
        means auto: DYNVOTE_JOBS, else the hardware thread count. The
        value is clamped to the object count, so --keys 1 always runs
        the in-line single-threaded path. A merge barrier still seals
        every batch as one group-commit record + one fsync.

        --max-batch k caps commit pipelining (default 32): ops against a
        locked object queue per object instead of refusing Busy, and
        when the lock frees, up to k queued updates are sealed by one
        vote/commit round as k consecutive log entries. k=1 disables
        multi-op rounds; an idle object still commits a lone op
        immediately, so batching adds no idle latency. A full queue
        refuses with the typed Overloaded reply (HTTP 429).

        Each node runs one epoll reactor thread that multiplexes its
        peer links and clients. --http-port additionally opens an
        HTTP/1.1 front door on 127.0.0.1:(http-port + i):
            POST /v1/op    submit {\"op\":\"update\"} or {\"op\":\"read\"}
            GET  /metrics  Prometheus-style text: protocol events, net
                           counters, op-latency histogram
            GET  /status   JSON: algorithm, VN/SC/DS, partition view,
                           log length, commits, WAL epoch
        --max-inflight caps ops admitted concurrently per node (excess
        is refused with 429 + Retry-After); --max-conns caps open
        connections per node (excess accepts are refused).

        Without --data-dir the cluster is explicitly amnesiac: durable
        state lives in process memory only. With --data-dir, site i
        keeps a checksummed write-ahead log plus snapshots under
        <path>/site-i; boot recovers from whatever is there, so killing
        the process (even SIGKILL) and re-running serve with the same
        --data-dir resumes from disk. --fsync sets the force-write
        discipline: always (default, fsync at every force-write
        barrier), batch (alias for interval:0), interval:<ms> (group
        commit, at most one fsync per interval), never (OS-paced).
        --fsync without --data-dir is a configuration error.

    dynvote recover --data-dir <path> [--n k]
        Offline inspection: run boot recovery (newest valid snapshot +
        WAL replay, truncating at the first torn record) for every
        site-<i> under the data directory and print the state each
        site would reboot with: a per-site summary (snapshot epoch,
        objects recovered, segments/records replayed) followed by one
        line per object (VN/SC/DS, log length, commits, orphaned
        prepare). Objects are discovered from disk, not configured.
        Read-only — repairs nothing, deletes nothing.

    dynvote loadgen [--n k] [--host h] [--port-base p] [--concurrency c]
                    [--duration secs] [--read-fraction f] [--seed s]
                    [--keys k] [--key-dist uniform|zipf]
                    [--crash <site>] [--crash-after secs] [--restart-after secs]
                    [--min-commits k] [--algo <label>]
                    [--open-loop true] [--rate r] [--connections c]
                    [--http-port p]
        Closed-loop workload against a served cluster: c workers issue
        updates/reads round-robin over the nodes, optionally crashing
        and restarting one site mid-run. Prints a JSON report with
        throughput, per-shard and aggregate commit counts, p50/p95/p99
        commit latency, per-site protocol event tallies, and per-site
        net counters (dial failures, backpressure drops, decode
        errors), audits every node, and exits non-zero on a
        serializability violation or if fewer than --min-commits
        updates committed. --algo only labels the report (the wire
        protocol is algorithm-agnostic).

        --keys k spreads ops over k objects (serve must host at least
        that many); --key-dist picks the sampling law: uniform
        (default) or zipf (exponent 1, key 0 hottest). The report's
        per_shard_commits array has one commit count per key.

        --open-loop true switches to paced arrivals against the HTTP
        front door (serve must be running with --http-port): --rate
        arrivals per second, each on its own connection, at most
        --connections open at once (excess arrivals are shed and
        counted). Latency is measured from the intended arrival
        instant, so queueing shows up as latency instead of silently
        reducing offered load. 429s, shed arrivals, and connect errors
        are reported separately.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let command = opts
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let result = match command {
        "repro" => {
            let target = opts.positional.get(1).map(String::as_str).unwrap_or("all");
            let defaults = Opts::default();
            match target {
                // The extension experiments (E11–E16) run with their
                // default parameters under `repro`.
                "hetero" => runs::hetero_cmd(&defaults),
                "witnesses" => runs::witnesses_cmd(&defaults),
                "joint" => runs::joint_cmd(&defaults),
                "votes" => runs::votes_cmd(&defaults),
                "extensions" | "all" => (|| {
                    if target == "all" {
                        repro::run("all");
                    }
                    for (name, f) in [
                        (
                            "hetero (E11)",
                            runs::hetero_cmd as fn(&Opts) -> Result<(), String>,
                        ),
                        ("witnesses (E12)", runs::witnesses_cmd),
                        ("joint (E15)", runs::joint_cmd),
                        ("votes (E16)", runs::votes_cmd),
                    ] {
                        println!("================ repro {name} ================");
                        f(&defaults)?;
                        println!();
                    }
                    Ok(())
                })(),
                _ => {
                    if repro::run(target) {
                        Ok(())
                    } else {
                        Err(format!("unknown repro target {target:?}"))
                    }
                }
            }
        }
        "avail" => runs::avail(&opts),
        "sweep" => runs::sweep_cmd(&opts),
        "figures" => runs::figures_cmd(&opts),
        "mc" => runs::mc_cmd(&opts),
        "experiments" => runs::experiments_cmd(&opts),
        "crossover" => runs::crossover_cmd(&opts),
        "chain" => runs::chain_cmd(&opts),
        "hetero" => runs::hetero_cmd(&opts),
        "transient" => runs::transient_cmd(&opts),
        "witnesses" => runs::witnesses_cmd(&opts),
        "joint" => runs::joint_cmd(&opts),
        "votes" => runs::votes_cmd(&opts),
        "simulate" => runs::simulate_cmd(&opts),
        "chaos" => runs::chaos_cmd(&opts),
        "serve" => live::serve_cmd(&opts),
        "loadgen" => live::loadgen_cmd(&opts),
        "recover" => live::recover_cmd(&opts),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `dynvote help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
