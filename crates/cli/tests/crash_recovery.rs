//! Process-level crash nemesis, end to end through the real binary:
//! SIGKILL a `dynvote serve --data-dir` cluster in the middle of a
//! commit storm, respawn it from the same data directory, and prove
//! that every acknowledged commit survived, the logs are gapless, the
//! audit is clean, and the rebooted cluster keeps committing.
//!
//! The respawn binds a fresh port base: the dead process's sockets
//! linger in TIME_WAIT and the listener does not set SO_REUSEADDR.
//! Durability is a property of the data directory, not the ports.

use dynvote_cluster::wire::{ClientOp, ClientReply};
use dynvote_cluster::TcpClient;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Kills the serve child on drop so a failing assertion never leaks a
/// listener into the next test run.
struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_serve(dir: &Path, n: usize, port_base: u16) -> ServeGuard {
    let child = Command::new(env!("CARGO_BIN_EXE_dynvote"))
        .args([
            "serve",
            "--algo",
            "hybrid",
            "--n",
            &n.to_string(),
            "--port-base",
            &port_base.to_string(),
            "--data-dir",
            dir.to_str().unwrap(),
            "--fsync",
            "always",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dynvote serve");
    ServeGuard(child)
}

/// Connect to one site, waiting out the boot window.
fn connect(port: u16) -> TcpClient {
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match TcpClient::connect(addr) {
            Ok(client) => return client,
            Err(e) if Instant::now() >= deadline => {
                panic!("cluster not reachable at {addr}: {e}")
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Commit one update, retrying past transient Busy/TimedOut replies.
fn commit_update(client: &mut TcpClient, what: &str) -> u64 {
    for _ in 0..50 {
        match client.request(&ClientOp::Update { key: 0 }).expect(what) {
            ClientReply::Committed { version } => return version,
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    panic!("{what}: update never committed");
}

fn dump_log(client: &mut TcpClient) -> (u64, Vec<u64>) {
    match client
        .request(&ClientOp::DumpLog { key: 0 })
        .expect("dump log")
    {
        ClientReply::Log { meta, entries } => {
            (meta.version, entries.iter().map(|e| e.version).collect())
        }
        other => panic!("unexpected DumpLog reply {other:?}"),
    }
}

#[test]
fn sigkill_mid_storm_recovers_every_acked_commit() {
    let n = 5;
    let dir: PathBuf =
        std::env::temp_dir().join(format!("dynvote-cli-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- First life: commit storm, then SIGKILL mid-flight. ---
    let first_base = 7840;
    let mut serve = spawn_serve(&dir, n, first_base);

    let mut seed_client = connect(first_base);
    for _ in 0..3 {
        commit_update(&mut seed_client, "seed commit");
    }

    // The storm thread hammers site 0 until the process dies under it;
    // it reports the highest version the server *acknowledged*. A
    // commit the client never saw acked may legitimately be lost.
    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut acked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match seed_client.request(&ClientOp::Update { key: 0 }) {
                    Ok(ClientReply::Committed { version }) => acked = version,
                    Ok(_) => {}
                    Err(_) => break, // the nemesis struck
                }
            }
            acked
        })
    };
    std::thread::sleep(Duration::from_millis(300));
    serve.0.kill().expect("SIGKILL serve");
    serve.0.wait().expect("reap serve");
    stop.store(true, Ordering::Relaxed);
    let acked = storm.join().expect("storm thread");
    assert!(acked >= 3, "storm never got going (acked {acked})");

    // --- Second life: same data directory, fresh ports. ---
    let second_base = 7860;
    let _serve2 = spawn_serve(&dir, n, second_base);
    let mut client = connect(second_base);

    // Every acknowledged commit was forced to disk before its reply
    // left the coordinator, so site 0 must recover at least `acked`.
    let (meta_version, versions) = dump_log(&mut client);
    assert!(
        meta_version >= acked,
        "recovered version {meta_version} lost acked commit {acked}"
    );
    assert_eq!(
        meta_version,
        versions.len() as u64,
        "metadata disagrees with the recovered log"
    );
    for (j, version) in versions.iter().enumerate() {
        assert_eq!(*version, (j + 1) as u64, "recovered log has a gap");
    }

    // The rebooted cluster is live: it accepts at least one new commit
    // past everything the first life wrote.
    let next = commit_update(&mut client, "post-recovery commit");
    assert!(next > meta_version, "post-recovery commit did not advance");

    // Ledger audit across every node: primed from the recovered logs,
    // so the new commit extends the chain instead of flagging a gap.
    for i in 0..n {
        let mut site = connect(second_base + i as u16);
        match site.request(&ClientOp::Audit).expect("audit") {
            ClientReply::Audit { consistent, .. } => {
                assert!(consistent, "site {i} flags divergence after reboot");
            }
            other => panic!("unexpected audit reply {other:?}"),
        }
    }

    drop(_serve2);
    std::fs::remove_dir_all(&dir).unwrap();
}
