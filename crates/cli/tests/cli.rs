//! Integration tests of the `dynvote` binary: every subcommand runs,
//! exits cleanly, and prints what it promises.

use std::process::Command;

fn dynvote(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_dynvote"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn help_lists_every_subcommand() {
    let (ok, out, _) = dynvote(&["help"]);
    assert!(ok);
    for cmd in [
        "repro",
        "avail",
        "sweep",
        "figures",
        "mc",
        "crossover",
        "chain",
        "hetero",
        "transient",
        "witnesses",
        "joint",
        "votes",
        "simulate",
        "experiments",
        "chaos",
    ] {
        assert!(out.contains(cmd), "help must mention {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, err) = dynvote(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn repro_fig1_prints_the_table() {
    let (ok, out, _) = dynvote(&["repro", "fig1"]);
    assert!(ok);
    for needle in ["time 1", "time 4", "hybrid", "BC"] {
        assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
    }
}

#[test]
fn repro_rejects_unknown_target() {
    let (ok, _, err) = dynvote(&["repro", "fig99"]);
    assert!(!ok);
    assert!(err.contains("unknown repro target"));
}

#[test]
fn avail_prints_analytic_value() {
    let (ok, out, _) = dynvote(&["avail", "--algo", "hybrid", "--n", "5", "--ratio", "2.0"]);
    assert!(ok);
    assert!(
        out.contains("0.6425"),
        "expected hybrid@5,2.0 ≈ 0.6425:\n{out}"
    );
}

#[test]
fn avail_validates_arguments() {
    let (ok, _, err) = dynvote(&["avail", "--n", "99"]);
    assert!(!ok && err.contains("--n"));
    let (ok, _, err) = dynvote(&["avail", "--algo", "quorumtron"]);
    assert!(!ok && err.contains("unknown algorithm"));
}

#[test]
fn sweep_emits_csv_and_json() {
    let (ok, out, _) = dynvote(&[
        "sweep", "--n", "4", "--lo", "1", "--hi", "2", "--steps", "2",
    ]);
    assert!(ok);
    assert!(out.starts_with("ratio,hybrid,dynamic-linear,voting"));
    assert_eq!(out.lines().count(), 4);

    let (ok, out, _) = dynvote(&[
        "sweep", "--n", "4", "--lo", "1", "--hi", "2", "--steps", "2", "--format", "json",
    ]);
    assert!(ok);
    let parsed: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
    assert_eq!(parsed["n"], 4);
    assert_eq!(parsed["rows"].as_array().unwrap().len(), 3);
}

#[test]
fn sweep_stdout_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        let (ok, out, err) = dynvote(&[
            "sweep", "--n", "5", "--lo", "0.5", "--hi", "2", "--steps", "6", "--jobs", jobs,
        ]);
        assert!(ok, "{err}");
        // Progress goes to stderr, one line per grid point plus header.
        assert_eq!(err.lines().count(), 8, "{err}");
        out
    };
    let serial = run("1");
    assert_eq!(serial, run("4"), "sweep output depends on worker count");
}

#[test]
fn figures_prints_both_figure_series() {
    let (ok, out, _) = dynvote(&["figures", "--n", "4", "--jobs", "2"]);
    assert!(ok, "{out}");
    assert!(out.contains("# fig3 (n = 4)"));
    assert!(out.contains("# fig4 (n = 4)"));
    assert!(out.contains("ratio,hybrid,dynamic-linear,voting"));
}

#[test]
fn mc_replication_batch_is_deterministic_across_jobs() {
    let run = |jobs: &str| {
        let (ok, out, err) = dynvote(&[
            "mc",
            "--algo",
            "hybrid",
            "--ratio",
            "2",
            "--horizon",
            "1500",
            "--burn-in",
            "100",
            "--replications",
            "4",
            "--seed",
            "42",
            "--jobs",
            jobs,
        ]);
        assert!(ok, "{err}");
        out
    };
    let serial = run("1");
    assert!(serial.starts_with("replication,seed,site_availability"));
    assert!(serial.contains("# site availability"));
    assert!(serial.contains("# analytic reference  0.642520"));
    assert_eq!(serial, run("8"), "mc output depends on worker count");
}

#[test]
fn mc_rejects_invalid_config() {
    let (ok, _, err) = dynvote(&["mc", "--batches", "1"]);
    assert!(!ok && err.contains("batches"), "{err}");
    let (ok, _, err) = dynvote(&["mc", "--replications", "0"]);
    assert!(!ok && err.contains("replications"), "{err}");
}

#[test]
fn experiments_grid_is_deterministic_across_jobs() {
    let run = |jobs: &str| {
        let (ok, out, err) = dynvote(&[
            "experiments",
            "--algos",
            "hybrid,voting",
            "--replications",
            "2",
            "--duration",
            "20",
            "--jobs",
            jobs,
        ]);
        assert!(ok, "{err}");
        out
    };
    let serial = run("1");
    assert!(serial.starts_with("algorithm,replication,seed,"));
    assert!(serial.contains("# consistency OK across all 4 cells"));
    assert_eq!(
        serial,
        run("8"),
        "experiments output depends on worker count"
    );
}

#[test]
fn crossover_finds_the_headline_number() {
    let (ok, out, _) = dynvote(&[
        "crossover",
        "--first",
        "hybrid",
        "--second",
        "dynamic-linear",
        "--n",
        "5",
    ]);
    assert!(ok);
    assert!(out.contains("overtakes"), "{out}");
    assert!(
        out.contains("0.629") || out.contains("0.63"),
        "expected ~0.63:\n{out}"
    );
}

#[test]
fn chain_dot_output_is_graphviz() {
    let (ok, out, _) = dynvote(&["chain", "--algo", "hybrid", "--n", "3", "--format", "dot"]);
    assert!(ok);
    assert!(out.starts_with("digraph chain {"));
    assert!(out.contains("doublecircle"));
    assert!(out.trim_end().ends_with('}'));
}

#[test]
fn hetero_prints_the_order_study() {
    let (ok, out, _) = dynvote(&["hetero", "--rates", "1:1,1:2,1:4"]);
    assert!(ok);
    assert!(out.contains("reliable-first"));
    assert!(out.contains("dynamic-linear"));
}

#[test]
fn transient_starts_at_one_and_reports_steady_state() {
    let (ok, out, _) = dynvote(&[
        "transient",
        "--algo",
        "hybrid",
        "--n",
        "4",
        "--ratio",
        "1",
        "--until",
        "4",
        "--steps",
        "4",
    ]);
    assert!(ok);
    assert!(out.contains("0.0000,1.00000000"));
    assert!(out.contains("# steady state:"));
}

#[test]
fn witnesses_table_is_monotone() {
    let (ok, out, _) = dynvote(&["witnesses", "--n", "4", "--ratio", "2"]);
    assert!(ok, "{out}");
    assert!(out.contains("4 of 4"));
    assert!(out.contains("1 of 4"));
}

#[test]
fn joint_reports_marginals_and_product() {
    let (ok, out, _) = dynvote(&[
        "joint",
        "--horizon",
        "4000",
        "--n",
        "4",
        "--algos",
        "hybrid,dynamic",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("independence would predict"));
    assert!(out.contains("marginal hybrid"));
}

#[test]
fn votes_reports_optimal_assignment() {
    let (ok, out, _) = dynvote(&["votes", "--rates", "1:0.5,1:2,1:8", "--max-vote", "2"]);
    assert!(ok, "{out}");
    assert!(out.contains("assignment"));
    assert!(out.contains("uniform votes"));
}

#[test]
fn simulate_reports_consistency_ok() {
    let (ok, out, _) = dynvote(&[
        "simulate",
        "--n",
        "5",
        "--algo",
        "hybrid",
        "--duration",
        "30",
        "--seed",
        "3",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("consistency         OK"));
    assert!(out.contains("commits"));
}

#[test]
fn chaos_runs_every_algorithm_clean() {
    let (ok, out, _) = dynvote(&["chaos", "--n", "5", "--seed", "3", "--duration", "25"]);
    assert!(ok, "{out}");
    assert!(out.contains("nemesis schedule"));
    for algo in [
        "voting",
        "dynamic",
        "dynamic-linear",
        "hybrid",
        "modified-hybrid",
        "optimal-candidate",
    ] {
        assert!(out.contains(algo), "missing {algo} row:\n{out}");
    }
    assert!(out.contains("OK for every algorithm"), "{out}");
}

#[test]
fn chaos_saved_schedule_replays_identically() {
    let dir = std::env::temp_dir().join(format!("dynvote-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("schedule.json");
    let path = path.to_str().unwrap();

    let (ok, first, _) = dynvote(&[
        "chaos",
        "--algo",
        "hybrid",
        "--n",
        "5",
        "--seed",
        "11",
        "--duration",
        "20",
        "--drop",
        "0.05",
        "--out",
        path,
    ]);
    assert!(ok, "{first}");
    assert!(std::fs::metadata(path).is_ok(), "schedule file written");

    // Replaying the saved schedule (same engine seed) must reproduce the
    // exact statistics table — determinism is what makes schedules
    // shareable bug reports.
    let replay_args = [
        "chaos",
        "--algo",
        "hybrid",
        "--n",
        "5",
        "--seed",
        "11",
        "--duration",
        "20",
        "--drop",
        "0.05",
        "--schedule",
        path,
    ];
    let (ok, second, _) = dynvote(&replay_args);
    assert!(ok, "{second}");
    let table = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("hybrid"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(table(&first), table(&second), "replay diverged");

    let (ok, third, _) = dynvote(&replay_args);
    assert!(ok);
    assert_eq!(second, third, "byte-identical output on re-replay");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_rejects_bad_input() {
    let (ok, _, err) = dynvote(&["chaos", "--n", "99"]);
    assert!(!ok && err.contains("2 <= n"), "{err}");
    let (ok, _, err) = dynvote(&["chaos", "--schedule", "/nonexistent/schedule.json"]);
    assert!(!ok && err.contains("cannot read"), "{err}");
    let (ok, _, err) = dynvote(&["chaos", "--algo", "quorumtron"]);
    assert!(!ok && err.contains("unknown algorithm"), "{err}");
}
