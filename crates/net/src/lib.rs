//! # dynvote-net — readiness-based networking primitives
//!
//! A std-only, libc-free networking layer for the cluster: a
//! hand-rolled epoll reactor core plus the incremental decoders the
//! reactor feeds. Nothing in this crate knows about the voting
//! protocol; `dynvote-cluster` composes these pieces into a per-node
//! reactor thread that multiplexes every peer connection and the HTTP
//! client front door.
//!
//! ```text
//! sys    raw syscalls: epoll_create1/ctl/pwait, pipe2, socket, connect
//! poll   Poller / Token / Interest / Events / Waker (mio-shaped)
//! frame  incremental u32-length-prefixed frame decoding
//! http   incremental HTTP/1.1 request + response parsing
//! ```
//!
//! Timer integration: the reactor owns a
//! [`dynvote_core::timer::TimerWheel`]`<Instant, _>` and passes
//! `next_deadline() - now` as the [`Poller::wait`] timeout — see
//! [`poll_timeout`]. Level-triggered discipline, write-queue
//! backpressure, and ownership rules are documented in the workspace
//! DESIGN.md ("Readiness loop and front door").

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod frame;
pub mod http;
pub mod poll;
pub mod sys;

pub use frame::{FrameDecoder, FrameError};
pub use http::{HttpError, Method, Request, RequestParser, Response, ResponseParser};
pub use poll::{Event, Events, Interest, Poller, Token, Waker};

use std::time::{Duration, Instant};

/// Convert a timer wheel's next deadline into a `Poller::wait` timeout:
/// `None` means no timers are scheduled (block until I/O), `Some(0)`
/// means a timer is already due.
pub fn poll_timeout(next_deadline: Option<Instant>, now: Instant) -> Option<Duration> {
    next_deadline.map(|dl| dl.saturating_duration_since(now))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_timeout_clamps() {
        let now = Instant::now();
        assert_eq!(poll_timeout(None, now), None);
        assert_eq!(
            poll_timeout(Some(now), now + Duration::from_millis(5)),
            Some(Duration::ZERO)
        );
        let dl = now + Duration::from_millis(80);
        assert_eq!(poll_timeout(Some(dl), now), Some(Duration::from_millis(80)));
    }
}
