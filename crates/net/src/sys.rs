//! Raw Linux syscall wrappers for the readiness reactor.
//!
//! The build environment vendors no `libc` crate, and `std` exposes no
//! public epoll API, so the handful of syscalls the reactor needs are
//! invoked directly via inline assembly. Everything returned to callers
//! is an [`OwnedFd`] so ordinary RAII closes descriptors; reads and
//! writes on those descriptors go through `std` (`File`, `TcpStream`),
//! never through raw syscalls.
//!
//! Only `x86_64` and `aarch64` Linux are supported; other targets get
//! stubs that return `ErrorKind::Unsupported` so the crate still
//! compiles (the cluster falls back to the channel transport there).

use std::io;
use std::net::SocketAddr;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable readiness (matches `EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (matches `EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Peer hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0o2000000;
const O_NONBLOCK: usize = 0o4000;
const O_CLOEXEC: usize = 0o2000000;
const SOCK_STREAM: usize = 1;
const SOCK_NONBLOCK: usize = 0o4000;
const SOCK_CLOEXEC: usize = 0o2000000;
const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;

const EINTR: i32 = 4;
const EINPROGRESS: i32 = 115;

/// One `epoll_event` as the kernel lays it out.
///
/// On x86_64 the kernel ABI packs this struct (no padding between the
/// 32-bit event mask and the 64-bit data word); on other architectures
/// it uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen cookie, echoed back on readiness (the slab token).
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, used to size the wait buffer.
    pub const fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const SOCKET: usize = 41;
    pub const CONNECT: usize = 42;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PIPE2: usize = 293;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const PIPE2: usize = 59;
    pub const SOCKET: usize = 198;
    pub const CONNECT: usize = 203;
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall(n: usize, a0: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a0,
        in("rsi") a1,
        in("rdx") a2,
        in("r10") a3,
        in("r8") a4,
        in("r9") 0usize,
        out("rcx") _,
        out("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall(n: usize, a0: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a0 => ret,
        in("x1") a1,
        in("x2") a2,
        in("x3") a3,
        in("x4") a4,
        in("x5") 0usize,
        options(nostack),
    );
    ret
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
unsafe fn syscall(_n: usize, _a0: usize, _a1: usize, _a2: usize, _a3: usize, _a4: usize) -> isize {
    -38 // -ENOSYS
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod nr {
    pub const SOCKET: usize = 0;
    pub const CONNECT: usize = 0;
    pub const EPOLL_CTL: usize = 0;
    pub const EPOLL_PWAIT: usize = 0;
    pub const EPOLL_CREATE1: usize = 0;
    pub const PIPE2: usize = 0;
}

fn cvt(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`.
pub fn epoll_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { syscall(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
}

fn epoll_ctl(epfd: RawFd, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let ev = EpollEvent {
        events,
        data: token,
    };
    let ptr = if op == EPOLL_CTL_DEL {
        0usize
    } else {
        &ev as *const EpollEvent as usize
    };
    cvt(unsafe { syscall(nr::EPOLL_CTL, epfd as usize, op, fd as usize, ptr, 0) })?;
    Ok(())
}

/// Register `fd` with the epoll instance.
pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
}

/// Change the registered interest for `fd`.
pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
}

/// Remove `fd` from the epoll instance.
pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// `epoll_pwait` with a millisecond timeout (`-1` blocks forever).
/// Retries on `EINTR`; returns the number of ready events.
pub fn epoll_wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let ret = unsafe {
            syscall(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0, // no signal mask
            )
        };
        match cvt(ret) {
            Ok(n) => return Ok(n),
            Err(e) if e.raw_os_error() == Some(EINTR) => continue,
            Err(e) => return Err(e),
        }
    }
}

/// `pipe2(O_NONBLOCK | O_CLOEXEC)` → `(read_end, write_end)`.
pub fn pipe() -> io::Result<(OwnedFd, OwnedFd)> {
    let mut fds = [0i32; 2];
    cvt(unsafe {
        syscall(
            nr::PIPE2,
            fds.as_mut_ptr() as usize,
            O_NONBLOCK | O_CLOEXEC,
            0,
            0,
            0,
        )
    })?;
    Ok(unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) })
}

#[repr(C)]
struct SockAddrIn {
    family: u16,
    port: [u8; 2],
    addr: [u8; 4],
    zero: [u8; 8],
}

#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    port: [u8; 2],
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

/// Create a nonblocking close-on-exec TCP socket for the address family
/// of `addr` and start a `connect` toward it.
///
/// Returns `(fd, connected)` where `connected` is `true` if the
/// three-way handshake already finished (possible on loopback) and
/// `false` if the connect is in flight (`EINPROGRESS`) — in that case
/// poll the fd for writability and check `TcpStream::take_error`.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<(OwnedFd, bool)> {
    let family = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    let fd = cvt(unsafe {
        syscall(
            nr::SOCKET,
            family as usize,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
            0,
            0,
        )
    })?;
    let fd = unsafe { OwnedFd::from_raw_fd(fd as RawFd) };

    let (ptr, len) = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                family: AF_INET,
                port: v4.port().to_be_bytes(),
                addr: v4.ip().octets(),
                zero: [0; 8],
            };
            let boxed = Box::new(sa);
            (
                Box::into_raw(boxed) as usize,
                std::mem::size_of::<SockAddrIn>(),
            )
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                family: AF_INET6,
                port: v6.port().to_be_bytes(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            let boxed = Box::new(sa);
            (
                Box::into_raw(boxed) as usize,
                std::mem::size_of::<SockAddrIn6>(),
            )
        }
    };
    let ret = unsafe { syscall(nr::CONNECT, fd.as_raw_fd() as usize, ptr, len, 0, 0) };
    // Reclaim the sockaddr allocation before inspecting the result.
    unsafe {
        match addr {
            SocketAddr::V4(_) => drop(Box::from_raw(ptr as *mut SockAddrIn)),
            SocketAddr::V6(_) => drop(Box::from_raw(ptr as *mut SockAddrIn6)),
        }
    }
    match cvt(ret) {
        Ok(_) => Ok((fd, true)),
        Err(e) if e.raw_os_error() == Some(EINPROGRESS) => Ok((fd, false)),
        // EINTR on connect: the handshake proceeds asynchronously, same
        // as EINPROGRESS (POSIX).
        Err(e) if e.raw_os_error() == Some(EINTR) => Ok((fd, false)),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_create_and_close() {
        let ep = epoll_create().expect("epoll_create1");
        assert!(ep.as_raw_fd() >= 0);
    }

    #[test]
    fn pipe_roundtrip_via_epoll() {
        use std::fs::File;
        use std::io::{Read as _, Write as _};

        let ep = epoll_create().unwrap();
        let (r, w) = pipe().unwrap();
        epoll_add(ep.as_raw_fd(), r.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut evs = [EpollEvent::zeroed(); 4];
        // Nothing ready yet: zero events with a zero timeout.
        let n = epoll_wait(ep.as_raw_fd(), &mut evs, 0).unwrap();
        assert_eq!(n, 0);

        let mut wf = File::from(w);
        wf.write_all(&[1]).unwrap();
        let n = epoll_wait(ep.as_raw_fd(), &mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let data = evs[0].data;
        let events = evs[0].events;
        assert_eq!(data, 7);
        assert_ne!(events & EPOLLIN, 0);

        let mut rf = File::from(r);
        let mut buf = [0u8; 8];
        assert_eq!(rf.read(&mut buf).unwrap(), 1);
    }

    #[test]
    fn nonblocking_connect_to_listener() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (fd, connected) = connect_nonblocking(&addr).unwrap();
        if !connected {
            let ep = epoll_create().unwrap();
            epoll_add(ep.as_raw_fd(), fd.as_raw_fd(), EPOLLOUT, 1).unwrap();
            let mut evs = [EpollEvent::zeroed(); 4];
            let n = epoll_wait(ep.as_raw_fd(), &mut evs, 2000).unwrap();
            assert_eq!(n, 1);
        }
        let stream = std::net::TcpStream::from(fd);
        assert!(stream.take_error().unwrap().is_none());
        let _ = listener.accept().unwrap();
    }

    #[test]
    fn connect_refused_reports_error() {
        // Bind then drop a listener to find a port that refuses.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let (fd, connected) = connect_nonblocking(&addr).unwrap();
        if connected {
            return; // something else grabbed the port; fine
        }
        let ep = epoll_create().unwrap();
        epoll_add(ep.as_raw_fd(), fd.as_raw_fd(), EPOLLOUT, 1).unwrap();
        let mut evs = [EpollEvent::zeroed(); 4];
        let n = epoll_wait(ep.as_raw_fd(), &mut evs, 2000).unwrap();
        assert_eq!(n, 1);
        let stream = std::net::TcpStream::from(fd);
        assert!(stream.take_error().unwrap().is_some());
    }
}
