//! Incremental length-prefixed frame decoding.
//!
//! The cluster wire format (see `dynvote-cluster::wire`) prefixes every
//! frame with a little-endian `u32` length. The blocking transport read
//! frames with two exact reads; the reactor instead feeds whatever
//! bytes the socket yields into a [`FrameDecoder`] and pulls out zero
//! or more complete frames per readiness event — pipelined frames,
//! frames split at arbitrary byte boundaries, and frames spanning many
//! reads all decode identically to the one-shot path (pinned by the
//! proptest suite).

use std::fmt;

/// Typed decode failure. Oversized frames are a protocol violation and
/// the connection must be dropped; a truncated stream only surfaces as
/// an error at EOF via [`FrameDecoder::check_eof`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared frame length exceeds the decoder's configured maximum.
    Oversized {
        /// Length the peer declared.
        declared: usize,
        /// Maximum the decoder accepts.
        max: usize,
    },
    /// The stream ended mid-frame (only from [`FrameDecoder::check_eof`]).
    TruncatedAtEof {
        /// Bytes of the partial frame that were buffered.
        buffered: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame length {declared} exceeds maximum {max}")
            }
            FrameError::TruncatedAtEof { buffered } => {
                write!(f, "stream ended mid-frame with {buffered} bytes buffered")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Streaming decoder for `u32`-length-prefixed frames.
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder rejecting frames larger than `max_frame` payload bytes.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame,
        }
    }

    /// Append bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates, so
        // steady-state decoding is append + in-place scans.
        if self.pos > 0 && self.pos >= self.buf.len().saturating_sub(self.pos) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pull the next complete frame's payload, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed. The returned
    /// slice borrows the internal buffer and is invalidated by the next
    /// call to [`extend`] or `next_frame`.
    ///
    /// [`extend`]: FrameDecoder::extend
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        if len > self.max_frame {
            return Err(FrameError::Oversized {
                declared: len,
                max: self.max_frame,
            });
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        self.pos = start + len;
        Ok(Some(&self.buf[start..start + len]))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Call when the stream reaches EOF: a partial frame left in the
    /// buffer means the peer died mid-frame.
    pub fn check_eof(&self) -> Result<(), FrameError> {
        let pending = self.pending();
        if pending == 0 {
            Ok(())
        } else {
            Err(FrameError::TruncatedAtEof { buffered: pending })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn single_frame_one_shot() {
        let mut d = FrameDecoder::new(1024);
        d.extend(&frame(b"hello"));
        assert_eq!(d.next_frame().unwrap(), Some(&b"hello"[..]));
        assert_eq!(d.next_frame().unwrap(), None);
        d.check_eof().unwrap();
    }

    #[test]
    fn pipelined_frames_split_mid_prefix() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&frame(b"one"));
        stream.extend_from_slice(&frame(b""));
        stream.extend_from_slice(&frame(b"three"));
        let mut d = FrameDecoder::new(1024);
        let mut got: Vec<Vec<u8>> = Vec::new();
        for chunk in stream.chunks(2) {
            d.extend(chunk);
            while let Some(p) = d.next_frame().unwrap() {
                got.push(p.to_vec());
            }
        }
        assert_eq!(got, vec![b"one".to_vec(), Vec::new(), b"three".to_vec()]);
        d.check_eof().unwrap();
    }

    #[test]
    fn oversized_is_typed_error() {
        let mut d = FrameDecoder::new(8);
        d.extend(&frame(b"way too large"));
        assert_eq!(
            d.next_frame(),
            Err(FrameError::Oversized {
                declared: 13,
                max: 8
            })
        );
    }

    #[test]
    fn truncated_at_eof() {
        let mut d = FrameDecoder::new(1024);
        let f = frame(b"partial");
        d.extend(&f[..f.len() - 2]);
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(
            d.check_eof(),
            Err(FrameError::TruncatedAtEof { buffered: 9 })
        );
    }
}
