//! Incremental HTTP/1.1 parsing for the cluster front door.
//!
//! Deliberately small: the front door serves `POST /v1/op`,
//! `GET /metrics`, and `GET /status` over keep-alive connections, so
//! the parser handles request lines, plain headers, `Content-Length`
//! bodies, and pipelining — and rejects everything exotic
//! (`Transfer-Encoding`, headers past 8 KiB, bodies past 64 KiB) with
//! typed errors so the reactor can answer 4xx and close. A matching
//! [`ResponseParser`] drives the open-loop load generator's client
//! side. Both sides decode byte-dribble input identically to one-shot
//! input (pinned by proptests).

use std::fmt;

/// Maximum bytes of request line + headers.
pub const MAX_HEAD: usize = 8 * 1024;
/// Maximum body bytes the front door accepts.
pub const MAX_BODY: usize = 64 * 1024;

/// Typed parse failure. All variants are protocol violations: the
/// server answers with the paired status code and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Request line is not `METHOD SP target SP HTTP/1.x`.
    BadRequestLine,
    /// HTTP version other than 1.0 / 1.1.
    BadVersion,
    /// A header line without a colon.
    BadHeader,
    /// `Content-Length` missing, duplicated inconsistently, or non-numeric.
    BadContentLength,
    /// Request line + headers exceed [`MAX_HEAD`].
    HeadTooLarge,
    /// Declared body exceeds [`MAX_BODY`].
    BodyTooLarge {
        /// Length the client declared.
        declared: usize,
    },
    /// `Transfer-Encoding` is not supported.
    UnsupportedTransferEncoding,
    /// Status line is not `HTTP/1.x NNN reason` (response side).
    BadStatusLine,
}

impl HttpError {
    /// The status code a server should answer this violation with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadVersion => write!(f, "unsupported HTTP version"),
            HttpError::BadHeader => write!(f, "malformed header"),
            HttpError::BadContentLength => write!(f, "bad content-length"),
            HttpError::HeadTooLarge => write!(f, "headers exceed {MAX_HEAD} bytes"),
            HttpError::BodyTooLarge { declared } => {
                write!(f, "declared body of {declared} bytes exceeds {MAX_BODY}")
            }
            HttpError::UnsupportedTransferEncoding => write!(f, "transfer-encoding unsupported"),
            HttpError::BadStatusLine => write!(f, "malformed status line"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Request methods the front door distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `HEAD`
    Head,
    /// Anything else (answered 405).
    Other,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Parsed method.
    pub method: Method,
    /// Request target exactly as sent (e.g. `/v1/op`).
    pub target: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

/// Incremental request parser with pipelining support.
///
/// Feed bytes with [`extend`], pull complete requests with [`next_request`].
/// The parser retains unconsumed bytes across calls, so back-to-back
/// pipelined requests in one TCP segment each come out of successive
/// `next_request` calls.
///
/// [`extend`]: RequestParser::extend
/// [`next_request`]: RequestParser::next_request
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    pos: usize,
}

impl RequestParser {
    /// A fresh parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Append bytes read from the connection.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.pos > 0 && self.pos >= self.buf.len().saturating_sub(self.pos) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as requests.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull the next complete request, `Ok(None)` if more bytes are needed.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        // Skip stray CRLF between pipelined requests (RFC 9112 §2.2).
        while self.pos < self.buf.len()
            && (self.buf[self.pos] == b'\r' || self.buf[self.pos] == b'\n')
        {
            self.pos += 1;
        }
        let data = &self.buf[self.pos..];
        if data.is_empty() {
            return Ok(None);
        }
        let head_end = match find_head_end(data) {
            Some(i) => i,
            None => {
                if data.len() > MAX_HEAD {
                    return Err(HttpError::HeadTooLarge);
                }
                return Ok(None);
            }
        };
        if head_end > MAX_HEAD {
            return Err(HttpError::HeadTooLarge);
        }
        let head = &data[..head_end];
        let mut lines = head.split(|&b| b == b'\n').map(trim_cr);
        let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
        let (method, target, version11) = parse_request_line(request_line)?;

        let mut content_length: Option<usize> = None;
        let mut keep_alive = version11; // HTTP/1.1 defaults to keep-alive
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = split_header(line)?;
            if eq_ignore_case(name, b"content-length") {
                let v = parse_decimal(value).ok_or(HttpError::BadContentLength)?;
                if let Some(prev) = content_length {
                    if prev != v {
                        return Err(HttpError::BadContentLength);
                    }
                }
                content_length = Some(v);
            } else if eq_ignore_case(name, b"transfer-encoding") {
                return Err(HttpError::UnsupportedTransferEncoding);
            } else if eq_ignore_case(name, b"connection") {
                if contains_token_ignore_case(value, b"close") {
                    keep_alive = false;
                } else if contains_token_ignore_case(value, b"keep-alive") {
                    keep_alive = true;
                }
            }
        }
        let body_len = content_length.unwrap_or(0);
        if body_len > MAX_BODY {
            return Err(HttpError::BodyTooLarge { declared: body_len });
        }
        // +4 for the CRLFCRLF terminator find_head_end excludes.
        let total = head_end + 4 + body_len;
        if data.len() < total {
            return Ok(None);
        }
        let body = data[head_end + 4..total].to_vec();
        let target = String::from_utf8_lossy(target).into_owned();
        self.pos += total;
        Ok(Some(Request {
            method,
            target,
            keep_alive,
            body,
        }))
    }
}

/// One parsed response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// Response body.
    pub body: Vec<u8>,
}

/// Incremental response parser for the open-loop HTTP client.
#[derive(Default)]
pub struct ResponseParser {
    buf: Vec<u8>,
    pos: usize,
}

impl ResponseParser {
    /// A fresh parser.
    pub fn new() -> ResponseParser {
        ResponseParser::default()
    }

    /// Append bytes read from the connection.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.pos > 0 && self.pos >= self.buf.len().saturating_sub(self.pos) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as responses.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull the next complete response, `Ok(None)` if more bytes are needed.
    pub fn next_response(&mut self) -> Result<Option<Response>, HttpError> {
        while self.pos < self.buf.len()
            && (self.buf[self.pos] == b'\r' || self.buf[self.pos] == b'\n')
        {
            self.pos += 1;
        }
        let data = &self.buf[self.pos..];
        if data.is_empty() {
            return Ok(None);
        }
        let head_end = match find_head_end(data) {
            Some(i) => i,
            None => {
                if data.len() > MAX_HEAD {
                    return Err(HttpError::HeadTooLarge);
                }
                return Ok(None);
            }
        };
        let head = &data[..head_end];
        let mut lines = head.split(|&b| b == b'\n').map(trim_cr);
        let status_line = lines.next().ok_or(HttpError::BadStatusLine)?;
        let (status, version11) = parse_status_line(status_line)?;
        let mut content_length: Option<usize> = None;
        let mut keep_alive = version11;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = split_header(line)?;
            if eq_ignore_case(name, b"content-length") {
                content_length = Some(parse_decimal(value).ok_or(HttpError::BadContentLength)?);
            } else if eq_ignore_case(name, b"transfer-encoding") {
                return Err(HttpError::UnsupportedTransferEncoding);
            } else if eq_ignore_case(name, b"connection")
                && contains_token_ignore_case(value, b"close")
            {
                keep_alive = false;
            }
        }
        let body_len = content_length.unwrap_or(0);
        if body_len > MAX_BODY {
            return Err(HttpError::BodyTooLarge { declared: body_len });
        }
        let total = head_end + 4 + body_len;
        if data.len() < total {
            return Ok(None);
        }
        let body = data[head_end + 4..total].to_vec();
        self.pos += total;
        Ok(Some(Response {
            status,
            keep_alive,
            body,
        }))
    }
}

/// Serialize a response into `out` (appends; does not clear).
pub fn write_response(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) {
    use std::io::Write as _;
    let _ = write!(out, "HTTP/1.1 {status} {reason}\r\n");
    let _ = write!(out, "content-type: {content_type}\r\n");
    let _ = write!(out, "content-length: {}\r\n", body.len());
    for (name, value) in extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    if !keep_alive {
        out.extend_from_slice(b"connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

/// Offset of the head (request/status line + headers) — the index of
/// the `\r\n\r\n` terminator, exclusive.
fn find_head_end(data: &[u8]) -> Option<usize> {
    data.windows(4).position(|w| w == b"\r\n\r\n")
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

fn parse_request_line(line: &[u8]) -> Result<(Method, &[u8], bool), HttpError> {
    let mut parts = line.split(|&b| b == b' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(HttpError::BadRequestLine)?;
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }
    let version11 = match version {
        b"HTTP/1.1" => true,
        b"HTTP/1.0" => false,
        _ => return Err(HttpError::BadVersion),
    };
    let method = match method {
        b"GET" => Method::Get,
        b"POST" => Method::Post,
        b"HEAD" => Method::Head,
        _ => Method::Other,
    };
    Ok((method, target, version11))
}

fn parse_status_line(line: &[u8]) -> Result<(u16, bool), HttpError> {
    let mut parts = line.splitn(3, |&b| b == b' ');
    let version = parts.next().ok_or(HttpError::BadStatusLine)?;
    let code = parts.next().ok_or(HttpError::BadStatusLine)?;
    let version11 = match version {
        b"HTTP/1.1" => true,
        b"HTTP/1.0" => false,
        _ => return Err(HttpError::BadVersion),
    };
    let status = parse_decimal(code).ok_or(HttpError::BadStatusLine)?;
    if !(100..=599).contains(&status) {
        return Err(HttpError::BadStatusLine);
    }
    Ok((status as u16, version11))
}

fn split_header(line: &[u8]) -> Result<(&[u8], &[u8]), HttpError> {
    let colon = line
        .iter()
        .position(|&b| b == b':')
        .ok_or(HttpError::BadHeader)?;
    let name = trim_ws(&line[..colon]);
    let value = trim_ws(&line[colon + 1..]);
    if name.is_empty() {
        return Err(HttpError::BadHeader);
    }
    Ok((name, value))
}

fn trim_ws(mut s: &[u8]) -> &[u8] {
    while let [b' ' | b'\t', rest @ ..] = s {
        s = rest;
    }
    while let [rest @ .., b' ' | b'\t'] = s {
        s = rest;
    }
    s
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.eq_ignore_ascii_case(b)
}

fn contains_token_ignore_case(value: &[u8], token: &[u8]) -> bool {
    value
        .split(|&b| b == b',')
        .any(|part| eq_ignore_case(trim_ws(part), token))
}

fn parse_decimal(s: &[u8]) -> Option<usize> {
    if s.is_empty() || s.len() > 10 {
        return None;
    }
    let mut v: usize = 0;
    for &b in s {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as usize)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_get_keep_alive() {
        let mut p = RequestParser::new();
        p.extend(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = p.next_request().unwrap().unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/metrics");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
        assert_eq!(p.next_request().unwrap(), None);
    }

    #[test]
    fn post_with_body_split_byte_by_byte() {
        let raw = b"POST /v1/op HTTP/1.1\r\ncontent-length: 15\r\n\r\n{\"op\":\"update\"}";
        let mut p = RequestParser::new();
        let mut got = None;
        for &b in raw.iter() {
            p.extend(&[b]);
            if let Some(req) = p.next_request().unwrap() {
                got = Some(req);
            }
        }
        let req = got.expect("request should complete");
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"{\"op\":\"update\"}");
    }

    #[test]
    fn pipelined_requests_in_one_segment() {
        let mut p = RequestParser::new();
        p.extend(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let a = p.next_request().unwrap().unwrap();
        let b = p.next_request().unwrap().unwrap();
        assert_eq!(a.target, "/a");
        assert!(a.keep_alive);
        assert_eq!(b.target, "/b");
        assert!(!b.keep_alive);
        assert_eq!(p.next_request().unwrap(), None);
    }

    #[test]
    fn http10_defaults_to_close() {
        let mut p = RequestParser::new();
        p.extend(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!p.next_request().unwrap().unwrap().keep_alive);
    }

    #[test]
    fn typed_errors() {
        let mut p = RequestParser::new();
        p.extend(b"NOT A REQUEST LINE AT ALL\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::BadRequestLine));

        let mut p = RequestParser::new();
        p.extend(b"GET / HTTP/2.0\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::BadVersion));

        let mut p = RequestParser::new();
        p.extend(b"POST / HTTP/1.1\r\ncontent-length: zebra\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::BadContentLength));

        let mut p = RequestParser::new();
        p.extend(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
        assert_eq!(
            p.next_request(),
            Err(HttpError::UnsupportedTransferEncoding)
        );

        let mut p = RequestParser::new();
        let huge = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        p.extend(huge.as_bytes());
        assert_eq!(
            p.next_request(),
            Err(HttpError::BodyTooLarge {
                declared: MAX_BODY + 1
            })
        );
    }

    #[test]
    fn head_too_large() {
        let mut p = RequestParser::new();
        p.extend(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEAD + 16];
        p.extend(b"x-f: ");
        p.extend(&filler);
        assert_eq!(p.next_request(), Err(HttpError::HeadTooLarge));
    }

    #[test]
    fn response_roundtrip() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "Too Many Requests",
            "application/json",
            &[("retry-after", "1")],
            b"{\"error\":\"overloaded\"}",
            true,
        );
        let mut p = ResponseParser::new();
        // dribble 3 bytes at a time
        let mut got = None;
        for chunk in out.chunks(3) {
            p.extend(chunk);
            if let Some(r) = p.next_response().unwrap() {
                got = Some(r);
            }
        }
        let r = got.unwrap();
        assert_eq!(r.status, 429);
        assert!(r.keep_alive);
        assert_eq!(r.body, b"{\"error\":\"overloaded\"}");
    }
}
