//! A minimal mio-shaped readiness poller over raw epoll.
//!
//! One [`Poller`] instance per reactor thread. Sources are any
//! `AsRawFd` (listeners, streams, pipes); each registration carries a
//! caller-chosen [`Token`] that comes back in the [`Event`]s produced
//! by [`Poller::wait`]. Registration is **level-triggered**: a source
//! keeps reporting ready until the condition is drained, so interest
//! must be narrowed (via [`Poller::reregister`]) when a direction is
//! intentionally idle — e.g. dropping `WRITABLE` once an output buffer
//! empties, or dropping `READABLE` while a connection is blocked on an
//! in-flight request.
//!
//! The [`Waker`] is a classic self-pipe: the read end is registered
//! with the poller, `wake()` writes one byte from any thread, and the
//! reactor drains the pipe when its token surfaces.

use std::io;
use std::os::fd::{AsRawFd, OwnedFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::sys;

/// Identifies a registered source in events returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);
    /// Interest in both directions.
    pub const BOTH: Interest = Interest(0b11);
    /// No direction — the source stays registered but only error/hangup
    /// conditions are reported.
    pub const NONE: Interest = Interest(0);

    /// Combine two interests.
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include read readiness?
    pub const fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Does this interest include write readiness?
    pub const fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }

    fn epoll_mask(self) -> u32 {
        let mut m = 0;
        if self.is_readable() {
            m |= sys::EPOLLIN;
        }
        if self.is_writable() {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    mask: u32,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (includes hangup, which surfaces as a 0-byte read).
    pub fn is_readable(&self) -> bool {
        self.mask & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// Write readiness (includes error, so a failed nonblocking connect
    /// wakes writers to collect the error).
    pub fn is_writable(&self) -> bool {
        self.mask & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// True if the kernel flagged an error condition on the source.
    pub fn is_error(&self) -> bool {
        self.mask & sys::EPOLLERR != 0
    }

    /// True if the peer hung up.
    pub fn is_hangup(&self) -> bool {
        self.mask & sys::EPOLLHUP != 0
    }
}

/// Reusable buffer of readiness notifications.
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::EpollEvent::zeroed(); capacity.max(1)],
            len: 0,
        }
    }

    /// Iterate over the events produced by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|ev| {
            // Copy out of the (possibly packed) kernel struct first.
            let data = ev.data;
            let mask = ev.events;
            Event {
                token: Token(data as usize),
                mask,
            }
        })
    }

    /// Number of events from the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the last wait returned no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Create a new poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    /// Register `source` with the given token and interest.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        sys::epoll_add(
            self.epfd.as_raw_fd(),
            source.as_raw_fd(),
            interest.epoll_mask(),
            token.0 as u64,
        )
    }

    /// Change the interest (and/or token) of an already-registered source.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        sys::epoll_mod(
            self.epfd.as_raw_fd(),
            source.as_raw_fd(),
            interest.epoll_mask(),
            token.0 as u64,
        )
    }

    /// Remove a source. Dropping the source's fd also removes it, so
    /// this is only needed when the fd outlives its registration.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_del(self.epfd.as_raw_fd(), source.as_raw_fd())
    }

    /// Block until at least one source is ready or `timeout` elapses
    /// (`None` blocks indefinitely). Results land in `events`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a 100µs timeout doesn't busy-spin at 0ms.
                let mut ms = d.as_millis();
                if Duration::from_millis(ms.min(u64::MAX as u128) as u64) < d {
                    ms += 1;
                }
                ms.min(i32::MAX as u128) as i32
            }
        };
        events.len = sys::epoll_wait(self.epfd.as_raw_fd(), &mut events.raw, timeout_ms)?;
        Ok(())
    }
}

struct WakerInner {
    read: OwnedFd,
    write: OwnedFd,
    pending: AtomicBool,
}

/// Cross-thread wakeup for a [`Poller`] via a self-pipe.
///
/// Cloning is cheap (`Arc`); `wake()` is safe from any thread. The
/// `pending` flag collapses bursts of wakes into a single pipe write so
/// producers never block on a full pipe.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

impl Waker {
    /// Create a waker whose read end is registered with `poller` under
    /// `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        let (read, write) = sys::pipe()?;
        poller.register(&read, token, Interest::READABLE)?;
        Ok(Waker {
            inner: Arc::new(WakerInner {
                read,
                write,
                pending: AtomicBool::new(false),
            }),
        })
    }

    /// Wake the poller. Idempotent until the reactor calls [`drain`].
    ///
    /// [`drain`]: Waker::drain
    pub fn wake(&self) {
        if self.inner.pending.swap(true, Ordering::AcqRel) {
            return; // a wake is already queued in the pipe
        }
        // A nonblocking 1-byte write; if the pipe is somehow full a
        // wake is already pending, which is all we need.
        let fd = self.inner.write.as_raw_fd();
        let buf = [1u8];
        unsafe {
            let _ = write_fd(fd, &buf);
        }
    }

    /// Drain queued wake bytes. Call from the reactor thread when the
    /// waker token surfaces, *before* processing the work the wakes
    /// announced (so a racing `wake()` is never lost).
    pub fn drain(&self) {
        self.inner.pending.store(false, Ordering::Release);
        let fd = self.inner.read.as_raw_fd();
        let mut buf = [0u8; 64];
        unsafe {
            // Read until empty; the pipe is nonblocking.
            while let Ok(n) = read_fd(fd, &mut buf) {
                if n < buf.len() {
                    break;
                }
            }
        }
    }
}

// Tiny read/write helpers on raw fds via std, avoiding extra dup()s.
// Safety: the fd is owned by the WakerInner that calls these, so it is
// valid for the duration of the call; ManuallyDrop prevents the
// temporary File from closing it.
unsafe fn write_fd(fd: std::os::fd::RawFd, buf: &[u8]) -> io::Result<usize> {
    use std::io::Write as _;
    use std::os::fd::FromRawFd as _;
    let mut f = std::mem::ManuallyDrop::new(std::fs::File::from_raw_fd(fd));
    f.write(buf)
}

unsafe fn read_fd(fd: std::os::fd::RawFd, buf: &mut [u8]) -> io::Result<usize> {
    use std::io::Read as _;
    use std::os::fd::FromRawFd as _;
    let mut f = std::mem::ManuallyDrop::new(std::fs::File::from_raw_fd(fd));
    f.read(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_across_threads() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, Token(0)).unwrap();
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake();
            w2.wake(); // coalesced
        });
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), Token(0));
        assert!(ev.is_readable());
        waker.drain();
        // After drain, no residual readiness.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        t.join().unwrap();
    }

    #[test]
    fn tcp_readiness_and_interest_narrowing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(&listener, Token(1), Interest::READABLE)
            .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == Token(1)));
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // A fresh stream with WRITABLE interest is immediately ready.
        poller
            .register(&server, Token(2), Interest::WRITABLE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_writable()));

        // Narrow to NONE: no more writable storms even though the
        // socket stays writable (level-triggered discipline).
        poller
            .reregister(&server, Token(2), Interest::NONE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token() == Token(2)));

        // Re-widen to READABLE and feed a byte.
        poller
            .reregister(&server, Token(2), Interest::READABLE)
            .unwrap();
        client.write_all(&[9]).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_readable()));
    }
}
