//! Property tests for the incremental decoders: every valid byte
//! stream, however it is split across reads, decodes identically to
//! the one-shot path; malformed streams yield typed errors, never
//! panics. (ISSUE 7, satellite: incremental decoding coverage.)

use dynvote_net::http::{write_response, Method, Request, RequestParser, ResponseParser};
use dynvote_net::{FrameDecoder, FrameError, HttpError};
use proptest::collection::vec;
use proptest::prelude::*;

const MAX_FRAME: usize = 4096;

fn encode_stream(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

/// Split `stream` into chunks whose sizes cycle through `sizes`.
fn dribble<'a>(stream: &'a [u8], sizes: &'a [usize]) -> impl Iterator<Item = &'a [u8]> + 'a {
    let mut pos = 0;
    let mut i = 0;
    std::iter::from_fn(move || {
        if pos >= stream.len() {
            return None;
        }
        let take = sizes[i % sizes.len()].max(1).min(stream.len() - pos);
        i += 1;
        let chunk = &stream[pos..pos + take];
        pos += take;
        Some(chunk)
    })
}

fn decode_all(decoder: &mut FrameDecoder) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut out = Vec::new();
    while let Some(frame) = decoder.next_frame()? {
        out.push(frame.to_vec());
    }
    Ok(out)
}

fn parse_all_requests(parser: &mut RequestParser) -> Result<Vec<Request>, HttpError> {
    let mut out = Vec::new();
    while let Some(req) = parser.next_request()? {
        out.push(req);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Any pipelined frame stream decodes identically under arbitrary
    // byte-dribble splits and in one shot.
    #[test]
    fn frames_stream_equals_one_shot(
        payloads in vec(vec(0u8..=255, 0..200), 0..12),
        sizes in vec(1usize..9, 1..12),
    ) {
        let stream = encode_stream(&payloads);

        let mut one_shot = FrameDecoder::new(MAX_FRAME);
        one_shot.extend(&stream);
        let direct = decode_all(&mut one_shot).unwrap();

        let mut incremental = FrameDecoder::new(MAX_FRAME);
        let mut dribbled = Vec::new();
        for chunk in dribble(&stream, &sizes) {
            incremental.extend(chunk);
            dribbled.extend(decode_all(&mut incremental).unwrap());
        }

        prop_assert_eq!(&direct, &payloads);
        prop_assert_eq!(&dribbled, &payloads);
        incremental.check_eof().unwrap();
        one_shot.check_eof().unwrap();
    }

    // Truncating a valid stream anywhere never panics: either every
    // complete frame before the cut decodes, and EOF reports the
    // partial remainder as a typed error.
    #[test]
    fn truncated_frames_yield_typed_error(
        payloads in vec(vec(0u8..=255, 0..64), 1..6),
        cut_back in 1usize..32,
    ) {
        let stream = encode_stream(&payloads);
        let cut = stream.len().saturating_sub(cut_back).max(1);
        let mut d = FrameDecoder::new(MAX_FRAME);
        d.extend(&stream[..cut]);
        let decoded = decode_all(&mut d).unwrap();
        prop_assert!(decoded.len() <= payloads.len());
        for (got, want) in decoded.iter().zip(&payloads) {
            prop_assert_eq!(got, want);
        }
        if d.pending() == 0 {
            // The cut landed exactly on a frame boundary: clean EOF.
            d.check_eof().unwrap();
        } else {
            prop_assert!(decoded.len() < payloads.len());
            prop_assert!(matches!(
                d.check_eof(),
                Err(FrameError::TruncatedAtEof { .. })
            ));
        }
    }

    // Oversized declared lengths surface as a typed error regardless
    // of how the prefix arrives.
    #[test]
    fn oversized_frame_is_typed_error(
        extra in 1usize..4096,
        sizes in vec(1usize..5, 1..6),
    ) {
        let declared = MAX_FRAME + extra;
        let mut stream = (declared as u32).to_le_bytes().to_vec();
        stream.extend_from_slice(&[0xAB; 8]);
        let mut d = FrameDecoder::new(MAX_FRAME);
        let mut saw_error = false;
        for chunk in dribble(&stream, &sizes) {
            d.extend(chunk);
            match decode_all(&mut d) {
                Ok(frames) => prop_assert!(frames.is_empty()),
                Err(FrameError::Oversized { declared: got, max }) => {
                    prop_assert_eq!(got, declared);
                    prop_assert_eq!(max, MAX_FRAME);
                    saw_error = true;
                    break;
                }
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
        prop_assert!(saw_error);
    }

    // Arbitrary garbage never panics the frame decoder.
    #[test]
    fn frame_decoder_never_panics(
        bytes in vec(0u8..=255, 0..600),
        sizes in vec(1usize..17, 1..8),
    ) {
        let mut d = FrameDecoder::new(64);
        for chunk in dribble(&bytes, &sizes) {
            d.extend(chunk);
            while let Ok(Some(_)) = d.next_frame() {}
        }
        let _ = d.check_eof();
    }

    // Valid pipelined HTTP requests parse identically under arbitrary
    // splits and one-shot.
    #[test]
    fn http_requests_stream_equals_one_shot(
        specs in vec((0usize..3, vec(97u8..=122, 1..12), vec(0u8..=255, 0..96)), 1..6),
        sizes in vec(1usize..7, 1..10),
    ) {
        let mut stream = Vec::new();
        for (kind, path, body) in &specs {
            let path = String::from_utf8(path.clone()).unwrap();
            match kind {
                0 => stream.extend_from_slice(
                    format!("GET /{path} HTTP/1.1\r\nhost: x\r\n\r\n").as_bytes(),
                ),
                1 => {
                    stream.extend_from_slice(
                        format!(
                            "POST /{path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                            body.len()
                        )
                        .as_bytes(),
                    );
                    stream.extend_from_slice(body);
                }
                _ => stream.extend_from_slice(
                    format!("GET /{path} HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").as_bytes(),
                ),
            }
        }

        let mut one_shot = RequestParser::new();
        one_shot.extend(&stream);
        let direct = parse_all_requests(&mut one_shot).unwrap();

        let mut incremental = RequestParser::new();
        let mut dribbled = Vec::new();
        for chunk in dribble(&stream, &sizes) {
            incremental.extend(chunk);
            dribbled.extend(parse_all_requests(&mut incremental).unwrap());
        }

        prop_assert_eq!(direct.len(), specs.len());
        prop_assert_eq!(&dribbled, &direct);
        for (req, (kind, path, body)) in direct.iter().zip(&specs) {
            let path = String::from_utf8(path.clone()).unwrap();
            prop_assert_eq!(&req.target, &format!("/{path}"));
            match kind {
                0 => {
                    prop_assert_eq!(req.method, Method::Get);
                    prop_assert!(req.keep_alive);
                    prop_assert!(req.body.is_empty());
                }
                1 => {
                    prop_assert_eq!(req.method, Method::Post);
                    prop_assert_eq!(&req.body, body);
                }
                _ => {
                    prop_assert_eq!(req.method, Method::Get);
                    prop_assert!(req.keep_alive);
                }
            }
        }
    }

    // Arbitrary garbage never panics the request parser, and a parse
    // error from a prefix stays an error (no resurrection).
    #[test]
    fn http_parser_never_panics(
        bytes in vec(0u8..=255, 0..700),
        sizes in vec(1usize..13, 1..8),
    ) {
        let mut p = RequestParser::new();
        for chunk in dribble(&bytes, &sizes) {
            p.extend(chunk);
            loop {
                match p.next_request() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        // typed errors map to real status codes
                        prop_assert!((400..=599).contains(&e.status()));
                        break;
                    }
                }
            }
        }
    }

    // Responses round-trip through the writer + client parser under
    // arbitrary splits.
    #[test]
    fn http_response_roundtrip(
        statuses in vec((1usize..5, vec(0u8..=255, 0..128)), 1..5),
        sizes in vec(1usize..6, 1..8),
    ) {
        let table: [(u16, &str); 4] =
            [(200, "OK"), (429, "Too Many Requests"), (400, "Bad Request"), (503, "Unavailable")];
        let mut stream = Vec::new();
        for (pick, body) in &statuses {
            let (code, reason) = table[pick - 1];
            write_response(&mut stream, code, reason, "text/plain", &[], body, true);
        }
        let mut p = ResponseParser::new();
        let mut got = Vec::new();
        for chunk in dribble(&stream, &sizes) {
            p.extend(chunk);
            while let Some(r) = p.next_response().unwrap() {
                got.push(r);
            }
        }
        prop_assert_eq!(got.len(), statuses.len());
        for (resp, (pick, body)) in got.iter().zip(&statuses) {
            prop_assert_eq!(resp.status, table[pick - 1].0);
            prop_assert_eq!(&resp.body, body);
        }
    }
}
