//! # dynvote — dynamic voting replica control
//!
//! A production-grade Rust implementation of the *dynamic voting* family
//! of pessimistic replica control algorithms (Jajodia & Mutchler:
//! "Dynamic Voting", SIGMOD 1987, and "A Hybrid Replica Control
//! Algorithm Combining Static and Dynamic Voting"), complete with the
//! analytic and simulation machinery that reproduces every table and
//! figure of the papers' evaluations.
//!
//! This facade re-exports the underlying crates:
//!
//! * [`core`](dynvote_core) — the algorithms themselves: metadata,
//!   decision rules, quorums, and a model-level executable system;
//! * [`protocol`] — the sans-IO protocol kernel:
//!   [`SiteActor`](dynvote_protocol::SiteActor) turning messages into
//!   actions, with a structured
//!   [`ProtocolEvent`](dynvote_protocol::ProtocolEvent) stream;
//! * [`sim`] — a message-level discrete-event distributed
//!   database running the full three-phase protocol under fault
//!   injection;
//! * [`cluster`] — a live multi-threaded cluster: the same protocol
//!   kernel on wall clocks and real transports (in-process channels or
//!   loopback TCP), plus a closed-loop load generator;
//! * [`markov`] — exact availability analysis via
//!   hand-derived and machine-derived Markov chains;
//! * [`mc`] — Monte-Carlo simulation of the stochastic
//!   availability model.
//!
//! ## Which entry point do I want?
//!
//! | Goal | Start at |
//! |---|---|
//! | Decide/commit logic for my own replication layer | [`ReplicaControl`], [`algorithms`] |
//! | Drive the full commit protocol from my own event loop | [`protocol::SiteActor`](dynvote_protocol::SiteActor) |
//! | "What would algorithm X do in partition Y?" | [`ReplicaSystem`] |
//! | Exact availability numbers | [`markov::availability`](dynvote_markov::sweep::availability) |
//! | Protocol behaviour under crashes and partitions | [`sim::Simulation`] |
//! | Run a real multi-threaded cluster and load it | [`cluster::Cluster`], [`cluster::LoadGen`] |
//! | Reproduce the paper | the `dynvote` CLI (`crates/cli`) and `EXPERIMENTS.md` |
//!
//! ```
//! use dynvote::{AlgorithmKind, ReplicaSystem, SiteSet, markov};
//!
//! // Serve updates through a partition...
//! let mut system = ReplicaSystem::new(5, AlgorithmKind::Hybrid.instantiate(5));
//! assert!(system.attempt_update(SiteSet::parse("ABC").unwrap()).committed());
//! assert!(!system.attempt_update(SiteSet::parse("DE").unwrap()).committed());
//!
//! // ...and know exactly how often that will work in the long run.
//! let availability = markov::availability(AlgorithmKind::Hybrid, 5, 2.0);
//! assert!((availability - 0.6425).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

pub use dynvote_core::*;

/// Live multi-threaded cluster runtime (re-export of `dynvote-cluster`).
pub use dynvote_cluster as cluster;
/// Analytic availability (re-export of `dynvote-markov`).
pub use dynvote_markov as markov;
/// Monte-Carlo model simulation (re-export of `dynvote-mc`).
pub use dynvote_mc as mc;
/// Sans-IO protocol kernel and event layer (re-export of
/// `dynvote-protocol`).
pub use dynvote_protocol as protocol;
/// Message-level protocol simulation (re-export of `dynvote-sim`).
pub use dynvote_sim as sim;
