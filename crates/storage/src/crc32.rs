//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Hand-rolled because the container builds offline: no `crc32fast`.
//! The table is computed at compile time; the per-byte loop is the
//! classic Sarwate algorithm — ~1 GB/s, far faster than the disk the
//! WAL syncs to, so a slice-by-8 variant would buy nothing here.

/// Reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 checksum of `data` (IEEE, as produced by zlib's `crc32`).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        let a = crc32(b"dynamic voting");
        let b = crc32(b"dynamic voting\0");
        let c = crc32(b"dynamic votinh");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
