//! The per-site durable store: segment files, snapshots, recovery.
//!
//! A site's data directory holds epoch-numbered pairs:
//!
//! ```text
//! snap-0000000000000007   state as of the epoch-7 rotation
//! wal-0000000000000007    records appended since that snapshot
//! ```
//!
//! A **rotation** (checkpoint) moves from epoch `E` to `E+1`: write
//! `snap-(E+1)` (tmp file → fsync → rename → fsync dir), open a fresh
//! `wal-(E+1)`, then delete every file of epoch ≤ `E` — compaction is
//! just that deletion, since the new snapshot subsumes everything the
//! old segments said.
//!
//! **Recovery** inverts this: load the newest snapshot that passes its
//! CRC (falling back to older ones if the newest is corrupt), replay
//! every WAL segment of an epoch ≥ the snapshot's in ascending order,
//! and stop at the first torn record (see [`crate::wal`]). Opening a
//! store always ends with a rotation, so each boot starts from a clean
//! `snapshot + empty WAL` pair and torn tails are physically discarded,
//! not just skipped.

use crate::crc32::crc32;
use crate::wal::{
    decode_state, encode_op_into, encode_state_into, frame_header, RecordScanner, TornReason,
    MAX_RECORD, SNAP_MAGIC, WAL_MAGIC,
};
use dynvote_protocol::persist::{apply_op, PersistOp};
use dynvote_protocol::{DurableState, Persistence};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// When (and whether) sealed records reach the platter.
///
/// Ops always buffer in memory until the force-write barrier
/// ([`Persistence::sync`]) seals them as one record — that is what
/// makes a protocol step atomic on disk. The policy only decides when
/// the sealed record is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` at every barrier — the classic force-write
    /// discipline; nothing acknowledged is ever lost.
    Always,
    /// Group commit: fsync at a barrier only when at least `ms`
    /// milliseconds have passed since the previous fsync (`0` = every
    /// barrier, equivalent to [`FsyncPolicy::Always`]). A kill can lose
    /// the tail since the last sync; recovery still yields a consistent
    /// (older) state.
    Interval(u64),
    /// Write-through to the OS at each barrier but never fsync; the
    /// kernel flushes on its own schedule. Fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI-style spec: `always`, `never`, `batch` (= every
    /// barrier), or `interval:<ms>`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "batch" => Ok(FsyncPolicy::Interval(0)),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(FsyncPolicy::Interval)
                    .map_err(|_| format!("bad fsync interval {ms:?}")),
                None => Err(format!(
                    "unknown fsync policy {other:?} (expected always | batch | interval:<ms> | never)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(0) => write!(f, "batch"),
            FsyncPolicy::Interval(ms) => write!(f, "interval:{ms}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Fsync discipline for WAL appends.
    pub fsync: FsyncPolicy,
    /// Rotate (snapshot + compact) once the live segment exceeds this
    /// many bytes.
    pub rotate_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync: FsyncPolicy::Always,
            rotate_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A storage failure, with the path it happened on.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O operation failed.
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { path, source } => {
                write!(f, "storage I/O error at {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
        }
    }
}

pub(crate) fn io_err<T>(path: &Path, r: std::io::Result<T>) -> Result<T, StorageError> {
    r.map_err(|source| StorageError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Where a replay stopped short: the torn tail recovery cut off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Epoch of the segment holding the bad record.
    pub epoch: u64,
    /// Byte offset (within the file) where the valid prefix ends.
    pub offset: u64,
    /// What was wrong with the first invalid record.
    pub reason: TornReason,
}

/// What recovery found and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Epoch of the snapshot recovery started from (`None` = fresh
    /// directory, started from the initial state).
    pub snapshot_epoch: Option<u64>,
    /// Snapshots that failed validation and were skipped.
    pub corrupt_snapshots: u32,
    /// WAL segments whose records were replayed.
    pub segments_replayed: u32,
    /// Valid records replayed across all segments (one record = the
    /// batch of ops sealed at one force-write barrier).
    pub records_replayed: u64,
    /// Set when replay stopped at a torn/corrupt record.
    pub truncated: Option<TornTail>,
}

pub(crate) fn snap_name(epoch: u64) -> String {
    format!("snap-{epoch:016}")
}

pub(crate) fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:016}")
}

pub(crate) fn parse_epoch(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.parse().ok()
}

pub(crate) fn fsync_dir(dir: &Path) -> Result<(), StorageError> {
    // Directory fsync makes renames/creates/removals durable; some
    // filesystems refuse to sync a directory handle — treat that as
    // best-effort, matching what production WALs do.
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

/// The durable store for one site: an open WAL segment plus the
/// snapshot lifecycle around it. Implements [`Persistence`], so it
/// plugs directly into
/// [`SiteActor::set_persistence`](dynvote_protocol::SiteActor::set_persistence).
///
/// # Panics
///
/// The [`Persistence`] hooks panic on I/O failure: a site that cannot
/// force-write its prepare/commit records cannot keep its protocol
/// promises, and limping on would silently void the recovery
/// guarantees the rest of the system is built on.
pub struct SiteStore {
    dir: PathBuf,
    config: StoreConfig,
    epoch: u64,
    wal: File,
    wal_path: PathBuf,
    /// Bytes of the live segment (header + records), including the
    /// still-buffered batch.
    wal_len: u64,
    /// Encoded op bodies accumulated since the last barrier; sealed as
    /// one framed record when the barrier fires, so the whole batch
    /// replays atomically or not at all.
    pending: Vec<u8>,
    /// True when bytes were written to the file but not yet fsynced.
    unsynced: bool,
    last_fsync: Instant,
}

impl std::fmt::Debug for SiteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiteStore")
            .field("dir", &self.dir)
            .field("epoch", &self.epoch)
            .field("wal_len", &self.wal_len)
            .finish_non_exhaustive()
    }
}

impl SiteStore {
    /// Open (and recover) the store in `dir`, creating it if needed.
    ///
    /// Returns the store, the recovered durable state (`initial` when
    /// the directory held nothing), and a [`RecoveryReport`]. The open
    /// always ends with a rotation: the recovered state is snapshotted
    /// at a fresh epoch and every older file — including any torn
    /// segment — is deleted.
    pub fn open(
        dir: &Path,
        config: StoreConfig,
        initial: DurableState,
    ) -> Result<(Self, DurableState, RecoveryReport), StorageError> {
        io_err(dir, fs::create_dir_all(dir))?;
        let (state, report, max_epoch) = recover_dir(dir, initial)?;
        let epoch = max_epoch + 1;

        // Boot rotation: persist the recovered state at the new epoch
        // before touching anything older.
        write_snapshot(dir, epoch, &state)?;
        let (wal, wal_path) = create_segment(dir, epoch, WAL_MAGIC)?;
        compact(dir, epoch)?;

        let store = SiteStore {
            dir: dir.to_path_buf(),
            config,
            epoch,
            wal,
            wal_path,
            wal_len: 16,
            pending: Vec::with_capacity(4096),
            unsynced: false,
            last_fsync: Instant::now(),
        };
        Ok((store, state, report))
    }

    /// Read-only recovery: reconstruct the state a crashed site would
    /// boot with, without creating, truncating, rotating, or deleting
    /// anything. This is what `dynvote recover` prints.
    pub fn inspect(
        dir: &Path,
        initial: DurableState,
    ) -> Result<(DurableState, RecoveryReport), StorageError> {
        let (state, report, _) = recover_dir(dir, initial)?;
        Ok((state, report))
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live segment's epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes in the live segment (including not-yet-flushed ones).
    #[must_use]
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Buffer one op into the current batch. Nothing reaches the file
    /// until [`SiteStore::barrier`] seals the batch — ops within a
    /// batch become durable together or not at all.
    pub fn append(&mut self, op: &PersistOp) -> Result<(), StorageError> {
        let before = self.pending.len();
        encode_op_into(&mut self.pending, op);
        self.wal_len += (self.pending.len() - before) as u64;
        Ok(())
    }

    /// Frame the pending batch as one record and write it through to
    /// the OS (no fsync).
    fn seal_pending(&mut self) -> Result<(), StorageError> {
        if !self.pending.is_empty() {
            let header = frame_header(&self.pending);
            io_err(&self.wal_path, self.wal.write_all(&header))?;
            io_err(&self.wal_path, self.wal.write_all(&self.pending))?;
            self.pending.clear();
            self.wal_len += 8;
            self.unsynced = true;
        }
        Ok(())
    }

    /// The force-write barrier: seal the pending batch as one record,
    /// then fsync per policy.
    pub fn barrier(&mut self) -> Result<(), StorageError> {
        self.seal_pending()?;
        let due = match self.config.fsync {
            FsyncPolicy::Always => self.unsynced,
            FsyncPolicy::Interval(ms) => {
                self.unsynced && self.last_fsync.elapsed().as_millis() >= u128::from(ms)
            }
            FsyncPolicy::Never => false,
        };
        if due {
            io_err(&self.wal_path, self.wal.sync_data())?;
            self.unsynced = false;
            self.last_fsync = Instant::now();
        }
        Ok(())
    }

    /// Snapshot `state` at the next epoch, open a fresh segment, and
    /// delete everything the snapshot covers.
    ///
    /// `state` must reflect every op appended so far (it is the
    /// caller's live durable state); the pending batch is discarded as
    /// subsumed by the snapshot.
    pub fn rotate(&mut self, state: &DurableState) -> Result<(), StorageError> {
        self.pending.clear();
        let epoch = self.epoch + 1;
        write_snapshot(&self.dir, epoch, state)?;
        let (wal, wal_path) = create_segment(&self.dir, epoch, WAL_MAGIC)?;
        self.epoch = epoch;
        self.wal = wal;
        self.wal_path = wal_path;
        self.wal_len = 16;
        self.unsynced = false;
        compact(&self.dir, epoch)?;
        Ok(())
    }
}

impl Persistence for SiteStore {
    fn seq_advanced(&mut self, next_seq: u64) {
        self.append(&PersistOp::Seq(next_seq)).expect("WAL append");
    }

    fn prepared(&mut self, txn: dynvote_protocol::TxnId, coordinator: dynvote_core::SiteId) {
        self.append(&PersistOp::Prepared(txn, coordinator))
            .expect("WAL append");
    }

    fn prepare_cleared(&mut self, txn: dynvote_protocol::TxnId) {
        self.append(&PersistOp::PrepareCleared(txn))
            .expect("WAL append");
    }

    fn entries_appended(&mut self, entries: &[dynvote_protocol::LogEntry]) {
        self.append(&PersistOp::Entries(entries.to_vec()))
            .expect("WAL append");
    }

    fn meta_updated(&mut self, meta: dynvote_core::CopyMeta) {
        self.append(&PersistOp::Meta(meta)).expect("WAL append");
    }

    fn committed(
        &mut self,
        txn: dynvote_protocol::TxnId,
        meta: dynvote_core::CopyMeta,
        participants: dynvote_core::SiteSet,
    ) {
        self.append(&PersistOp::Committed(txn, meta, participants))
            .expect("WAL append");
    }

    fn sync(&mut self) {
        self.barrier().expect("WAL barrier");
    }

    fn wants_checkpoint(&self) -> bool {
        self.wal_len >= self.config.rotate_bytes
    }

    fn checkpoint(&mut self, state: &DurableState) {
        self.rotate(state).expect("WAL rotation");
    }

    fn wal_epoch(&self) -> Option<u64> {
        Some(self.epoch())
    }
}

// ----- recovery internals ------------------------------------------------

/// List the snapshot and WAL epochs present in `dir`, sorted ascending.
/// A missing directory lists as empty.
pub(crate) fn list_epochs(dir: &Path) -> Result<(Vec<u64>, Vec<u64>), StorageError> {
    let mut snaps: Vec<u64> = Vec::new();
    let mut wals: Vec<u64> = Vec::new();
    match fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        other => {
            for entry in io_err(dir, other)? {
                let entry = io_err(dir, entry)?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(epoch) = parse_epoch(name, "snap-") {
                    snaps.push(epoch);
                } else if let Some(epoch) = parse_epoch(name, "wal-") {
                    wals.push(epoch);
                }
            }
        }
    }
    snaps.sort_unstable();
    wals.sort_unstable();
    Ok((snaps, wals))
}

/// Create `wal-<epoch>` with its `magic + epoch` header, fsynced.
pub(crate) fn create_segment(
    dir: &Path,
    epoch: u64,
    magic: &[u8; 8],
) -> Result<(File, PathBuf), StorageError> {
    let wal_path = dir.join(wal_name(epoch));
    let mut wal = io_err(
        &wal_path,
        OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&wal_path),
    )?;
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(magic);
    header.extend_from_slice(&epoch.to_le_bytes());
    io_err(&wal_path, wal.write_all(&header))?;
    io_err(&wal_path, wal.sync_data())?;
    fsync_dir(dir)?;
    Ok((wal, wal_path))
}

/// Scan `dir`, pick the newest valid snapshot, replay WAL tails.
/// Returns the state, the report, and the highest epoch seen on disk
/// (0 for an empty directory).
fn recover_dir(
    dir: &Path,
    initial: DurableState,
) -> Result<(DurableState, RecoveryReport, u64), StorageError> {
    let (snaps, wals) = list_epochs(dir)?;
    let max_epoch = snaps.iter().chain(wals.iter()).copied().max().unwrap_or(0);

    let mut report = RecoveryReport::default();
    let mut state = initial;
    let mut base_epoch = 0u64;
    for &epoch in snaps.iter().rev() {
        match read_snapshot(&dir.join(snap_name(epoch)), epoch) {
            Some(snapped) => {
                state = snapped;
                base_epoch = epoch;
                report.snapshot_epoch = Some(epoch);
                break;
            }
            None => report.corrupt_snapshots += 1,
        }
    }

    'replay: for &epoch in wals.iter().filter(|&&e| e >= base_epoch) {
        let path = dir.join(wal_name(epoch));
        let bytes = io_err(&path, fs::read(&path))?;
        let mut expected_header = Vec::with_capacity(16);
        expected_header.extend_from_slice(WAL_MAGIC);
        expected_header.extend_from_slice(&epoch.to_le_bytes());
        if bytes.len() < 16 || bytes[..16] != expected_header[..] {
            // The segment was killed mid-creation: its header never
            // made it down. Nothing in it is trustworthy.
            report.truncated = Some(TornTail {
                epoch,
                offset: 0,
                reason: TornReason::ShortHeader,
            });
            break 'replay;
        }
        report.segments_replayed += 1;
        let mut scanner = RecordScanner::new(&bytes[16..]);
        loop {
            match scanner.next() {
                Some(Ok(ops)) => {
                    // One record = one protocol step: apply the whole
                    // batch. The scanner already rejected any record it
                    // could not decode in full.
                    for op in &ops {
                        apply_op(&mut state, op);
                    }
                    report.records_replayed += 1;
                }
                Some(Err(reason)) => {
                    report.truncated = Some(TornTail {
                        epoch,
                        offset: 16 + scanner.valid_end() as u64,
                        reason,
                    });
                    // Torn-tail rule: nothing after the first invalid
                    // record is trusted, in this segment or any later
                    // one.
                    break 'replay;
                }
                None => break,
            }
        }
    }
    Ok((state, report, max_epoch))
}

/// Validate + read one snapshot file's payload (magic, epoch stamp,
/// length, CRC); `None` if anything is off.
pub(crate) fn read_snapshot_bytes(
    path: &Path,
    expected_epoch: u64,
    magic: &[u8; 8],
) -> Option<Vec<u8>> {
    let mut file = File::open(path).ok()?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).ok()?;
    if bytes.len() < 24 || &bytes[..8] != magic {
        return None;
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if epoch != expected_epoch {
        return None;
    }
    let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    if len > MAX_RECORD || bytes.len() != 24 + len {
        return None;
    }
    let payload = bytes.split_off(24);
    if crc32(&payload) != crc {
        return None;
    }
    Some(payload)
}

/// Validate + decode one snapshot file; `None` if anything is off.
fn read_snapshot(path: &Path, expected_epoch: u64) -> Option<DurableState> {
    let payload = read_snapshot_bytes(path, expected_epoch, SNAP_MAGIC)?;
    decode_state(&payload).ok()
}

/// Atomically write `snap-<epoch>` holding `payload`: tmp file, fsync,
/// rename, fsync dir.
pub(crate) fn write_snapshot_bytes(
    dir: &Path,
    epoch: u64,
    magic: &[u8; 8],
    payload: &[u8],
) -> Result<(), StorageError> {
    let mut bytes = Vec::with_capacity(24 + payload.len());
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);

    let tmp = dir.join(format!("{}.tmp", snap_name(epoch)));
    let fin = dir.join(snap_name(epoch));
    {
        let mut file = io_err(&tmp, File::create(&tmp))?;
        io_err(&tmp, file.write_all(&bytes))?;
        io_err(&tmp, file.sync_all())?;
    }
    io_err(&fin, fs::rename(&tmp, &fin))?;
    fsync_dir(dir)?;
    Ok(())
}

/// Atomically write a single-object `snap-<epoch>`.
fn write_snapshot(dir: &Path, epoch: u64, state: &DurableState) -> Result<(), StorageError> {
    let mut payload = Vec::with_capacity(1024);
    encode_state_into(&mut payload, state);
    write_snapshot_bytes(dir, epoch, SNAP_MAGIC, &payload)
}

/// Delete every snapshot/segment/tmp file of an epoch below `keep` —
/// the new snapshot subsumes them.
pub(crate) fn compact(dir: &Path, keep: u64) -> Result<(), StorageError> {
    for entry in io_err(dir, fs::read_dir(dir))? {
        let entry = io_err(dir, entry)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = parse_epoch(name, "snap-").is_some_and(|e| e < keep)
            || parse_epoch(name, "wal-").is_some_and(|e| e < keep)
            || name.ends_with(".tmp");
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
    fsync_dir(dir)?;
    Ok(())
}
