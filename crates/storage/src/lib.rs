//! # dynvote-storage — durable on-disk state for dynamic-voting sites
//!
//! The paper's Section V restart protocol assumes each site can replay
//! its durable `(VN, SC, DS)` triple, commit log, commit records, and
//! prepare record after a crash. This crate makes that assumption a
//! mechanism: a hand-rolled, CRC-checksummed write-ahead log plus
//! periodic snapshots, rotation/compaction, and recovery that obeys the
//! torn-tail rule.
//!
//! * [`SiteStore`] — one site's store; implements the kernel's
//!   [`Persistence`](dynvote_protocol::Persistence) hook, so installing
//!   it via `SiteActor::set_persistence` gives the actor real
//!   force-writes: the prepare record is on disk before the vote is
//!   sent, the commit record before `COMMIT` fans out (under
//!   [`FsyncPolicy::Always`]).
//! * [`NodeStore`] — the multi-object node store: one WAL shared by
//!   every hosted object, group-commit barriers that seal many shards'
//!   steps as one record, node-wide snapshots. [`ShardHandle`] is the
//!   per-shard [`Persistence`](dynvote_protocol::Persistence) adapter.
//! * [`wal`] — record/snapshot byte formats, built on the protocol
//!   crate's codec primitives.
//! * [`crc32`] — table-driven CRC-32 (IEEE), no external crates.
//!
//! Std-only by design: the container builds offline, and a WAL is an
//! excellent fit for plain `std::fs`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod crc32;
mod multi;
mod store;
pub mod wal;

pub use multi::{NodeStore, ShardHandle, StagedHandle};
pub use store::{FsyncPolicy, RecoveryReport, SiteStore, StorageError, StoreConfig, TornTail};
pub use wal::TornReason;
