//! The multi-object node store: one WAL, many objects, group commit.
//!
//! A sharded node hosts many independent per-object state machines
//! (`dynvote_protocol::ShardedSite`), but giving each shard its own WAL
//! would spend one fsync per shard per step — exactly the cost a
//! sharded data plane exists to amortize. [`NodeStore`] instead keeps
//! **one** segment file per node: every shard's [`Persistence`] hooks
//! buffer keyed ops (`[object][op]`) into a shared pending batch, and a
//! single force-write barrier seals them all as **one** record. That is
//! group commit: a batch that interleaves ten objects' prepare and
//! commit records reaches the platter with one `fdatasync`.
//!
//! The discipline that makes single-object recovery sound carries over
//! unchanged, because the barrier still sits between "hooks fired" and
//! "actions handed to the transport": nothing any shard announced can
//! be lost, and a torn tail only ever loses whole multi-object batches
//! whose effects were never visible outside the process.
//!
//! Snapshots are node-wide too: a rotation writes every object's state
//! as one counted payload (`[count]([state])*`), so per-object replay
//! starts from a mutually consistent cut.
//!
//! Files reuse the epoch-pair lifecycle of [`SiteStore`](crate::SiteStore)
//! (`snap-<E>`/`wal-<E>`, boot rotation, torn-tail truncation,
//! compaction) under the multi-object magics `DVWALM01`/`DVSNAPM1`.

use crate::store::{
    compact, create_segment, io_err, list_epochs, read_snapshot_bytes, snap_name, wal_name,
    write_snapshot_bytes, FsyncPolicy, RecoveryReport, StorageError, StoreConfig, TornTail,
};
use crate::wal::{
    decode_states, encode_keyed_op_into, encode_states_into, frame_header, RecordScanner,
    TornReason, SNAP_MAGIC_MULTI, WAL_MAGIC_MULTI,
};
use dynvote_protocol::persist::{apply_op, PersistOp};
use dynvote_protocol::{DurableState, ObjectId, Persistence};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The durable store for one sharded node: a single open WAL segment
/// shared by every hosted object, plus node-wide snapshots.
///
/// # Panics
///
/// Like [`SiteStore`](crate::SiteStore), the [`Persistence`]-facing
/// paths panic on I/O failure: a node that cannot force-write cannot
/// keep the protocol's promises.
pub struct NodeStore {
    dir: PathBuf,
    config: StoreConfig,
    epoch: u64,
    wal: File,
    wal_path: PathBuf,
    /// Bytes of the live segment (header + records), including the
    /// still-buffered batch.
    wal_len: u64,
    /// Keyed op encodings accumulated since the last barrier — the
    /// group-commit batch. Sealed as one framed record at the barrier.
    pending: Vec<u8>,
    unsynced: bool,
    last_fsync: Instant,
}

impl std::fmt::Debug for NodeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeStore")
            .field("dir", &self.dir)
            .field("epoch", &self.epoch)
            .field("wal_len", &self.wal_len)
            .finish_non_exhaustive()
    }
}

impl NodeStore {
    /// Open (and recover) the node store in `dir`, creating it if
    /// needed. `objects` is the configured shard count and `template`
    /// the fresh state for an object with no history.
    ///
    /// Returns the store, the recovered per-object states (always at
    /// least `objects` long — longer if the directory holds more
    /// objects than configured), and a [`RecoveryReport`]. As with the
    /// single-object store, the open ends with a boot rotation so every
    /// start begins from a clean `snapshot + empty WAL` pair.
    pub fn open(
        dir: &Path,
        config: StoreConfig,
        objects: usize,
        template: DurableState,
    ) -> Result<(Self, Vec<DurableState>, RecoveryReport), StorageError> {
        assert!(objects >= 1, "a node hosts at least one object");
        io_err(dir, fs::create_dir_all(dir))?;
        let (states, report, max_epoch) = recover_multi(dir, &template, objects)?;
        let epoch = max_epoch + 1;

        let mut payload = Vec::with_capacity(1024 * states.len());
        encode_states_into(&mut payload, &states);
        write_snapshot_bytes(dir, epoch, SNAP_MAGIC_MULTI, &payload)?;
        let (wal, wal_path) = create_segment(dir, epoch, WAL_MAGIC_MULTI)?;
        compact(dir, epoch)?;

        let store = NodeStore {
            dir: dir.to_path_buf(),
            config,
            epoch,
            wal,
            wal_path,
            wal_len: 16,
            pending: Vec::with_capacity(4096),
            unsynced: false,
            last_fsync: Instant::now(),
        };
        Ok((store, states, report))
    }

    /// Read-only recovery: reconstruct the per-object states a crashed
    /// node would boot with, without creating, truncating, rotating, or
    /// deleting anything. Objects are discovered from disk (`template`
    /// seeds any object a replayed op names that the snapshot did not).
    /// This is what `dynvote recover` prints per-object stats from.
    pub fn inspect(
        dir: &Path,
        template: DurableState,
    ) -> Result<(Vec<DurableState>, RecoveryReport), StorageError> {
        let (states, report, _) = recover_multi(dir, &template, 1)?;
        Ok((states, report))
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live segment's epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes in the live segment (including not-yet-flushed ones).
    #[must_use]
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Buffer one object's op into the group-commit batch. Nothing
    /// reaches the file until [`NodeStore::barrier`] seals the batch.
    pub fn append(&mut self, object: ObjectId, op: &PersistOp) -> Result<(), StorageError> {
        let before = self.pending.len();
        encode_keyed_op_into(&mut self.pending, object, op);
        self.wal_len += (self.pending.len() - before) as u64;
        Ok(())
    }

    /// The group-commit barrier: seal the whole pending multi-object
    /// batch as **one** framed record, then fsync per policy. Every
    /// shard whose hooks fired since the previous barrier becomes
    /// durable with this single force-write.
    pub fn barrier(&mut self) -> Result<(), StorageError> {
        if !self.pending.is_empty() {
            let header = frame_header(&self.pending);
            io_err(&self.wal_path, self.wal.write_all(&header))?;
            io_err(&self.wal_path, self.wal.write_all(&self.pending))?;
            self.pending.clear();
            self.wal_len += 8;
            self.unsynced = true;
        }
        let due = match self.config.fsync {
            FsyncPolicy::Always => self.unsynced,
            FsyncPolicy::Interval(ms) => {
                self.unsynced && self.last_fsync.elapsed().as_millis() >= u128::from(ms)
            }
            FsyncPolicy::Never => false,
        };
        if due {
            io_err(&self.wal_path, self.wal.sync_data())?;
            self.unsynced = false;
            self.last_fsync = Instant::now();
        }
        Ok(())
    }

    /// Move one worker's staged keyed-op bytes into the pending
    /// group-commit batch, preserving the single-record-per-barrier
    /// discipline: however many workers staged concurrently, the next
    /// [`NodeStore::barrier`] still seals everything as **one** framed,
    /// checksummed record with one fsync.
    ///
    /// `staged` is drained (its capacity is kept for reuse). Per-object
    /// op order is preserved as long as each object's ops all land in
    /// the same stage — exactly what a shard-affine worker partition
    /// guarantees — because recovery replays keyed ops per object and
    /// never orders across objects.
    pub fn ingest(&mut self, staged: &mut Vec<u8>) {
        self.wal_len += staged.len() as u64;
        self.pending.append(staged);
    }

    /// True once the live segment has outgrown the rotation threshold.
    /// The node polls this between batches and calls
    /// [`NodeStore::rotate`] with every shard's state — rotation is
    /// node-driven because the snapshot must cover all objects at once.
    #[must_use]
    pub fn wants_rotation(&self) -> bool {
        self.wal_len >= self.config.rotate_bytes
    }

    /// Snapshot all objects' states at the next epoch, open a fresh
    /// segment, and delete everything the snapshot covers. `states`
    /// must reflect every op appended so far; the pending batch is
    /// discarded as subsumed.
    pub fn rotate(&mut self, states: &[DurableState]) -> Result<(), StorageError> {
        self.pending.clear();
        let epoch = self.epoch + 1;
        let mut payload = Vec::with_capacity(1024 * states.len());
        encode_states_into(&mut payload, states);
        write_snapshot_bytes(&self.dir, epoch, SNAP_MAGIC_MULTI, &payload)?;
        let (wal, wal_path) = create_segment(&self.dir, epoch, WAL_MAGIC_MULTI)?;
        self.epoch = epoch;
        self.wal = wal;
        self.wal_path = wal_path;
        self.wal_len = 16;
        self.unsynced = false;
        compact(&self.dir, epoch)?;
        Ok(())
    }
}

/// One shard's [`Persistence`] handle onto the shared [`NodeStore`]:
/// every hook locks the store and buffers a keyed op. Install one per
/// shard via `ShardedSite::set_persistence`; the node then amortizes
/// durability by calling [`NodeStore::barrier`] once per drained batch
/// (each handle's own `sync` is also a real barrier, so shard-at-a-time
/// harnesses remain correct, just without the amortization).
///
/// `wants_checkpoint` is always `false`: rotation needs every object's
/// state at once, so the node drives it through
/// [`NodeStore::wants_rotation`]/[`NodeStore::rotate`] instead of any
/// single shard.
pub struct ShardHandle {
    core: Arc<Mutex<NodeStore>>,
    object: ObjectId,
}

impl ShardHandle {
    /// A handle routing `object`'s hooks into `core`.
    #[must_use]
    pub fn new(core: Arc<Mutex<NodeStore>>, object: ObjectId) -> Self {
        ShardHandle { core, object }
    }
}

impl Persistence for ShardHandle {
    fn seq_advanced(&mut self, next_seq: u64) {
        self.core
            .lock()
            .unwrap()
            .append(self.object, &PersistOp::Seq(next_seq))
            .expect("WAL append");
    }

    fn prepared(&mut self, txn: dynvote_protocol::TxnId, coordinator: dynvote_core::SiteId) {
        self.core
            .lock()
            .unwrap()
            .append(self.object, &PersistOp::Prepared(txn, coordinator))
            .expect("WAL append");
    }

    fn prepare_cleared(&mut self, txn: dynvote_protocol::TxnId) {
        self.core
            .lock()
            .unwrap()
            .append(self.object, &PersistOp::PrepareCleared(txn))
            .expect("WAL append");
    }

    fn entries_appended(&mut self, entries: &[dynvote_protocol::LogEntry]) {
        self.core
            .lock()
            .unwrap()
            .append(self.object, &PersistOp::Entries(entries.to_vec()))
            .expect("WAL append");
    }

    fn meta_updated(&mut self, meta: dynvote_core::CopyMeta) {
        self.core
            .lock()
            .unwrap()
            .append(self.object, &PersistOp::Meta(meta))
            .expect("WAL append");
    }

    fn committed(
        &mut self,
        txn: dynvote_protocol::TxnId,
        meta: dynvote_core::CopyMeta,
        participants: dynvote_core::SiteSet,
    ) {
        self.core
            .lock()
            .unwrap()
            .append(self.object, &PersistOp::Committed(txn, meta, participants))
            .expect("WAL append");
    }

    fn sync(&mut self) {
        self.core.lock().unwrap().barrier().expect("WAL barrier");
    }

    fn wal_epoch(&self) -> Option<u64> {
        Some(self.core.lock().unwrap().epoch())
    }
}

/// One shard's [`Persistence`] handle onto a **worker-local stage**: a
/// byte buffer shared only by the shards of one worker partition, so
/// the durable hot path of a parallel node never contends on the
/// [`NodeStore`] lock. Hooks encode keyed ops into the stage; at the
/// node's merge barrier every worker's stage is [`NodeStore::ingest`]ed
/// (in worker order) and a single [`NodeStore::barrier`] seals the lot
/// as one checksummed record — the exact bytes [`ShardHandle`] would
/// have produced, minus the shared-lock traffic.
///
/// `sync` on the handle itself remains a real barrier (it ingests its
/// own stage, then seals), so a shard driven stand-alone stays correct,
/// just without the cross-worker amortization. Lock order is
/// store-then-stage everywhere, matching the node's merge path.
pub struct StagedHandle {
    stage: Arc<Mutex<Vec<u8>>>,
    core: Arc<Mutex<NodeStore>>,
    object: ObjectId,
}

impl StagedHandle {
    /// A handle staging `object`'s hooks into `stage`, sealing through
    /// `core`.
    #[must_use]
    pub fn new(stage: Arc<Mutex<Vec<u8>>>, core: Arc<Mutex<NodeStore>>, object: ObjectId) -> Self {
        StagedHandle {
            stage,
            core,
            object,
        }
    }

    fn stage_op(&self, op: &PersistOp) {
        encode_keyed_op_into(&mut self.stage.lock().unwrap(), self.object, op);
    }
}

impl Persistence for StagedHandle {
    fn seq_advanced(&mut self, next_seq: u64) {
        self.stage_op(&PersistOp::Seq(next_seq));
    }

    fn prepared(&mut self, txn: dynvote_protocol::TxnId, coordinator: dynvote_core::SiteId) {
        self.stage_op(&PersistOp::Prepared(txn, coordinator));
    }

    fn prepare_cleared(&mut self, txn: dynvote_protocol::TxnId) {
        self.stage_op(&PersistOp::PrepareCleared(txn));
    }

    fn entries_appended(&mut self, entries: &[dynvote_protocol::LogEntry]) {
        self.stage_op(&PersistOp::Entries(entries.to_vec()));
    }

    fn meta_updated(&mut self, meta: dynvote_core::CopyMeta) {
        self.stage_op(&PersistOp::Meta(meta));
    }

    fn committed(
        &mut self,
        txn: dynvote_protocol::TxnId,
        meta: dynvote_core::CopyMeta,
        participants: dynvote_core::SiteSet,
    ) {
        self.stage_op(&PersistOp::Committed(txn, meta, participants));
    }

    fn sync(&mut self) {
        let mut core = self.core.lock().unwrap();
        core.ingest(&mut self.stage.lock().unwrap());
        core.barrier().expect("WAL barrier");
    }

    fn wal_epoch(&self) -> Option<u64> {
        Some(self.core.lock().unwrap().epoch())
    }
}

// ----- recovery ----------------------------------------------------------

/// Multi-object mirror of the single-object recovery scan: newest valid
/// multi snapshot, then keyed replay of WAL tails under the torn-tail
/// rule. States grow on demand (an op naming an object beyond the
/// current map seeds it from `template`) and never shrink below
/// `min_objects`.
fn recover_multi(
    dir: &Path,
    template: &DurableState,
    min_objects: usize,
) -> Result<(Vec<DurableState>, RecoveryReport, u64), StorageError> {
    let (snaps, wals) = list_epochs(dir)?;
    let max_epoch = snaps.iter().chain(wals.iter()).copied().max().unwrap_or(0);

    let mut report = RecoveryReport::default();
    let mut states: Vec<DurableState> = vec![template.clone(); min_objects];
    let mut base_epoch = 0u64;
    for &epoch in snaps.iter().rev() {
        let path = dir.join(snap_name(epoch));
        let decoded = read_snapshot_bytes(&path, epoch, SNAP_MAGIC_MULTI)
            .and_then(|payload| decode_states(&payload).ok());
        match decoded {
            Some(snapped) => {
                for (o, state) in snapped.into_iter().enumerate() {
                    if o < states.len() {
                        states[o] = state;
                    } else {
                        states.push(state);
                    }
                }
                base_epoch = epoch;
                report.snapshot_epoch = Some(epoch);
                break;
            }
            None => report.corrupt_snapshots += 1,
        }
    }

    'replay: for &epoch in wals.iter().filter(|&&e| e >= base_epoch) {
        let path = dir.join(wal_name(epoch));
        let bytes = io_err(&path, fs::read(&path))?;
        let mut expected_header = Vec::with_capacity(16);
        expected_header.extend_from_slice(WAL_MAGIC_MULTI);
        expected_header.extend_from_slice(&epoch.to_le_bytes());
        if bytes.len() < 16 || bytes[..16] != expected_header[..] {
            report.truncated = Some(TornTail {
                epoch,
                offset: 0,
                reason: TornReason::ShortHeader,
            });
            break 'replay;
        }
        report.segments_replayed += 1;
        let mut scanner = RecordScanner::new(&bytes[16..]);
        loop {
            match scanner.next_keyed() {
                Some(Ok(ops)) => {
                    for (object, op) in &ops {
                        while object.index() >= states.len() {
                            states.push(template.clone());
                        }
                        apply_op(&mut states[object.index()], op);
                    }
                    report.records_replayed += 1;
                }
                Some(Err(reason)) => {
                    report.truncated = Some(TornTail {
                        epoch,
                        offset: 16 + scanner.valid_end() as u64,
                        reason,
                    });
                    break 'replay;
                }
                None => break,
            }
        }
    }
    Ok((states, report, max_epoch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_core::{CopyMeta, Distinguished, SiteId, SiteSet};
    use dynvote_protocol::{LogEntry, TxnId};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dynvote-multi-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn commit_ops(object: u32, version: u64) -> Vec<(ObjectId, PersistOp)> {
        let txn = TxnId::keyed(SiteId(0), version, ObjectId(object));
        let meta = CopyMeta {
            version,
            cardinality: 3,
            distinguished: Distinguished::Irrelevant,
        };
        vec![
            (
                ObjectId(object),
                PersistOp::Entries(vec![LogEntry {
                    version,
                    payload: u64::from(object) * 1000 + version,
                }]),
            ),
            (ObjectId(object), PersistOp::Meta(meta)),
            (
                ObjectId(object),
                PersistOp::Committed(txn, meta, SiteSet::all(3)),
            ),
        ]
    }

    #[test]
    fn group_commit_batch_recovers_per_object() {
        let dir = tmpdir("group");
        let template = DurableState::initial(3);
        let (mut store, states, report) =
            NodeStore::open(&dir, StoreConfig::default(), 4, template.clone()).unwrap();
        assert_eq!(states.len(), 4);
        assert_eq!(report.records_replayed, 0);

        // One batch interleaving three objects' steps, sealed by a
        // single barrier.
        for ops in [commit_ops(0, 1), commit_ops(2, 1), commit_ops(3, 1)] {
            for (object, op) in &ops {
                store.append(*object, op).unwrap();
            }
        }
        store.barrier().unwrap();
        drop(store);

        let (reopened, states, report) =
            NodeStore::open(&dir, StoreConfig::default(), 4, template).unwrap();
        assert_eq!(report.records_replayed, 1, "one batch = one record");
        assert_eq!(states[0].meta.version, 1);
        assert_eq!(states[1].meta.version, 0, "untouched object stays fresh");
        assert_eq!(states[2].meta.version, 1);
        assert_eq!(states[3].meta.version, 1);
        assert_eq!(states[0].log[0].payload, 1);
        assert_eq!(states[3].log[0].payload, 3001);
        drop(reopened);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_snapshots_all_objects_and_compacts() {
        let dir = tmpdir("rotate");
        let template = DurableState::initial(3);
        let (mut store, mut states, _) =
            NodeStore::open(&dir, StoreConfig::default(), 2, template.clone()).unwrap();
        for (object, op) in commit_ops(1, 1) {
            store.append(object, &op).unwrap();
            apply_op(&mut states[1], &op);
        }
        store.barrier().unwrap();
        let old_epoch = store.epoch();
        store.rotate(&states).unwrap();
        assert_eq!(store.epoch(), old_epoch + 1);
        assert!(!dir.join(wal_name(old_epoch)).exists(), "compacted");
        drop(store);

        let (_, recovered, report) =
            NodeStore::open(&dir, StoreConfig::default(), 2, template).unwrap();
        assert_eq!(report.records_replayed, 0, "snapshot subsumed the WAL");
        assert_eq!(recovered[1].meta.version, 1);
        assert_eq!(recovered[0].meta.version, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_multi_record_loses_whole_batch_only() {
        let dir = tmpdir("torn");
        let template = DurableState::initial(3);
        let (mut store, _, _) =
            NodeStore::open(&dir, StoreConfig::default(), 2, template.clone()).unwrap();
        for (object, op) in commit_ops(0, 1) {
            store.append(object, &op).unwrap();
        }
        store.barrier().unwrap();
        for (object, op) in commit_ops(1, 1) {
            store.append(object, &op).unwrap();
        }
        store.barrier().unwrap();
        let wal_path = store.wal_path.clone();
        drop(store);

        // Tear the tail: chop the last record short.
        let bytes = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

        let (states, report) = NodeStore::inspect(&dir, template).unwrap();
        assert!(report.truncated.is_some());
        assert_eq!(report.records_replayed, 1);
        assert_eq!(states[0].meta.version, 1, "first batch survives whole");
        assert_eq!(states[1].meta.version, 0, "torn batch fully discarded");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn staged_workers_merge_into_one_record_with_shard_handle_bytes() {
        // Two directories, same ops: one through the shared-lock
        // ShardHandle path, one through two per-worker stages merged by
        // ingest. Recovery must see one record in both, with identical
        // per-object states.
        let template = DurableState::initial(3);
        let dir_direct = tmpdir("staged-direct");
        let (store, _, _) =
            NodeStore::open(&dir_direct, StoreConfig::default(), 4, template.clone()).unwrap();
        let core = Arc::new(Mutex::new(store));
        for object in 0..4u32 {
            let mut h = ShardHandle::new(Arc::clone(&core), ObjectId(object));
            for (o, op) in commit_ops(object, 1) {
                assert_eq!(o, ObjectId(object));
                match op {
                    PersistOp::Entries(e) => h.entries_appended(&e),
                    PersistOp::Meta(m) => h.meta_updated(m),
                    PersistOp::Committed(t, m, p) => h.committed(t, m, p),
                    other => panic!("unexpected op {other:?}"),
                }
            }
        }
        core.lock().unwrap().barrier().unwrap();
        drop(Arc::try_unwrap(core).map(|m| m.into_inner().unwrap()));

        let dir_staged = tmpdir("staged-pool");
        let (store, _, _) =
            NodeStore::open(&dir_staged, StoreConfig::default(), 4, template.clone()).unwrap();
        let core = Arc::new(Mutex::new(store));
        // Two workers under `object % 2`, each with its own stage.
        let stages: Vec<Arc<Mutex<Vec<u8>>>> =
            (0..2).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
        for object in 0..4u32 {
            let stage = Arc::clone(&stages[object as usize % 2]);
            let mut h = StagedHandle::new(stage, Arc::clone(&core), ObjectId(object));
            for (_, op) in commit_ops(object, 1) {
                match op {
                    PersistOp::Entries(e) => h.entries_appended(&e),
                    PersistOp::Meta(m) => h.meta_updated(m),
                    PersistOp::Committed(t, m, p) => h.committed(t, m, p),
                    other => panic!("unexpected op {other:?}"),
                }
            }
        }
        {
            let mut core = core.lock().unwrap();
            for stage in &stages {
                let mut stage = stage.lock().unwrap();
                core.ingest(&mut stage);
                assert!(stage.is_empty(), "ingest drains the stage");
            }
            core.barrier().unwrap();
        }
        drop(Arc::try_unwrap(core).map(|m| m.into_inner().unwrap()));

        let (direct, direct_report) = NodeStore::inspect(&dir_direct, template.clone()).unwrap();
        let (staged, staged_report) = NodeStore::inspect(&dir_staged, template).unwrap();
        assert_eq!(direct_report.records_replayed, 1);
        assert_eq!(staged_report.records_replayed, 1, "still one record");
        for o in 0..4 {
            assert_eq!(direct[o].meta, staged[o].meta, "object {o} meta diverges");
            assert_eq!(direct[o].log, staged[o].log, "object {o} log diverges");
            assert_eq!(direct[o].commits, staged[o].commits);
        }
        let _ = fs::remove_dir_all(&dir_direct);
        let _ = fs::remove_dir_all(&dir_staged);
    }

    #[test]
    fn staged_handle_standalone_sync_is_a_real_barrier() {
        let dir = tmpdir("staged-sync");
        let template = DurableState::initial(3);
        let (store, _, _) =
            NodeStore::open(&dir, StoreConfig::default(), 1, template.clone()).unwrap();
        let core = Arc::new(Mutex::new(store));
        let stage = Arc::new(Mutex::new(Vec::new()));
        let mut h = StagedHandle::new(stage, Arc::clone(&core), ObjectId(0));
        h.seq_advanced(3);
        assert_eq!(h.wal_epoch(), Some(core.lock().unwrap().epoch()));
        h.sync();
        drop(h);
        drop(Arc::try_unwrap(core).map(|m| m.into_inner().unwrap()));
        let (states, report) = NodeStore::inspect(&dir, template).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(states[0].next_seq, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_handles_share_one_store_and_one_barrier() {
        let dir = tmpdir("handles");
        let template = DurableState::initial(3);
        let (store, _, _) =
            NodeStore::open(&dir, StoreConfig::default(), 2, template.clone()).unwrap();
        let core = Arc::new(Mutex::new(store));
        let mut h0 = ShardHandle::new(Arc::clone(&core), ObjectId(0));
        let mut h1 = ShardHandle::new(Arc::clone(&core), ObjectId(1));
        h0.seq_advanced(1);
        h1.seq_advanced(5);
        h0.sync();
        drop((h0, h1));
        let _ = Arc::try_unwrap(core).map(|m| drop(m.into_inner().unwrap()));

        let (states, report) = NodeStore::inspect(&dir, template).unwrap();
        assert_eq!(report.records_replayed, 1, "both shards in one record");
        assert_eq!(states[0].next_seq, 1);
        assert_eq!(states[1].next_seq, 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
