//! WAL record and snapshot byte formats.
//!
//! A WAL record is the **batch** of [`PersistOp`]s a site's kernel
//! emitted between two force-write barriers — one protocol step —
//! framed as:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [body: len bytes = concatenated ops]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE) of the body. Bodies reuse the
//! protocol's codec primitives (`put_txn`, `put_meta`, `put_entries`,
//! ...), so a WAL record and the wire messages that caused it encode
//! the same vocabulary with the same bytes. Every encoder appends to a
//! caller-owned buffer, mirroring the transport's reusable-buffer
//! discipline.
//!
//! Framing the step, not the op, is what makes recovery sound: a
//! commit mutates the log, the metadata, and the commit-record table
//! through three separate hooks, and a state holding only a prefix of
//! those mutations violates kernel invariants ("an update operation at
//! a site is atomic", Section V-B). Because a record either replays in
//! full or not at all, a killed process can only ever lose whole steps
//! — and a step that never reached its barrier never announced
//! anything to other sites, so losing it is indistinguishable from the
//! kill having happened a moment earlier.
//!
//! The [`RecordScanner`] decoder enforces the **torn-tail rule**: it
//! yields record batches until the first length/CRC/decode violation
//! and reports the byte offset where the valid prefix ends — recovery
//! truncates there. A record that was only partially written by a
//! killed process is indistinguishable from garbage, and both are
//! handled identically: the log simply ends early.

use crate::crc32::crc32;
use dynvote_core::SiteId;
use dynvote_protocol::codec::{
    put_entries, put_meta, put_site_set, put_txn, put_u32, put_u64, put_u8, Reader, WireError,
};
use dynvote_protocol::persist::PersistOp;
use dynvote_protocol::{CommitRecord, DurableState, ObjectId};
use std::collections::HashMap;

/// First bytes of every single-object WAL segment file. (`002`: the
/// encoded [`TxnId`](dynvote_protocol::TxnId) gained its object
/// dimension, which changes every record that names a transaction.)
pub const WAL_MAGIC: &[u8; 8] = b"DVWAL002";
/// First bytes of every single-object snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"DVSNAP02";
/// First bytes of a multi-object (node-wide) WAL segment, whose record
/// bodies are concatenated `[object][op]` keyed ops.
pub const WAL_MAGIC_MULTI: &[u8; 8] = b"DVWALM01";
/// First bytes of a multi-object snapshot, whose payload is a counted
/// run of per-object states.
pub const SNAP_MAGIC_MULTI: &[u8; 8] = b"DVSNAPM1";
/// Upper bound on one record body, guarding against corrupt length
/// prefixes (same cap as the wire transport's frames).
pub const MAX_RECORD: usize = 16 * 1024 * 1024;

// ----- record bodies -----------------------------------------------------

/// Append the body of one [`PersistOp`] record (no framing).
pub fn encode_op_into(out: &mut Vec<u8>, op: &PersistOp) {
    match op {
        PersistOp::Seq(next_seq) => {
            put_u8(out, 1);
            put_u64(out, *next_seq);
        }
        PersistOp::Prepared(txn, coordinator) => {
            put_u8(out, 2);
            put_txn(out, *txn);
            put_u8(out, coordinator.0);
        }
        PersistOp::PrepareCleared(txn) => {
            put_u8(out, 3);
            put_txn(out, *txn);
        }
        PersistOp::Entries(entries) => {
            put_u8(out, 4);
            put_entries(out, entries);
        }
        PersistOp::Meta(meta) => {
            put_u8(out, 5);
            put_meta(out, *meta);
        }
        PersistOp::Committed(txn, meta, participants) => {
            put_u8(out, 6);
            put_txn(out, *txn);
            put_meta(out, *meta);
            put_site_set(out, *participants);
        }
    }
}

/// Append one keyed op — `[object: u32][op]` — the record vocabulary of
/// the multi-object node WAL. One node-wide record interleaves many
/// objects' ops; the object prefix routes each op back to its shard's
/// state on replay.
pub fn encode_keyed_op_into(out: &mut Vec<u8>, object: ObjectId, op: &PersistOp) {
    put_u32(out, object.0);
    encode_op_into(out, op);
}

/// Decode a multi-object record body: the concatenated keyed ops of one
/// group-commit batch, in append order.
pub fn decode_keyed_ops(body: &[u8]) -> Result<Vec<(ObjectId, PersistOp)>, WireError> {
    let mut r = Reader::new(body);
    let mut ops = Vec::new();
    while r.remaining() > 0 {
        let object = ObjectId(r.u32()?);
        ops.push((object, decode_one(&mut r)?));
    }
    Ok(ops)
}

fn decode_one(r: &mut Reader) -> Result<PersistOp, WireError> {
    Ok(match r.u8()? {
        1 => PersistOp::Seq(r.u64()?),
        2 => PersistOp::Prepared(r.txn()?, SiteId(r.u8()?)),
        3 => PersistOp::PrepareCleared(r.txn()?),
        4 => PersistOp::Entries(r.entries()?),
        5 => PersistOp::Meta(r.meta()?),
        6 => PersistOp::Committed(r.txn()?, r.meta()?, r.site_set()?),
        tag => return Err(WireError::BadTag(tag)),
    })
}

/// Decode a body holding exactly one op.
pub fn decode_op(body: &[u8]) -> Result<PersistOp, WireError> {
    let mut r = Reader::new(body);
    let op = decode_one(&mut r)?;
    r.finish(op)
}

/// Decode a record body: the concatenated ops of one batch.
pub fn decode_ops(body: &[u8]) -> Result<Vec<PersistOp>, WireError> {
    let mut r = Reader::new(body);
    let mut ops = Vec::new();
    while r.remaining() > 0 {
        ops.push(decode_one(&mut r)?);
    }
    Ok(ops)
}

/// The `[len: u32 LE][crc: u32 LE]` frame header for a record body.
#[must_use]
pub fn frame_header(body: &[u8]) -> [u8; 8] {
    let len = u32::try_from(body.len()).expect("record body exceeds u32::MAX");
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4..].copy_from_slice(&crc32(body).to_le_bytes());
    header
}

/// Append one fully framed record holding the batch `ops`.
pub fn encode_record_into(out: &mut Vec<u8>, ops: &[PersistOp]) {
    assert!(!ops.is_empty(), "a WAL record holds at least one op");
    let frame_at = out.len();
    out.extend_from_slice(&[0u8; 8]); // len + crc placeholders
    for op in ops {
        encode_op_into(out, op);
    }
    let body_at = frame_at + 8;
    let header = frame_header(&out[body_at..]);
    out[frame_at..body_at].copy_from_slice(&header);
}

// ----- scanning ----------------------------------------------------------

/// Why a scan stopped before the end of the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than 8 bytes left — a header was cut mid-write.
    ShortHeader,
    /// A zero-length record: no writer emits empty batches, so this is
    /// zeroed (or foreign) bytes whose empty body trivially matches the
    /// CRC of nothing.
    Empty,
    /// The length prefix exceeds [`MAX_RECORD`] (corrupt length).
    BadLength(u32),
    /// The body was cut short of its declared length.
    ShortBody,
    /// The CRC did not match the body.
    BadCrc,
    /// The body failed to decode despite a matching CRC (foreign or
    /// future record format).
    BadBody(WireError),
}

impl std::fmt::Display for TornReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornReason::ShortHeader => write!(f, "record header cut short"),
            TornReason::Empty => write!(f, "zero-length record"),
            TornReason::BadLength(len) => write!(f, "record length {len} exceeds {MAX_RECORD}"),
            TornReason::ShortBody => write!(f, "record body cut short"),
            TornReason::BadCrc => write!(f, "checksum mismatch"),
            TornReason::BadBody(e) => write!(f, "undecodable body: {e}"),
        }
    }
}

/// Cursor over a WAL segment's record region, enforcing the torn-tail
/// rule. After iteration, [`RecordScanner::valid_end`] is the offset of
/// the last byte of the last valid record — the truncation point when
/// the scan ended in [`TornReason`].
pub struct RecordScanner<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordScanner<'a> {
    /// Scan `buf`, the record region of a segment (after the header).
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        RecordScanner { buf, pos: 0 }
    }

    /// Offset of the end of the valid prefix scanned so far.
    #[must_use]
    pub fn valid_end(&self) -> usize {
        self.pos
    }

    /// Validate the next frame's header/length/CRC (decoding is the
    /// caller's job). Returns the body and the bytes to advance by.
    fn frame(&self) -> Option<Result<(&'a [u8], usize), TornReason>> {
        let remaining = &self.buf[self.pos..];
        if remaining.is_empty() {
            return None;
        }
        if remaining.len() < 8 {
            return Some(Err(TornReason::ShortHeader));
        }
        let len = u32::from_le_bytes([remaining[0], remaining[1], remaining[2], remaining[3]]);
        let crc = u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]);
        if len == 0 {
            return Some(Err(TornReason::Empty));
        }
        if len as usize > MAX_RECORD {
            return Some(Err(TornReason::BadLength(len)));
        }
        let body_end = 8 + len as usize;
        if remaining.len() < body_end {
            return Some(Err(TornReason::ShortBody));
        }
        let body = &remaining[8..body_end];
        if crc32(body) != crc {
            return Some(Err(TornReason::BadCrc));
        }
        Some(Ok((body, body_end)))
    }

    /// The next record batch: `None` at a clean end, `Some(Err(..))` at
    /// the first violation (the scanner stays put — further calls keep
    /// returning the same violation). A batch decodes in full or not at
    /// all, so replay can never apply half a protocol step.
    #[allow(clippy::should_implement_trait)] // Iterator would lose the by-ref stop-and-hold semantics
    pub fn next(&mut self) -> Option<Result<Vec<PersistOp>, TornReason>> {
        match self.frame()? {
            Ok((body, advance)) => match decode_ops(body) {
                Ok(ops) => {
                    self.pos += advance;
                    Some(Ok(ops))
                }
                Err(e) => Some(Err(TornReason::BadBody(e))),
            },
            Err(reason) => Some(Err(reason)),
        }
    }

    /// The next multi-object record batch — the keyed-op mirror of
    /// [`RecordScanner::next`], with identical torn-tail semantics. One
    /// batch is one group-commit barrier's worth of ops across many
    /// objects.
    pub fn next_keyed(&mut self) -> Option<Result<Vec<(ObjectId, PersistOp)>, TornReason>> {
        match self.frame()? {
            Ok((body, advance)) => match decode_keyed_ops(body) {
                Ok(ops) => {
                    self.pos += advance;
                    Some(Ok(ops))
                }
                Err(e) => Some(Err(TornReason::BadBody(e))),
            },
            Err(reason) => Some(Err(reason)),
        }
    }
}

// ----- snapshots ---------------------------------------------------------

/// Append an encoded [`DurableState`] (snapshot payload, no framing).
///
/// Commit records are sorted by transaction id so identical states
/// encode to identical bytes regardless of hash-map iteration order.
pub fn encode_state_into(out: &mut Vec<u8>, state: &DurableState) {
    put_meta(out, state.meta);
    put_entries(out, &state.log);
    let mut txns: Vec<_> = state.commits.keys().copied().collect();
    txns.sort_unstable();
    put_u32(out, txns.len() as u32);
    for txn in txns {
        let record = &state.commits[&txn];
        put_txn(out, txn);
        put_meta(out, record.meta);
        put_site_set(out, record.participants);
    }
    match state.prepared {
        None => put_u8(out, 0),
        Some((txn, coordinator)) => {
            put_u8(out, 1);
            put_txn(out, txn);
            put_u8(out, coordinator.0);
        }
    }
    put_u64(out, state.next_seq);
}

/// Decode one [`DurableState`] at the reader's position, leaving the
/// reader just past it — the building block for both snapshot flavors.
fn read_state(r: &mut Reader) -> Result<DurableState, WireError> {
    let meta = r.meta()?;
    let log = r.entries()?;
    let commit_count = r.u32()? as usize;
    // Guard: each commit record is at least 26 bytes.
    if commit_count > r.remaining() / 26 {
        return Err(WireError::Truncated);
    }
    let mut commits = HashMap::with_capacity(commit_count);
    for _ in 0..commit_count {
        let txn = r.txn()?;
        let meta = r.meta()?;
        let participants = r.site_set()?;
        commits.insert(txn, CommitRecord { meta, participants });
    }
    let prepared = match r.u8()? {
        0 => None,
        1 => Some((r.txn()?, SiteId(r.u8()?))),
        tag => return Err(WireError::BadTag(tag)),
    };
    let next_seq = r.u64()?;
    Ok(DurableState {
        meta,
        log,
        commits,
        prepared,
        next_seq,
    })
}

/// Decode a snapshot payload back into a [`DurableState`].
pub fn decode_state(body: &[u8]) -> Result<DurableState, WireError> {
    let mut r = Reader::new(body);
    let state = read_state(&mut r)?;
    r.finish(state)
}

/// Append a multi-object snapshot payload: a counted run of per-object
/// states in object order (`states[o]` is object `o`'s state — objects
/// are dense, so the index is the id).
pub fn encode_states_into(out: &mut Vec<u8>, states: &[DurableState]) {
    put_u32(out, states.len() as u32);
    for state in states {
        encode_state_into(out, state);
    }
}

/// Decode a multi-object snapshot payload back into per-object states.
pub fn decode_states(body: &[u8]) -> Result<Vec<DurableState>, WireError> {
    let mut r = Reader::new(body);
    let count = r.u32()? as usize;
    // Guard: even an empty state encodes to well over 26 bytes.
    if count > r.remaining() / 26 + 1 {
        return Err(WireError::Truncated);
    }
    let mut states = Vec::with_capacity(count);
    for _ in 0..count {
        states.push(read_state(&mut r)?);
    }
    r.finish(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_core::{CopyMeta, Distinguished, SiteSet};
    use dynvote_protocol::{LogEntry, TxnId};

    fn sample_ops() -> Vec<PersistOp> {
        let txn = TxnId::new(SiteId(2), 9);
        let meta = CopyMeta {
            version: 4,
            cardinality: 3,
            distinguished: Distinguished::Trio(SiteSet::all(3)),
        };
        vec![
            PersistOp::Seq(10),
            PersistOp::Prepared(txn, SiteId(2)),
            PersistOp::PrepareCleared(txn),
            PersistOp::Entries(vec![
                LogEntry {
                    version: 1,
                    payload: 7,
                },
                LogEntry {
                    version: 2,
                    payload: 8,
                },
            ]),
            PersistOp::Meta(meta),
            PersistOp::Committed(txn, meta, SiteSet::all(3)),
        ]
    }

    fn sample_state() -> DurableState {
        let mut commits = HashMap::new();
        commits.insert(
            TxnId::new(SiteId(0), 3),
            CommitRecord {
                meta: CopyMeta {
                    version: 2,
                    cardinality: 2,
                    distinguished: Distinguished::Single(SiteId(1)),
                },
                participants: SiteSet::all(2),
            },
        );
        DurableState {
            meta: CopyMeta {
                version: 2,
                cardinality: 2,
                distinguished: Distinguished::Single(SiteId(1)),
            },
            log: vec![
                LogEntry {
                    version: 1,
                    payload: 100,
                },
                LogEntry {
                    version: 2,
                    payload: 200,
                },
            ],
            commits,
            prepared: Some((TxnId::new(SiteId(1), 5), SiteId(1))),
            next_seq: 7,
        }
    }

    #[test]
    fn every_op_round_trips_framed() {
        let mut buf = Vec::new();
        let ops = sample_ops();
        for op in &ops {
            encode_record_into(&mut buf, std::slice::from_ref(op));
        }
        let mut scanner = RecordScanner::new(&buf);
        for op in &ops {
            assert_eq!(scanner.next().unwrap().unwrap(), vec![op.clone()]);
        }
        assert!(scanner.next().is_none());
        assert_eq!(scanner.valid_end(), buf.len());
    }

    #[test]
    fn a_batch_round_trips_as_one_record() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        encode_record_into(&mut buf, &ops);
        let mut scanner = RecordScanner::new(&buf);
        assert_eq!(scanner.next().unwrap().unwrap(), ops);
        assert!(scanner.next().is_none());

        // The framed body is exactly the concatenated op encodings.
        let mut body = Vec::new();
        for op in &ops {
            encode_op_into(&mut body, op);
        }
        assert_eq!(&buf[..8], &frame_header(&body));
        assert_eq!(&buf[8..], &body[..]);
        assert_eq!(decode_ops(&body).unwrap(), ops);
    }

    #[test]
    fn keyed_ops_round_trip_as_one_multi_object_record() {
        let keyed: Vec<(ObjectId, PersistOp)> = sample_ops()
            .into_iter()
            .enumerate()
            .map(|(i, op)| (ObjectId((i % 3) as u32), op))
            .collect();
        let mut body = Vec::new();
        for (object, op) in &keyed {
            encode_keyed_op_into(&mut body, *object, op);
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(&frame_header(&body));
        buf.extend_from_slice(&body);
        let mut scanner = RecordScanner::new(&buf);
        assert_eq!(scanner.next_keyed().unwrap().unwrap(), keyed);
        assert!(scanner.next_keyed().is_none());
        assert_eq!(scanner.valid_end(), buf.len());
        assert_eq!(decode_keyed_ops(&body).unwrap(), keyed);
    }

    #[test]
    fn multi_object_snapshot_round_trips() {
        let states = vec![sample_state(), DurableState::initial(3), sample_state()];
        let mut buf = Vec::new();
        encode_states_into(&mut buf, &states);
        assert_eq!(decode_states(&buf).unwrap(), states);
        // Hostile count is rejected without allocating.
        let mut hostile = Vec::new();
        put_u32(&mut hostile, u32::MAX);
        assert_eq!(decode_states(&hostile), Err(WireError::Truncated));
    }

    #[test]
    fn snapshot_state_round_trips_and_is_deterministic() {
        let state = sample_state();
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_state_into(&mut a, &state);
        encode_state_into(&mut b, &state.clone());
        assert_eq!(a, b, "snapshot encoding is deterministic");
        assert_eq!(decode_state(&a).unwrap(), state);
    }

    #[test]
    fn torn_tail_stops_at_first_violation() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        for op in &ops {
            encode_record_into(&mut buf, std::slice::from_ref(op));
        }
        // Truncate mid-record: every cut point either replays a whole
        // prefix or stops with a torn reason — never panics.
        for cut in 0..buf.len() {
            let mut scanner = RecordScanner::new(&buf[..cut]);
            let mut replayed = 0usize;
            while let Some(Ok(_)) = scanner.next() {
                replayed += 1;
            }
            assert!(replayed <= ops.len());
            assert!(scanner.valid_end() <= cut);
        }
    }

    #[test]
    fn bit_flip_in_body_is_caught_by_crc() {
        let mut buf = Vec::new();
        encode_record_into(&mut buf, &sample_ops()[3..4]);
        let last = buf.len() - 1;
        buf[last] ^= 0x40; // flip a bit in the body
        let mut scanner = RecordScanner::new(&buf);
        assert_eq!(scanner.next(), Some(Err(TornReason::BadCrc)));
        assert_eq!(scanner.valid_end(), 0);
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        buf.extend_from_slice(&[0u8; 16]);
        let mut scanner = RecordScanner::new(&buf);
        assert!(matches!(
            scanner.next(),
            Some(Err(TornReason::BadLength(_)))
        ));
    }

    #[test]
    fn zero_fill_tail_is_torn_not_replayed() {
        let mut buf = Vec::new();
        encode_record_into(&mut buf, &[PersistOp::Seq(1)]);
        let good = buf.len();
        buf.extend_from_slice(&[0u8; 64]); // zero-filled tail
        let mut scanner = RecordScanner::new(&buf);
        assert!(scanner.next().unwrap().is_ok());
        // A zeroed header decodes as len=0/crc=0; crc32 of the empty
        // body is 0, so the CRC alone would pass — the explicit
        // zero-length check must reject it.
        assert_eq!(scanner.next(), Some(Err(TornReason::Empty)));
        assert_eq!(scanner.valid_end(), good);
    }
}
