//! Store lifecycle and the corruption matrix.
//!
//! The matrix attacks a WAL segment the three ways a real crash can:
//! truncation mid-record (torn write), a bit flip inside a checksummed
//! body, and a zero-filled tail (preallocated-but-unwritten blocks).
//! Recovery must truncate at the first invalid record, reconstruct
//! exactly the valid prefix, and never panic.
//!
//! Ops reach the file only when a barrier seals the batch as one
//! record, so most tests here barrier after every op — one op per
//! record — to aim damage at exact frame boundaries.

use dynvote_core::{CopyMeta, Distinguished, LinearOrder, SiteId, SiteSet};
use dynvote_protocol::persist::{apply_op, PersistOp};
use dynvote_protocol::{DurableState, LogEntry, Persistence, TxnId};
use dynvote_storage::wal::encode_record_into;
use dynvote_storage::{FsyncPolicy, SiteStore, StoreConfig, TornReason};
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dynvote-storage-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn initial_state(n: usize) -> DurableState {
    DurableState {
        meta: CopyMeta::initial(n, &LinearOrder::lexicographic(n)),
        log: Vec::new(),
        commits: HashMap::new(),
        prepared: None,
        next_seq: 0,
    }
}

fn txn(c: u8, seq: u64) -> TxnId {
    TxnId::new(SiteId(c), seq)
}

fn meta_v(version: u64) -> CopyMeta {
    CopyMeta {
        version,
        cardinality: 3,
        distinguished: Distinguished::Trio(SiteSet::all(3)),
    }
}

/// A realistic hook stream: two commits and an in-doubt prepare.
fn sample_ops() -> Vec<PersistOp> {
    vec![
        PersistOp::Seq(1),
        PersistOp::Entries(vec![LogEntry {
            version: 1,
            payload: 111,
        }]),
        PersistOp::Meta(meta_v(1)),
        PersistOp::Committed(txn(0, 1), meta_v(1), SiteSet::all(3)),
        PersistOp::Entries(vec![LogEntry {
            version: 2,
            payload: 222,
        }]),
        PersistOp::Meta(meta_v(2)),
        PersistOp::Committed(txn(1, 1), meta_v(2), SiteSet::all(3)),
        PersistOp::Prepared(txn(2, 4), SiteId(2)),
    ]
}

fn reference_after(ops: &[PersistOp]) -> DurableState {
    let mut state = initial_state(3);
    for op in ops {
        apply_op(&mut state, op);
    }
    state
}

fn always() -> StoreConfig {
    StoreConfig {
        fsync: FsyncPolicy::Always,
        ..StoreConfig::default()
    }
}

/// Append each op as its own sealed record (barrier per op).
fn append_sealed(store: &mut SiteStore, ops: &[PersistOp]) {
    for op in ops {
        store.append(op).unwrap();
        store.barrier().unwrap();
    }
}

/// The live WAL segment of a store that was just dropped (newest
/// epoch).
fn live_wal(dir: &PathBuf) -> PathBuf {
    let mut wals: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.strip_prefix("wal-").map(|s| s.parse::<u64>().unwrap())
        })
        .collect();
    wals.sort_unstable();
    dir.join(format!("wal-{:016}", wals.last().unwrap()))
}

#[test]
fn fresh_directory_boots_initial_state() {
    let dir = temp_dir("fresh");
    let (store, state, report) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
    assert_eq!(state, initial_state(3));
    assert_eq!(report.snapshot_epoch, None);
    assert_eq!(report.records_replayed, 0);
    assert!(report.truncated.is_none());
    assert_eq!(store.epoch(), 1);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn appended_records_survive_reopen() {
    let dir = temp_dir("reopen");
    let ops = sample_ops();
    {
        let (mut store, _, _) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
        append_sealed(&mut store, &ops);
        // Dropped without any graceful shutdown: the crash case. Every
        // op passed a barrier, so nothing is lost.
    }
    let (store, state, report) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
    assert_eq!(state, reference_after(&ops));
    assert_eq!(report.records_replayed, ops.len() as u64);
    assert!(report.truncated.is_none());
    assert_eq!(
        state.prepared,
        Some((txn(2, 4), SiteId(2))),
        "in-doubt prepare record recovered"
    );
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rotation_compacts_and_recovery_uses_the_snapshot() {
    let dir = temp_dir("rotate");
    let ops = sample_ops();
    {
        let (mut store, _, _) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
        append_sealed(&mut store, &ops);
        let state = reference_after(&ops);
        store.rotate(&state).unwrap();
        assert_eq!(store.epoch(), 2);
        // Epoch-1 files are gone; only the new pair remains.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names.len(), 2, "{names:?}");
        assert!(names.iter().all(|n| n.ends_with(&format!("{:016}", 2))));
    }
    let (_store, state, report) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
    assert_eq!(state, reference_after(&ops));
    assert_eq!(report.snapshot_epoch, Some(2));
    assert_eq!(
        report.records_replayed, 0,
        "everything came off the snapshot"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The corruption matrix. Each case damages the live segment after a
/// clean append run, then asserts recovery truncates at the first
/// invalid record and reconstructs the exact valid prefix.
#[test]
fn corruption_matrix_truncate_bitflip_zerofill() {
    let ops = sample_ops();
    // Frame sizes (one op per record), to aim the damage precisely.
    let mut ends = Vec::new();
    let mut buf = Vec::new();
    for op in &ops {
        encode_record_into(&mut buf, std::slice::from_ref(op));
        ends.push(16 + buf.len() as u64); // offsets within the file
    }

    // Case 1: torn write — cut the file mid-way through record 5.
    {
        let dir = temp_dir("torn");
        {
            let (mut store, _, _) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
            append_sealed(&mut store, &ops);
        }
        let wal = live_wal(&dir);
        let cut = ends[4] + 3; // 3 bytes into record index 5
        OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let (_s, state, report) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
        assert_eq!(state, reference_after(&ops[..5]));
        let torn = report.truncated.expect("torn tail reported");
        assert_eq!(torn.offset, ends[4]);
        assert_eq!(report.records_replayed, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Case 2: bit flip inside record 2's checksummed body.
    {
        let dir = temp_dir("bitflip");
        {
            let (mut store, _, _) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
            append_sealed(&mut store, &ops);
        }
        let wal = live_wal(&dir);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&wal)
            .unwrap();
        let flip_at = ends[1] + 10; // inside record index 2's frame
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[flip_at as usize] ^= 0x04;
        file.seek(SeekFrom::Start(0)).unwrap();
        file.write_all(&bytes).unwrap();
        drop(file);
        let (_s, state, report) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
        assert_eq!(state, reference_after(&ops[..2]));
        let torn = report.truncated.expect("bit flip detected");
        assert_eq!(torn.offset, ends[1]);
        assert!(
            matches!(torn.reason, TornReason::BadCrc | TornReason::BadBody(_)),
            "{:?}",
            torn.reason
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Case 3: zero-filled tail after record 3 (blocks allocated, data
    // never written).
    {
        let dir = temp_dir("zerofill");
        {
            let (mut store, _, _) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
            append_sealed(&mut store, &ops);
        }
        let wal = live_wal(&dir);
        let mut bytes = std::fs::read(&wal).unwrap();
        for b in bytes.iter_mut().skip(ends[2] as usize) {
            *b = 0;
        }
        std::fs::write(&wal, &bytes).unwrap();
        let (_s, state, report) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
        assert_eq!(state, reference_after(&ops[..3]));
        let torn = report.truncated.expect("zero fill detected");
        assert_eq!(torn.offset, ends[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn corrupt_snapshot_falls_back_to_older_one() {
    let dir = temp_dir("snapfall");
    let ops = sample_ops();
    {
        let (mut store, _, _) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
        append_sealed(&mut store, &ops);
    }
    // Plant a garbage "newest" snapshot; recovery must skip it, use the
    // epoch-1 snapshot, and still replay the epoch-1 WAL.
    std::fs::write(dir.join(format!("snap-{:016}", 7)), b"not a snapshot").unwrap();
    let (_s, state, report) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
    assert_eq!(state, reference_after(&ops));
    assert_eq!(report.corrupt_snapshots, 1);
    assert_eq!(report.snapshot_epoch, Some(1));
    assert_eq!(report.records_replayed, ops.len() as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_loses_only_the_unsynced_tail() {
    let dir = temp_dir("group");
    let ops = sample_ops();
    let config = StoreConfig {
        fsync: FsyncPolicy::Interval(0),
        ..StoreConfig::default()
    };
    {
        let (mut store, _, _) = SiteStore::open(&dir, config, initial_state(3)).unwrap();
        for op in &ops[..5] {
            store.append(op).unwrap();
        }
        store.barrier().unwrap(); // group-commit point: first 5 sealed as one record
        for op in &ops[5..] {
            store.append(op).unwrap();
        }
        // Killed before the next barrier: the tail lives only in the
        // user-space buffer and must be gone.
    }
    let (_s, state, report) = SiteStore::open(&dir, config, initial_state(3)).unwrap();
    assert_eq!(state, reference_after(&ops[..5]));
    assert_eq!(report.records_replayed, 1, "the batch is one record");
    assert!(report.truncated.is_none(), "clean cut at the barrier");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The whole point of batch framing: ops of one step become durable
/// together, and a tail that never reached its barrier is never
/// recovered — even under `fsync: always`.
#[test]
fn a_step_seals_as_one_record_and_an_unbarriered_tail_is_lost() {
    let dir = temp_dir("step");
    let ops = sample_ops();
    {
        let (mut store, _, _) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
        for op in &ops[..5] {
            store.append(op).unwrap();
        }
        store.barrier().unwrap();
        for op in &ops[5..] {
            store.append(op).unwrap();
        }
        // No barrier: these ops belong to a step that never announced
        // anything, so losing them is the same as crashing earlier.
    }
    let (_s, state, report) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
    assert_eq!(state, reference_after(&ops[..5]));
    assert_eq!(report.records_replayed, 1);
    assert!(report.truncated.is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn inspect_is_read_only() {
    let dir = temp_dir("inspect");
    let ops = sample_ops();
    {
        let (mut store, _, _) = SiteStore::open(&dir, always(), initial_state(3)).unwrap();
        append_sealed(&mut store, &ops);
    }
    let before: Vec<_> = {
        let mut v: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        v.sort();
        v
    };
    let (state, report) = SiteStore::inspect(&dir, initial_state(3)).unwrap();
    assert_eq!(state, reference_after(&ops));
    assert_eq!(report.records_replayed, ops.len() as u64);
    let after: Vec<_> = {
        let mut v: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        v.sort();
        v
    };
    assert_eq!(before, after, "inspect changed the directory");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Installing the store as the actor's persistence hook and killing the
/// actor mid-protocol reproduces its durable state byte-for-byte.
#[test]
fn persistence_hooks_feed_the_wal() {
    use dynvote_core::AlgorithmKind;
    use dynvote_protocol::{Message, SiteActor};

    let dir = temp_dir("hooks");
    let n = 3;
    let (store, state, _) = SiteStore::open(&dir, always(), initial_state(n)).unwrap();
    let mut sub = SiteActor::restore(SiteId(1), n, AlgorithmKind::Hybrid.instantiate(n), state);
    sub.set_persistence(Box::new(store));
    let mut out = Vec::new();
    let t = txn(0, 1);
    sub.handle_message(SiteId(0), Message::VoteRequest { txn: t }, &mut out);
    sub.handle_message(
        SiteId(0),
        Message::Commit {
            txn: t,
            meta: meta_v(1),
            entries: vec![LogEntry {
                version: 1,
                payload: 321,
            }],
            participants: SiteSet::all(n),
        },
        &mut out,
    );
    // The node loop's durability barrier: fires before any of `out`
    // leaves the site. Only steps that passed it are recoverable.
    sub.sync_persistence();
    let live = sub.durable().clone();
    drop(sub); // SIGKILL stand-in

    let (_s, recovered, report) = SiteStore::open(&dir, always(), initial_state(n)).unwrap();
    assert_eq!(recovered, live);
    assert!(report.truncated.is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Explicit Persistence-trait barrier path (what the cluster's node
/// loop calls between batches).
#[test]
fn sync_hook_flushes_buffered_records() {
    let dir = temp_dir("synchook");
    let config = StoreConfig {
        fsync: FsyncPolicy::Interval(0),
        ..StoreConfig::default()
    };
    {
        let (mut store, _, _) = SiteStore::open(&dir, config, initial_state(3)).unwrap();
        Persistence::seq_advanced(&mut store, 9);
        Persistence::sync(&mut store);
    }
    let (_s, state, _) = SiteStore::open(&dir, config, initial_state(3)).unwrap();
    assert_eq!(state.next_seq, 9);
    std::fs::remove_dir_all(&dir).unwrap();
}
