//! Property test: random interleavings of append / barrier / rotate /
//! crash-and-reopen, plus crash-at-byte-N truncation, always recover to
//! the state an in-memory reference (built with the same `apply_op`)
//! predicts.

use dynvote_core::{CopyMeta, Distinguished, LinearOrder, SiteId, SiteSet};
use dynvote_protocol::persist::{apply_op, PersistOp};
use dynvote_protocol::{DurableState, LogEntry, TxnId};
use dynvote_storage::wal::{encode_op_into, frame_header};
use dynvote_storage::{FsyncPolicy, SiteStore, StoreConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const N: usize = 5;

fn temp_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dynvote-storage-prop-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn initial_state() -> DurableState {
    DurableState {
        meta: CopyMeta::initial(N, &LinearOrder::lexicographic(N)),
        log: Vec::new(),
        commits: HashMap::new(),
        prepared: None,
        next_seq: 0,
    }
}

/// Decode one fuzz tuple into a `PersistOp`. Values are arbitrary on
/// purpose: `apply_op` is the single definition of how a record mutates
/// state, so whatever its monotonicity guards accept or reject, the
/// reference and the recovery path agree by construction — the property
/// under test is byte-level round-trip fidelity, not op validity.
fn decode_cmd(kind: u64, a: u64, b: u64) -> PersistOp {
    let txn = TxnId::new(SiteId((a % N as u64) as u8), a >> 8);
    let meta = CopyMeta {
        version: a % 32,
        cardinality: (b % N as u64 + 1) as u32,
        distinguished: match b % 3 {
            0 => Distinguished::Single(SiteId((b % N as u64) as u8)),
            1 => Distinguished::Trio(SiteSet::all(3)),
            _ => Distinguished::Irrelevant,
        },
    };
    match kind % 6 {
        0 => PersistOp::Seq(a),
        1 => PersistOp::Prepared(txn, SiteId((b % N as u64) as u8)),
        2 => PersistOp::PrepareCleared(txn),
        3 => PersistOp::Entries(vec![LogEntry {
            version: a % 16,
            payload: b,
        }]),
        4 => PersistOp::Meta(meta),
        _ => PersistOp::Committed(txn, meta, SiteSet::all(N)),
    }
}

fn cmds(max: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleave appends with barriers, rotations, and full
    /// crash-reopen cycles; after every reopen the recovered state must
    /// equal the reference *as of the last seal* — ops past the last
    /// barrier belong to a step that never announced anything, and are
    /// honestly lost.
    #[test]
    fn interleaved_lifecycle_round_trips(raw in cmds(40), ctl in cmds(40)) {
        let dir = temp_dir();
        let config = StoreConfig {
            fsync: FsyncPolicy::Always,
            ..StoreConfig::default()
        };
        let (mut store, state, _) = SiteStore::open(&dir, config, initial_state()).unwrap();
        let mut reference = state;
        let mut sealed = reference.clone();
        for (i, &(kind, a, b)) in raw.iter().enumerate() {
            let op = decode_cmd(kind, a, b);
            store.append(&op).unwrap();
            apply_op(&mut reference, &op);
            // The control stream decides what happens between appends.
            match ctl[i % ctl.len()].0 % 8 {
                0 => {
                    store.barrier().unwrap();
                    sealed = reference.clone();
                }
                1 => {
                    // A checkpoint subsumes even the pending batch: the
                    // snapshot is the caller's full live state.
                    store.rotate(&reference).unwrap();
                    sealed = reference.clone();
                }
                2 => {
                    drop(store);
                    let (s, recovered, report) =
                        SiteStore::open(&dir, config, initial_state()).unwrap();
                    prop_assert_eq!(&recovered, &sealed, "reopen #{}: {:?}", i, report);
                    prop_assert!(report.truncated.is_none());
                    // The crash rolled the site back to its last seal;
                    // the reference must live on from there.
                    reference = recovered;
                    store = s;
                }
                _ => {}
            }
        }
        drop(store);
        let (_s, recovered, report) = SiteStore::open(&dir, config, initial_state()).unwrap();
        prop_assert_eq!(&recovered, &sealed, "final reopen: {:?}", report);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Crash at byte N: truncate the live segment at an arbitrary byte
    /// and reopen. Recovery must reconstruct exactly the state of the
    /// longest record-batch prefix that fits, and never panic.
    #[test]
    fn crash_at_any_byte_recovers_the_prefix(raw in cmds(24), cut_seed in any::<u64>()) {
        let dir = temp_dir();
        let config = StoreConfig {
            fsync: FsyncPolicy::Always,
            ..StoreConfig::default()
        };
        // Mirror the on-disk layout: ops buffer into a batch, and each
        // barrier seals the batch as one framed record. Checkpoints are
        // the barrier offsets within the file (16-byte header) plus the
        // reference state sealed there.
        let mut frame = Vec::new();
        let mut batch = Vec::new();
        let mut checkpoints = Vec::new(); // (file_end_offset, state)
        let (mut store, state, _) = SiteStore::open(&dir, config, initial_state()).unwrap();
        let mut reference = state;
        checkpoints.push((16u64, reference.clone()));
        for &(kind, a, b) in &raw {
            let op = decode_cmd(kind, a, b);
            store.append(&op).unwrap();
            apply_op(&mut reference, &op);
            encode_op_into(&mut batch, &op);
            // `b` doubles as the barrier control: ~3 in 4 ops end a step.
            if b % 4 != 0 {
                store.barrier().unwrap();
                frame.extend_from_slice(&frame_header(&batch));
                frame.extend_from_slice(&batch);
                batch.clear();
                checkpoints.push((16 + frame.len() as u64, reference.clone()));
            }
        }
        drop(store);

        let wal = dir.join(format!("wal-{:016}", 1));
        let total = 16 + frame.len() as u64;
        let cut = 16 + cut_seed % (total - 15); // anywhere in the record region
        OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let expected = checkpoints
            .iter()
            .rev()
            .find(|(end, _)| *end <= cut)
            .map(|(_, s)| s.clone())
            .unwrap();
        let expect_torn = checkpoints.iter().all(|(end, _)| *end != cut);

        let (_s, recovered, report) = SiteStore::open(&dir, config, initial_state()).unwrap();
        prop_assert_eq!(&recovered, &expected, "cut at {}: {:?}", cut, report);
        prop_assert_eq!(report.truncated.is_some(), expect_torn, "cut at {}", cut);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
