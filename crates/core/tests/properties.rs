//! Property-based tests of the decision kernel's safety invariants.
//!
//! The heart of Theorem 1 is *pessimism*: from any reachable system
//! state, no two disjoint partitions may both be judged distinguished.
//! These tests drive each algorithm through random reachable histories
//! and check that property (and several structural invariants) at every
//! step.

use dynvote_core::algorithms::{DynamicLinear, DynamicVoting, Hybrid};
use dynvote_core::quorum::VoteAssignment;
use dynvote_core::{
    AlgorithmKind, CopyMeta, LinearOrder, PartitionView, ReplicaControl, ReplicaSystem, SiteId,
    SiteSet,
};
use proptest::prelude::*;

/// Strategy: a site count in the paper's range.
fn site_count() -> impl Strategy<Value = usize> {
    2usize..=8
}

/// Strategy: a random history of partitions (as raw bitmasks; masked to
/// the site count at use).
fn history(len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 1..=len)
}

fn mask(bits: u64, n: usize) -> SiteSet {
    SiteSet::from_bits(bits & SiteSet::all(n).bits())
}

/// Drive a system through a history of update attempts; returns the
/// system in its final state.
fn evolve(kind: AlgorithmKind, n: usize, hist: &[u64]) -> ReplicaSystem<Box<dyn ReplicaControl>> {
    let mut sys = ReplicaSystem::new(n, kind.instantiate(n));
    for &bits in hist {
        let partition = mask(bits, n);
        if !partition.is_empty() {
            sys.attempt_update(partition);
        }
    }
    sys
}

/// Enumerate all non-empty subsets of `0..n`.
fn subsets(n: usize) -> impl Iterator<Item = SiteSet> {
    (1u64..(1u64 << n)).map(SiteSet::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pessimism: in any reachable state, accepted partitions pairwise
    /// intersect. (Two disjoint distinguished partitions would allow
    /// divergent updates — the catastrophe pessimistic algorithms exist
    /// to prevent.)
    #[test]
    fn no_two_disjoint_partitions_are_both_accepted(
        n in site_count(),
        hist in history(12),
        kind in proptest::sample::select(&AlgorithmKind::ALL[..]),
    ) {
        let sys = evolve(kind, n, &hist);
        let accepted: Vec<SiteSet> =
            subsets(n).filter(|&p| sys.can_update(p)).collect();
        for (i, &a) in accepted.iter().enumerate() {
            for &b in &accepted[i + 1..] {
                prop_assert!(
                    !a.is_disjoint(b),
                    "{kind}: disjoint partitions {a} and {b} both accepted\nstate:\n{}",
                    sys.state_table()
                );
            }
        }
    }

    /// Monotonicity: growing a distinguished partition never revokes it.
    /// (Every rule counts favourable members positively.)
    #[test]
    fn accepted_partitions_are_upward_closed(
        n in site_count(),
        hist in history(10),
        kind in proptest::sample::select(&AlgorithmKind::ALL[..]),
    ) {
        let sys = evolve(kind, n, &hist);
        for p in subsets(n) {
            if sys.can_update(p) {
                for q in subsets(n) {
                    if p.is_subset(q) {
                        prop_assert!(
                            sys.can_update(q),
                            "{kind}: {p} accepted but superset {q} rejected"
                        );
                    }
                }
            }
        }
    }

    /// Every committed update advances the version by exactly one and
    /// leaves all participants with identical metadata.
    #[test]
    fn commits_are_atomic_and_sequential(
        n in site_count(),
        hist in history(16),
        kind in proptest::sample::select(&AlgorithmKind::ALL[..]),
    ) {
        let mut sys = ReplicaSystem::new(n, kind.instantiate(n));
        let mut last_committed = 0u64;
        for &bits in &hist {
            let partition = mask(bits, n);
            if partition.is_empty() {
                continue;
            }
            let before = sys.latest_version();
            let out = sys.attempt_update(partition);
            if let Some(v) = out.committed_version {
                prop_assert_eq!(v, before + 1, "{}: version skipped", kind);
                prop_assert!(v > last_committed);
                last_committed = v;
                let metas: Vec<CopyMeta> =
                    partition.iter().map(|s| sys.meta(s)).collect();
                prop_assert!(
                    metas.windows(2).all(|w| w[0] == w[1]),
                    "{}: participants disagree after commit",
                    kind
                );
            } else {
                prop_assert_eq!(sys.latest_version(), before);
            }
        }
    }

    /// The full partition is always distinguished, whatever happened
    /// before (total recovery restores service).
    #[test]
    fn full_partition_is_always_distinguished(
        n in site_count(),
        hist in history(12),
        kind in proptest::sample::select(&AlgorithmKind::ALL[..]),
    ) {
        let mut sys = evolve(kind, n, &hist);
        prop_assert!(sys.attempt_update(SiteSet::all(n)).committed());
    }

    /// Pointwise dominance on identical views: dynamic-linear accepts
    /// whatever dynamic voting accepts, and the hybrid accepts whatever
    /// dynamic-linear accepts.
    #[test]
    fn pointwise_rule_dominance(
        n in site_count(),
        hist in history(10),
        probe in any::<u64>(),
    ) {
        // Build a reachable *hybrid* state (richest metadata: trios,
        // singles and irrelevant entries all occur), then compare the
        // three decision rules on the same views.
        let sys = evolve(AlgorithmKind::Hybrid, n, &hist);
        let order = LinearOrder::lexicographic(n);
        let partition = mask(probe, n);
        if !partition.is_empty() {
            let responses: Vec<(SiteId, CopyMeta)> =
                partition.iter().map(|s| (s, sys.meta(s))).collect();
            let view = PartitionView::new(n, &order, &responses).unwrap();
            if DynamicVoting::new().is_distinguished(&view) {
                prop_assert!(DynamicLinear::new().is_distinguished(&view));
            }
            if DynamicLinear::new().is_distinguished(&view) {
                prop_assert!(Hybrid::new().is_distinguished(&view));
            }
        }
    }

    /// The modified hybrid tracks the unmodified hybrid exactly over
    /// *model-reachable* histories: starting from the full network, one
    /// site fails or recovers at a time, and after every event an update
    /// is attempted in the up-set (the paper's "frequent updates"
    /// assumption). Both algorithms must render identical verdicts
    /// forever.
    #[test]
    fn modified_hybrid_matches_hybrid_on_model_histories(
        n in 3usize..=8,
        flips in proptest::collection::vec(0usize..8, 1..40),
    ) {
        let mut hybrid = ReplicaSystem::new(n, Hybrid::new());
        let mut modified =
            ReplicaSystem::new(n, dynvote_core::algorithms::ModifiedHybrid::new());
        let mut up = SiteSet::all(n);
        // Initial update so both systems leave the artificial initial
        // metadata.
        hybrid.attempt_update(up);
        modified.attempt_update(up);
        for &f in &flips {
            let site = SiteId::new(f % n);
            if up.contains(site) {
                if up.len() == 1 {
                    continue; // keep at least one site up
                }
                up.remove(site);
            } else {
                up.insert(site);
            }
            let h = hybrid.attempt_update(up);
            let m = modified.attempt_update(up);
            prop_assert_eq!(
                h.committed(),
                m.committed(),
                "divergence at up-set {}:\nhybrid:\n{}\nmodified:\n{}",
                up,
                hybrid.state_table(),
                modified.state_table()
            );
        }
    }

    /// Stale partitions never win: a partition containing no holder of
    /// the *globally* newest version is never judged distinguished (for
    /// the dynamic algorithms, whose quorums are version-anchored).
    ///
    /// This is the inductive heart of Theorem 1 — after an update from
    /// version M, "the conditions needed for a second update from
    /// version M cannot occur" — and it licenses the state-space
    /// abstraction used by `dynvote-markov` (stale metadata is
    /// behaviourally inert).
    #[test]
    fn stale_partitions_are_never_distinguished(
        n in site_count(),
        hist in history(14),
        kind in proptest::sample::select(
            &AlgorithmKind::ALL[1..] // all but static voting
        ),
    ) {
        let sys = evolve(kind, n, &hist);
        let latest = sys.latest_version();
        for p in subsets(n) {
            let holds_latest = p.iter().any(|s| sys.meta(s).version == latest);
            if !holds_latest {
                prop_assert!(
                    !sys.can_update(p),
                    "{kind}: stale partition {p} accepted\nstate:\n{}",
                    sys.state_table()
                );
            }
        }
    }

    /// Static voting coteries: for any random vote assignment, the
    /// derived coterie is an intersecting antichain and reproduces the
    /// majority predicate.
    #[test]
    fn coteries_are_sound(
        votes in proptest::collection::vec(0u64..5, 1..8),
    ) {
        prop_assume!(votes.iter().any(|&v| v > 0));
        let n = votes.len();
        let assignment = VoteAssignment::new(votes);
        let coterie = assignment.coterie();
        prop_assert!(coterie.intersecting());
        prop_assert!(coterie.is_antichain());
        for set in subsets(n) {
            prop_assert_eq!(coterie.is_quorum(set), assignment.is_majority(set));
        }
    }
}
