//! Serde round-trip tests for the public metadata types (used by the
//! CLI's JSON emission and available to downstream persistence layers).

use dynvote_core::{AlgorithmKind, CopyMeta, Distinguished, LinearOrder, SiteId, SiteSet, Verdict};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn site_types_round_trip() {
    let site = SiteId(4);
    assert_eq!(round_trip(&site), site);
    let set = SiteSet::parse("ACE").unwrap();
    assert_eq!(round_trip(&set), set);
    let order = LinearOrder::lexicographic(5);
    assert_eq!(round_trip(&order), order);
}

#[test]
fn metadata_round_trips_for_every_ds_variant() {
    for distinguished in [
        Distinguished::Irrelevant,
        Distinguished::Single(SiteId(2)),
        Distinguished::Trio(SiteSet::parse("ABC").unwrap()),
        Distinguished::Set(SiteSet::parse("CDE").unwrap()),
    ] {
        let meta = CopyMeta {
            version: 42,
            cardinality: 3,
            distinguished,
        };
        assert_eq!(round_trip(&meta), meta);
    }
}

#[test]
fn algorithm_kind_round_trips() {
    for kind in AlgorithmKind::ALL {
        assert_eq!(round_trip(&kind), kind);
    }
}

#[test]
fn verdicts_round_trip() {
    use dynvote_core::AcceptRule;
    for verdict in [
        Verdict::Rejected,
        Verdict::Accepted(AcceptRule::Majority),
        Verdict::Accepted(AcceptRule::TrioQuorum),
        Verdict::Accepted(AcceptRule::PairNetworkMajority),
    ] {
        assert_eq!(round_trip(&verdict), verdict);
    }
}

#[test]
fn serialized_form_is_stable_for_persistence() {
    // A spot check that the wire shape is what a downstream schema
    // would expect (field names, not positional).
    let meta = CopyMeta {
        version: 7,
        cardinality: 3,
        distinguished: Distinguished::Single(SiteId(1)),
    };
    let json = serde_json::to_value(meta).unwrap();
    assert_eq!(json["version"], 7);
    assert_eq!(json["cardinality"], 3);
    assert!(json["distinguished"].get("Single").is_some());
}
