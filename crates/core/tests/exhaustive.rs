//! Exhaustive model checking for small networks.
//!
//! The property tests sample random histories; here we enumerate *every*
//! reachable metadata state under *every* partition sequence up to a
//! depth bound, for n = 3 and n = 4, and check the safety invariants at
//! each state. Within the bound this is a proof, not a test: any
//! counterexample to pessimism reachable in `DEPTH` update rounds would
//! be found.
//!
//! States are deduplicated after rebasing version numbers against the
//! maximum (only relative currency matters to the algorithms), so the
//! search closes quickly despite the exponential set of histories.

use dynvote_core::{AlgorithmKind, CopyMeta, ReplicaControl, ReplicaSystem, SiteId, SiteSet};
use std::collections::HashSet;

const DEPTH: usize = 7;

type System = ReplicaSystem<Box<dyn ReplicaControl>>;

/// A hashable, rebased snapshot of the per-site metadata (key only).
fn canonical(metas: &[CopyMeta]) -> Vec<CopyMeta> {
    let max = metas.iter().map(|m| m.version).max().unwrap_or(0);
    metas
        .iter()
        .map(|m| CopyMeta {
            // Rebase so the newest version maps to a fixed value; cap
            // staleness depth at 8 (beyond DEPTH) so the key stays
            // finite.
            version: 8u64.saturating_sub((max - m.version).min(8)),
            ..*m
        })
        .collect()
}

/// Overwrite a system's metadata with a snapshot.
fn load(sys: &mut System, metas: &[CopyMeta]) {
    for (i, m) in metas.iter().enumerate() {
        sys.set_meta(SiteId::new(i), *m);
    }
}

/// All non-empty subsets of `0..n`.
fn partitions(n: usize) -> Vec<SiteSet> {
    (1u64..(1 << n)).map(SiteSet::from_bits).collect()
}

/// Check the per-state safety invariants.
fn check_state(kind: AlgorithmKind, sys: &System, n: usize) {
    let accepted: Vec<SiteSet> = partitions(n)
        .into_iter()
        .filter(|&p| sys.can_update(p))
        .collect();
    // Pessimism: accepted partitions pairwise intersect.
    for (i, &a) in accepted.iter().enumerate() {
        for &b in &accepted[i + 1..] {
            assert!(
                !a.is_disjoint(b),
                "{kind}: disjoint accepted partitions {a}, {b}\n{}",
                sys.state_table()
            );
        }
    }
    // Stale partitions never win (dynamic algorithms only).
    if kind != AlgorithmKind::Voting {
        let latest = sys.latest_version();
        for &p in &accepted {
            assert!(
                p.iter().any(|s| sys.meta(s).version == latest),
                "{kind}: stale partition {p} accepted\n{}",
                sys.state_table()
            );
        }
    }
    // Upward closure: the full partition extends any accepted one.
    if !accepted.is_empty() {
        assert!(
            sys.can_update(SiteSet::all(n)),
            "{kind}: full partition rejected while {} accepted",
            accepted[0]
        );
    }
}

/// Exhaustive BFS over all partition sequences up to DEPTH. Returns the
/// number of distinct states visited.
fn exhaust(kind: AlgorithmKind, n: usize) -> usize {
    let mut sys: System = ReplicaSystem::new(n, kind.instantiate(n));
    let root: Vec<CopyMeta> = sys.metas().to_vec();
    check_state(kind, &sys, n);

    let mut visited: HashSet<Vec<CopyMeta>> = HashSet::new();
    visited.insert(canonical(&root));
    let mut frontier = vec![root];
    let parts = partitions(n);

    for _ in 0..DEPTH {
        let mut next = Vec::new();
        for metas in &frontier {
            for &p in &parts {
                load(&mut sys, metas);
                if !sys.attempt_update(p).committed() {
                    continue; // rejected updates do not change state
                }
                let child: Vec<CopyMeta> = sys.metas().to_vec();
                if visited.insert(canonical(&child)) {
                    check_state(kind, &sys, n);
                    next.push(child);
                }
            }
        }
        if next.is_empty() {
            break; // state space closed before the depth bound
        }
        frontier = next;
    }
    visited.len()
}

#[test]
fn exhaustive_three_sites_all_algorithms() {
    for kind in AlgorithmKind::ALL {
        let states = exhaust(kind, 3);
        assert!(states >= 2, "{kind}: explored only {states} states");
    }
}

#[test]
fn exhaustive_four_sites_all_algorithms() {
    for kind in AlgorithmKind::ALL {
        let states = exhaust(kind, 4);
        assert!(states >= 2, "{kind}: explored only {states} states");
    }
}

/// Exhaustive check of the hybrid ≡ modified-hybrid accept-set
/// equivalence over *model* histories (one failure/repair at a time,
/// update attempted after each event), to a depth bound — Section VII's
/// equivalence claim checked against every event sequence rather than a
/// random sample.
#[test]
fn exhaustive_hybrid_equivalence_on_model_histories() {
    for n in 3..=5 {
        let mut hybrid: System = ReplicaSystem::new(n, AlgorithmKind::Hybrid.instantiate(n));
        let mut modified: System =
            ReplicaSystem::new(n, AlgorithmKind::ModifiedHybrid.instantiate(n));
        let up = SiteSet::all(n);
        hybrid.attempt_update(up);
        modified.attempt_update(up);

        type Joint = (SiteSet, Vec<CopyMeta>, Vec<CopyMeta>);
        let root: Joint = (up, hybrid.metas().to_vec(), modified.metas().to_vec());
        let mut visited: HashSet<Joint> = HashSet::new();
        visited.insert((root.0, canonical(&root.1), canonical(&root.2)));
        let mut frontier = vec![root];

        for _ in 0..8 {
            let mut next = Vec::new();
            for (up, h_metas, m_metas) in &frontier {
                for i in 0..n {
                    let site = SiteId::new(i);
                    let mut up2 = *up;
                    if up2.contains(site) {
                        up2.remove(site);
                    } else {
                        up2.insert(site);
                    }
                    load(&mut hybrid, h_metas);
                    load(&mut modified, m_metas);
                    let (hc, mc) = if up2.is_empty() {
                        (false, false)
                    } else {
                        (
                            hybrid.attempt_update(up2).committed(),
                            modified.attempt_update(up2).committed(),
                        )
                    };
                    assert_eq!(
                        hc,
                        mc,
                        "n={n}: divergence at up-set {up2}\nhybrid:\n{}\nmodified:\n{}",
                        hybrid.state_table(),
                        modified.state_table()
                    );
                    let child: Joint = (up2, hybrid.metas().to_vec(), modified.metas().to_vec());
                    let key = (up2, canonical(&child.1), canonical(&child.2));
                    if visited.insert(key) {
                        next.push(child);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        assert!(
            visited.len() > n,
            "n={n}: explored only {} joint states",
            visited.len()
        );
    }
}
