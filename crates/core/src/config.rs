//! Typed configuration validation shared by every harness.
//!
//! The simulator ([`SimConfig`](https://docs.rs/dynvote-sim)), the
//! multi-file simulator, the live cluster and its load generator all
//! accept numeric knobs from untrusted sources (CLI flags, hand-edited
//! JSON). They reject absurd values with the same typed error, so a
//! caller can match on *what* was wrong rather than parse a message.

use crate::site::MAX_SITES;

/// A rejected configuration field.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `n` outside the supported `2..=MAX_SITES` range.
    SiteCount {
        /// The offending site count.
        n: usize,
    },
    /// A duration/timeout field that must be strictly positive was not.
    NotPositive {
        /// The field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A probability field outside `[0, 1]` (or non-finite).
    NotProbability {
        /// The field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A non-negative field (jitter magnitudes) was negative or
    /// non-finite.
    Negative {
        /// The field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `max_backoff` below `initial_backoff`.
    BackoffRange {
        /// Configured initial backoff.
        initial: f64,
        /// Configured maximum backoff.
        max: f64,
    },
    /// A multi-file configuration with an empty file list.
    NoFiles,
    /// A field that only makes sense alongside another was given alone
    /// (e.g. a durability fsync policy without a data directory).
    Requires {
        /// The field that was set.
        field: &'static str,
        /// The field it depends on.
        requires: &'static str,
    },
    /// An integer field outside its supported range (e.g. the cluster
    /// load generator's concurrency).
    OutOfRange {
        /// The field name.
        field: &'static str,
        /// The offending value.
        value: u64,
        /// Smallest accepted value.
        lo: u64,
        /// Largest accepted value.
        hi: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::SiteCount { n } => {
                write!(f, "n = {n} is outside the supported range 2..={MAX_SITES}")
            }
            ConfigError::NotPositive { field, value } => {
                write!(f, "{field} = {value} must be strictly positive")
            }
            ConfigError::NotProbability { field, value } => {
                write!(f, "{field} = {value} is not a probability in [0, 1]")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} = {value} must be finite and non-negative")
            }
            ConfigError::BackoffRange { initial, max } => {
                write!(
                    f,
                    "max_backoff = {max} is below initial_backoff = {initial}"
                )
            }
            ConfigError::NoFiles => write!(f, "the file list must not be empty"),
            ConfigError::Requires { field, requires } => {
                write!(f, "{field} requires {requires} to be set")
            }
            ConfigError::OutOfRange {
                field,
                value,
                lo,
                hi,
            } => {
                write!(
                    f,
                    "{field} = {value} is outside the supported range {lo}..={hi}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Require a strictly positive, finite value (durations, rates).
pub fn check_positive(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::NotPositive { field, value })
    }
}

/// Require a finite probability in `[0, 1]`.
pub fn check_probability(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(ConfigError::NotProbability { field, value })
    }
}

/// Require a finite, non-negative value (jitter magnitudes).
pub fn check_non_negative(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(ConfigError::Negative { field, value })
    }
}

/// Require a site count in the supported `2..=MAX_SITES` range.
pub fn check_site_count(n: usize) -> Result<(), ConfigError> {
    if (2..=MAX_SITES).contains(&n) {
        Ok(())
    } else {
        Err(ConfigError::SiteCount { n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_accept_sane_values() {
        assert_eq!(check_positive("latency", 0.01), Ok(()));
        assert_eq!(check_probability("drop", 0.0), Ok(()));
        assert_eq!(check_probability("drop", 1.0), Ok(()));
        assert_eq!(check_non_negative("jitter", 0.0), Ok(()));
        assert_eq!(check_site_count(2), Ok(()));
        assert_eq!(check_site_count(MAX_SITES), Ok(()));
    }

    #[test]
    fn helpers_reject_absurd_values_with_typed_errors() {
        assert_eq!(
            check_positive("latency", 0.0),
            Err(ConfigError::NotPositive {
                field: "latency",
                value: 0.0
            })
        );
        assert!(check_positive("latency", f64::NAN).is_err());
        assert_eq!(
            check_probability("drop", 1.5),
            Err(ConfigError::NotProbability {
                field: "drop",
                value: 1.5
            })
        );
        assert_eq!(
            check_non_negative("jitter", -0.1),
            Err(ConfigError::Negative {
                field: "jitter",
                value: -0.1
            })
        );
        assert_eq!(check_site_count(1), Err(ConfigError::SiteCount { n: 1 }));
        assert_eq!(
            check_site_count(MAX_SITES + 1),
            Err(ConfigError::SiteCount { n: MAX_SITES + 1 })
        );
    }

    #[test]
    fn display_messages_name_the_field_and_the_bound() {
        let e = ConfigError::OutOfRange {
            field: "concurrency",
            value: 0,
            lo: 1,
            hi: 1024,
        };
        assert_eq!(
            e.to_string(),
            "concurrency = 0 is outside the supported range 1..=1024"
        );
        assert_eq!(
            ConfigError::BackoffRange {
                initial: 2.0,
                max: 1.0
            }
            .to_string(),
            "max_backoff = 1 is below initial_backoff = 2"
        );
    }
}
