//! A generic timer wheel shared by every event loop.
//!
//! Both harnesses of the protocol kernel need the same structure: a
//! binary heap of pending deadlines, ordered by `(deadline, arming
//! order)` so that ties fire in the order they were armed, with *epoch
//! invalidation* — crashing a site must cancel every timer guarding
//! volatile transactions that no longer exist, without walking the
//! heap. The simulator instantiates it over virtual time
//! ([`VirtualInstant`], a totally ordered `f64`), the live cluster over
//! [`std::time::Instant`]; jittered delays come from
//! [`BackoffPolicy`](crate::BackoffPolicy) scaling the delay *before*
//! it is scheduled, so the wheel itself stays deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time for discrete-event simulation: a totally ordered
/// wrapper over `f64` seconds (NaN-free by construction — deadlines are
/// `clock + delay` with finite, validated delays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualInstant(pub f64);

impl Eq for VirtualInstant {}

impl PartialOrd for VirtualInstant {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VirtualInstant {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One armed timer: a deadline, the arming order (tie-break), the epoch
/// it was armed in, and the caller's payload.
#[derive(Debug, Clone)]
struct Entry<T, P> {
    when: T,
    seq: u64,
    epoch: u64,
    payload: P,
}

impl<T: Ord, P> PartialEq for Entry<T, P> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<T: Ord, P> Eq for Entry<T, P> {}

impl<T: Ord, P> PartialOrd for Entry<T, P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord, P> Ord for Entry<T, P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.when
            .cmp(&other.when)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A binary-heap timer wheel ordered by `(deadline, arming order)` with
/// epoch invalidation.
///
/// [`bump_epoch`](TimerWheel::bump_epoch) invalidates every currently
/// armed timer in O(1); stale entries are discarded lazily as the heap
/// is inspected, so a crash never pays for the timers it cancels.
#[derive(Debug)]
pub struct TimerWheel<T, P> {
    heap: BinaryHeap<Reverse<Entry<T, P>>>,
    seq: u64,
    epoch: u64,
}

impl<T: Ord, P> Default for TimerWheel<T, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord, P> TimerWheel<T, P> {
    /// An empty wheel at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            seq: 0,
            epoch: 0,
        }
    }

    /// Arm a timer for `when`. Equal deadlines fire in arming order.
    pub fn schedule(&mut self, when: T, payload: P) {
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            when,
            seq: self.seq,
            epoch: self.epoch,
            payload,
        }));
    }

    /// Invalidate every currently armed timer (a crash boundary). New
    /// timers armed afterwards belong to the new epoch and fire
    /// normally.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Drop every entry, live or stale, without changing the epoch.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Discard stale-epoch entries sitting at the top of the heap.
    fn skim(&mut self) {
        while matches!(self.heap.peek(), Some(Reverse(e)) if e.epoch != self.epoch) {
            self.heap.pop();
        }
    }

    /// The earliest live deadline, if any.
    pub fn next_deadline(&mut self) -> Option<&T> {
        self.skim();
        self.heap.peek().map(|Reverse(e)| &e.when)
    }

    /// Pop the earliest live timer regardless of the clock (the
    /// discrete-event loop: the pop *advances* time).
    pub fn pop_next(&mut self) -> Option<(T, P)> {
        self.skim();
        self.heap.pop().map(|Reverse(e)| (e.when, e.payload))
    }

    /// Pop the earliest live timer whose deadline is at or before
    /// `now`, or `None` if nothing is due yet (the wall-clock loop).
    pub fn pop_due(&mut self, now: &T) -> Option<(T, P)> {
        self.skim();
        if matches!(self.heap.peek(), Some(Reverse(e)) if e.when <= *now) {
            self.heap.pop().map(|Reverse(e)| (e.when, e.payload))
        } else {
            None
        }
    }

    /// Number of entries in the heap (stale entries included until they
    /// are lazily discarded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn entries_order_by_deadline_then_arming_order() {
        // Relocated from the cluster node runtime: two timers at the
        // same deadline fire in arming order; an earlier deadline armed
        // later still fires first.
        let mut wheel: TimerWheel<Instant, u32> = TimerWheel::new();
        let base = Instant::now();
        wheel.schedule(base + Duration::from_millis(10), 1);
        wheel.schedule(base + Duration::from_millis(5), 2);
        wheel.schedule(base + Duration::from_millis(5), 3);
        let order: Vec<u32> = std::iter::from_fn(|| wheel.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn virtual_instants_total_order_and_tie_break() {
        let mut wheel: TimerWheel<VirtualInstant, &str> = TimerWheel::new();
        wheel.schedule(VirtualInstant(2.0), "late");
        wheel.schedule(VirtualInstant(1.0), "early");
        wheel.schedule(VirtualInstant(1.0), "early-second");
        assert_eq!(wheel.next_deadline(), Some(&VirtualInstant(1.0)));
        assert_eq!(wheel.pop_next(), Some((VirtualInstant(1.0), "early")));
        assert_eq!(
            wheel.pop_next(),
            Some((VirtualInstant(1.0), "early-second"))
        );
        assert_eq!(wheel.pop_next(), Some((VirtualInstant(2.0), "late")));
        assert_eq!(wheel.pop_next(), None);
    }

    #[test]
    fn bump_epoch_cancels_armed_timers_lazily() {
        let mut wheel: TimerWheel<VirtualInstant, u32> = TimerWheel::new();
        wheel.schedule(VirtualInstant(1.0), 1);
        wheel.schedule(VirtualInstant(2.0), 2);
        wheel.bump_epoch();
        wheel.schedule(VirtualInstant(3.0), 3);
        // The stale entries are still physically present...
        assert_eq!(wheel.len(), 3);
        // ...but invisible to every accessor.
        assert_eq!(wheel.next_deadline(), Some(&VirtualInstant(3.0)));
        assert_eq!(wheel.pop_next(), Some((VirtualInstant(3.0), 3)));
        assert!(wheel.is_empty());
    }

    #[test]
    fn pop_due_respects_the_clock() {
        let mut wheel: TimerWheel<VirtualInstant, u32> = TimerWheel::new();
        wheel.schedule(VirtualInstant(5.0), 1);
        wheel.schedule(VirtualInstant(10.0), 2);
        assert_eq!(wheel.pop_due(&VirtualInstant(4.9)), None);
        assert_eq!(
            wheel.pop_due(&VirtualInstant(5.0)),
            Some((VirtualInstant(5.0), 1))
        );
        assert_eq!(wheel.pop_due(&VirtualInstant(5.0)), None);
        assert_eq!(
            wheel.pop_due(&VirtualInstant(100.0)),
            Some((VirtualInstant(10.0), 2))
        );
    }
}
