//! Per-copy replica metadata: the `(VN, SC, DS)` triple of Section V-A.
//!
//! Every copy `f_i` of the replicated file carries three variables:
//!
//! * **version number** `VN_i` — counts successful updates (Definition 1);
//! * **update sites cardinality** `SC_i` — (almost always) the number of
//!   sites that participated in the most recent update (Definition 2);
//! * **distinguished sites list** `DS_i` — meaningful when `SC_i` is even
//!   (a single tie-breaking site) or, under the hybrid algorithm, when
//!   `SC_i = 3` (the static trio) (Definition 3).

use crate::site::{SiteId, SiteSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The distinguished-sites entry `DS_i` attached to a copy.
///
/// Different algorithms populate this differently; the variants make the
/// intent explicit and let each decision rule state exactly what it needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Distinguished {
    /// The entry is irrelevant for the current cardinality (e.g. odd `SC`
    /// under dynamic-linear). Decision rules must not read it.
    Irrelevant,
    /// A single tie-breaking site (dynamic-linear; hybrid with even `SC`;
    /// modified hybrid with `SC = 2`).
    Single(SiteId),
    /// The hybrid algorithm's static trio: the three sites from which a
    /// majority (two) is required to form a distinguished partition.
    Trio(SiteSet),
    /// A general site set (the Section VII "optimal candidate" sets `DS`
    /// to the complement of the two updating sites).
    Set(SiteSet),
}

impl Distinguished {
    /// The sites named by the entry (empty for [`Distinguished::Irrelevant`]).
    #[must_use]
    pub fn sites(self) -> SiteSet {
        match self {
            Distinguished::Irrelevant => SiteSet::EMPTY,
            Distinguished::Single(s) => SiteSet::singleton(s),
            Distinguished::Trio(set) | Distinguished::Set(set) => set,
        }
    }

    /// The single site, if this is a [`Distinguished::Single`] entry.
    #[must_use]
    pub fn single(self) -> Option<SiteId> {
        match self {
            Distinguished::Single(s) => Some(s),
            _ => None,
        }
    }

    /// The trio, if this is a [`Distinguished::Trio`] entry.
    #[must_use]
    pub fn trio(self) -> Option<SiteSet> {
        match self {
            Distinguished::Trio(set) => Some(set),
            _ => None,
        }
    }
}

impl fmt::Display for Distinguished {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distinguished::Irrelevant => write!(f, "—"),
            Distinguished::Single(s) => write!(f, "{s}"),
            Distinguished::Trio(set) => write!(f, "{set}"),
            Distinguished::Set(set) => write!(f, "{{{set}}}"),
        }
    }
}

/// The `(VN, SC, DS)` metadata triple carried by one copy of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CopyMeta {
    /// Version number `VN_i`: number of successful updates to this copy.
    pub version: u64,
    /// Update sites cardinality `SC_i`.
    pub cardinality: u32,
    /// Distinguished sites entry/list `DS_i`.
    pub distinguished: Distinguished,
}

impl CopyMeta {
    /// The initial metadata of Definition 1/2: `VN = 0`, `SC = n`, `DS`
    /// chosen for a full-network update (the greatest site if `n` is even,
    /// the trio if `n = 3`, irrelevant otherwise).
    ///
    /// The `DS` initialisation mirrors what a first full-partition update
    /// would install, so a fresh system behaves as if update 0 had been
    /// performed by all `n` sites.
    #[must_use]
    pub fn initial(n: usize, order: &crate::site::LinearOrder) -> Self {
        let all = SiteSet::all(n);
        let distinguished = if n == 3 {
            Distinguished::Trio(all)
        } else if n % 2 == 0 {
            Distinguished::Single(order.max_of(all).expect("n > 0"))
        } else {
            Distinguished::Irrelevant
        };
        CopyMeta {
            version: 0,
            cardinality: n as u32,
            distinguished,
        }
    }
}

impl fmt::Display for CopyMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VN={} SC={} DS={}",
            self.version, self.cardinality, self.distinguished
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::LinearOrder;

    #[test]
    fn initial_meta_for_odd_n() {
        let order = LinearOrder::lexicographic(5);
        let meta = CopyMeta::initial(5, &order);
        assert_eq!(meta.version, 0);
        assert_eq!(meta.cardinality, 5);
        assert_eq!(meta.distinguished, Distinguished::Irrelevant);
    }

    #[test]
    fn initial_meta_for_even_n_names_greatest_site() {
        let order = LinearOrder::lexicographic(4);
        let meta = CopyMeta::initial(4, &order);
        // Lexicographic convention: A is greatest.
        assert_eq!(meta.distinguished, Distinguished::Single(SiteId(0)));
    }

    #[test]
    fn initial_meta_for_three_sites_is_a_trio() {
        let order = LinearOrder::lexicographic(3);
        let meta = CopyMeta::initial(3, &order);
        assert_eq!(meta.distinguished, Distinguished::Trio(SiteSet::all(3)));
    }

    #[test]
    fn distinguished_accessors() {
        let trio = SiteSet::parse("ABC").unwrap();
        assert_eq!(Distinguished::Trio(trio).trio(), Some(trio));
        assert_eq!(Distinguished::Trio(trio).single(), None);
        assert_eq!(Distinguished::Single(SiteId(1)).single(), Some(SiteId(1)));
        assert_eq!(Distinguished::Irrelevant.sites(), SiteSet::EMPTY);
        assert_eq!(Distinguished::Set(trio).sites(), trio);
    }

    #[test]
    fn display_formats() {
        let order = LinearOrder::lexicographic(3);
        let meta = CopyMeta::initial(3, &order);
        assert_eq!(meta.to_string(), "VN=0 SC=3 DS=ABC");
        assert_eq!(Distinguished::Irrelevant.to_string(), "—");
    }
}
