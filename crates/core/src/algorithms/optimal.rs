//! The "optimal candidate" — Section VII, footnote 6.
//!
//! The paper closes with preliminary evidence that the hybrid is itself
//! bested by one more member of the family: proceed exactly as the
//! modified hybrid, except that when exactly two sites perform an update
//! the distinguished entry is set to **the set of all sites except the
//! two updaters**, a majority of which is then required to break the tie.
//!
//! Footnote 6 gives the equivalent implementation that needs no stored
//! list: with `SC = 2`, a partition is distinguished if it contains both
//! version-`M` sites, **or** one of them plus *more than half of all `n`
//! sites*. (One current site plus a majority of the `n − 2` non-updaters
//! is exactly one current site plus more than `n/2` members.)
//!
//! Intuition for the trade: where the hybrid gambles on one specific
//! trio member returning, the candidate lets *any* network majority
//! alongside a surviving current copy re-form the quorum. Pessimism is
//! preserved (two "one-current + majority" partitions intersect because
//! two majorities of `n` do; "both current" intersects either through a
//! current copy). Our Markov analysis shows the conjectured dominance
//! is **parity- and ratio-dependent**: the candidate beats the hybrid
//! for odd `n` above a crossover ratio, and loses for even `n` at every
//! ratio we tested — see `EXPERIMENTS.md` for the full study.

use crate::algorithm::{AcceptRule, ReplicaControl, Verdict};
use crate::algorithms::linear::{dynamic_linear_commit, majority_or_tiebreak};
use crate::meta::{CopyMeta, Distinguished};
use crate::site::SiteSet;
use crate::view::PartitionView;

/// The Section VII footnote-6 candidate for the optimal algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimalCandidate;

impl OptimalCandidate {
    /// Create the algorithm (stateless).
    #[must_use]
    pub fn new() -> Self {
        OptimalCandidate
    }
}

impl ReplicaControl for OptimalCandidate {
    fn name(&self) -> &'static str {
        "optimal-candidate"
    }

    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        if view.cardinality() != 2 {
            return majority_or_tiebreak(view);
        }
        match view.current_count() {
            2.. => Verdict::Accepted(AcceptRule::PairBothCurrent),
            1 if 2 * view.member_count() > view.n() => {
                Verdict::Accepted(AcceptRule::PairNetworkMajority)
            }
            _ => Verdict::Rejected,
        }
    }

    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        debug_assert!(self.decide(view).is_accepted());
        let members = view.members();
        if members.len() == 2 {
            // The stored set is redundant with footnote 6's n-based rule,
            // but keeping it makes the metadata self-describing.
            CopyMeta {
                version: view.max_version() + 1,
                cardinality: 2,
                distinguished: Distinguished::Set(SiteSet::all(view.n()).difference(members)),
            }
        } else {
            dynamic_linear_commit(view)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{LinearOrder, SiteId};

    fn view<'a>(
        order: &'a LinearOrder,
        n: usize,
        entries: &[(u8, u64, u32, Distinguished)],
    ) -> PartitionView<'a> {
        let responses: Vec<_> = entries
            .iter()
            .map(|&(s, version, cardinality, distinguished)| {
                (
                    SiteId(s),
                    CopyMeta {
                        version,
                        cardinality,
                        distinguished,
                    },
                )
            })
            .collect();
        // Leaked so the returned view can borrow it (test-only helper).
        PartitionView::new(n, order, Box::leak(responses.into_boxed_slice())).unwrap()
    }

    const IRR: Distinguished = Distinguished::Irrelevant;

    #[test]
    fn pair_both_current_accepted() {
        let order = LinearOrder::lexicographic(5);
        let ds = Distinguished::Set(SiteSet::parse("CDE").unwrap());
        let v = view(&order, 5, &[(0, 12, 2, ds), (1, 12, 2, ds)]);
        assert_eq!(
            OptimalCandidate.decide(&v),
            Verdict::Accepted(AcceptRule::PairBothCurrent)
        );
    }

    #[test]
    fn one_current_plus_network_majority_accepted() {
        let order = LinearOrder::lexicographic(5);
        let ds = Distinguished::Set(SiteSet::parse("CDE").unwrap());
        // A current plus C and D: 3 of 5 members, majority of the network.
        let v = view(&order, 5, &[(0, 12, 2, ds), (2, 9, 5, IRR), (3, 9, 5, IRR)]);
        assert_eq!(
            OptimalCandidate.decide(&v),
            Verdict::Accepted(AcceptRule::PairNetworkMajority)
        );
    }

    #[test]
    fn one_current_below_network_majority_rejected() {
        let order = LinearOrder::lexicographic(5);
        let ds = Distinguished::Set(SiteSet::parse("CDE").unwrap());
        // A current plus C: only 2 of 5 members.
        let v = view(&order, 5, &[(0, 12, 2, ds), (2, 9, 5, IRR)]);
        assert_eq!(OptimalCandidate.decide(&v), Verdict::Rejected);
        // Here the *modified hybrid* (with DS=C) would have accepted:
        // the candidate trades this narrow path for the broader one.
    }

    #[test]
    fn no_current_copy_is_always_rejected() {
        let order = LinearOrder::lexicographic(5);
        // Stale sites only, even as a network majority: max version in P
        // is a stale version whose own metadata governs. Build the
        // adversarial case: three stale sites whose common version has
        // SC=2 — they look like "current" to themselves but hold neither
        // version-M site of the real pair. With card(I)=3 >= 2 they'd
        // accept as PairBothCurrent... which is correct *relative to
        // version M in P*: this is exactly the situation the pessimism
        // proof forbids from arising (after the pair committed M+1, at
        // most zero... ), so construct instead the reachable case:
        // one version-M holder absent, I={C} stale-relative view.
        let ds = Distinguished::Set(SiteSet::parse("ABE").unwrap());
        let v = view(&order, 5, &[(2, 12, 2, ds), (3, 11, 4, IRR)]);
        // I = {C}, |P| = 2, not > n/2: rejected.
        assert_eq!(OptimalCandidate.decide(&v), Verdict::Rejected);
    }

    #[test]
    fn pair_commit_stores_the_complement() {
        let order = LinearOrder::lexicographic(5);
        let entries: Vec<_> = [(1u8, 12u64, 4u32), (4, 12, 4)]
            .iter()
            .map(|&(s, v, c)| (s, v, c, Distinguished::Single(SiteId(1))))
            .collect();
        let v = view(&order, 5, &entries);
        assert!(OptimalCandidate.is_distinguished(&v)); // tie-break, DS=B in I
        let meta = OptimalCandidate.commit_meta(&v);
        assert_eq!(meta.cardinality, 2);
        assert_eq!(
            meta.distinguished,
            Distinguished::Set(SiteSet::parse("ACD").unwrap())
        );
    }

    #[test]
    fn dynamic_phase_matches_dynamic_linear() {
        let order = LinearOrder::lexicographic(5);
        let v = view(&order, 5, &[(0, 9, 5, IRR), (1, 9, 5, IRR), (2, 9, 5, IRR)]);
        assert_eq!(
            OptimalCandidate.decide(&v),
            Verdict::Accepted(AcceptRule::Majority)
        );
        let meta = OptimalCandidate.commit_meta(&v);
        assert_eq!(meta.cardinality, 3);
        assert_eq!(meta.distinguished, IRR);
    }

    #[test]
    fn quorum_never_shrinks_below_two() {
        // Unlike dynamic-linear, a lone site can never update: with SC=2
        // the best a single current site can do is recruit a network
        // majority, which commits with card(P) >= 3.
        let order = LinearOrder::lexicographic(5);
        let ds = Distinguished::Set(SiteSet::parse("CDE").unwrap());
        let v = view(&order, 5, &[(0, 12, 2, ds)]);
        assert_eq!(OptimalCandidate.decide(&v), Verdict::Rejected);
    }
}
