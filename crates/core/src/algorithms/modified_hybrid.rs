//! The modified hybrid algorithm — Section VII, Changes 1 and 2.
//!
//! The paper observes that the hybrid's trio list can be avoided: keep
//! dynamic-linear's data structures (a *single* distinguished site) and
//! apply two changes.
//!
//! * **Change 1.** When exactly two sites perform an update, set
//!   `SC = 2` and set `DS` to name a site that is *down* — "say, the site
//!   that most recently failed". (The original hybrid leaves `SC`/`DS`
//!   unchanged here.)
//! * **Change 2.** With `SC ≥ 3` use dynamic-linear's rule. With
//!   `SC = 2`, the partition is distinguished iff it contains both
//!   version-`M` sites, or exactly one of them **plus the site named by
//!   `DS`** (which need only be in `P`, not current).
//!
//! ## On the paper's equivalence claim
//!
//! The paper asserts the modified algorithm "permits exactly the same
//! updates as the unmodified hybrid". Our analysis (verified by tests)
//! sharpens this:
//!
//! * **Exact accept-set equivalence** holds when the down site chosen at
//!   each two-site commit is the *absent holder of the updated version's
//!   predecessor* — i.e. the third member of the hybrid's conceptual
//!   trio. The literal heuristic "most recently failed" coincides with
//!   that site in the canonical failure sequence but can diverge when
//!   unrelated sites fail and recover in between (demonstrated in
//!   `tests/`), after which the two algorithms accept different
//!   partitions.
//! * **Stochastic equivalence** (identical availability) holds for *any*
//!   down-site choice: under the homogeneous memoryless model every down
//!   site is exchangeable — the same argument the paper's Theorem 2 uses
//!   for its oracle algorithm X.
//!
//! The commit therefore chooses the replacement distinguished site by
//! preference: (1) the unique absent member of the previous
//! pair-plus-guard trio, derivable locally from `I ∪ {old DS}` when the
//! update is performed by both current sites; (2) the protocol-supplied
//! [`PartitionView::guard_hint`] (the absent version-`M` holder, or the
//! most recently failed site — whichever the deployment tracks); (3) the
//! greatest non-participant in the file's linear order.

use crate::algorithm::{current_single_ds, AcceptRule, ReplicaControl, Verdict};
use crate::algorithms::linear::{dynamic_linear_commit, majority_or_tiebreak};
use crate::meta::{CopyMeta, Distinguished};
use crate::site::SiteSet;
use crate::view::PartitionView;

/// The Section VII modified hybrid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModifiedHybrid;

impl ModifiedHybrid {
    /// Create the algorithm (stateless).
    #[must_use]
    pub fn new() -> Self {
        ModifiedHybrid
    }
}

/// Decide a view whose recorded cardinality is 2 (Change 2, case 2).
pub(crate) fn decide_pair(view: &PartitionView<'_>) -> Verdict {
    match view.current_count() {
        2.. => Verdict::Accepted(AcceptRule::PairBothCurrent),
        1 => match current_single_ds(view) {
            Some(ds) if view.members().contains(ds) => Verdict::Accepted(AcceptRule::PairTieBreak),
            _ => Verdict::Rejected,
        },
        _ => Verdict::Rejected,
    }
}

/// Change 1's commit for a two-site update: `SC = 2` and `DS` names an
/// absent site (see the module docs for the choice order).
fn pair_commit(view: &PartitionView<'_>) -> CopyMeta {
    let members = view.members();
    debug_assert_eq!(members.len(), 2);
    // (1) The previous guard trio is I plus (when SC was 2) the old DS;
    // when both current sites perform the update its absent member is
    // derivable locally.
    let mut guard = view.current_sites();
    if view.cardinality() == 2 {
        if let Some(ds) = current_single_ds(view) {
            guard.insert(ds);
        }
    }
    let replacement = view
        .order()
        .max_of(guard.difference(members))
        // (2) the protocol layer's nomination;
        .or(view.guard_hint())
        // (3) any absent site (greatest in the order).
        .or_else(|| {
            view.order()
                .max_of(SiteSet::all(view.n()).difference(members))
        });
    let distinguished = match replacement {
        Some(site) => Distinguished::Single(site),
        // n = 2: no third site exists to guard the pair.
        None => Distinguished::Irrelevant,
    };
    CopyMeta {
        version: view.max_version() + 1,
        cardinality: 2,
        distinguished,
    }
}

impl ReplicaControl for ModifiedHybrid {
    fn name(&self) -> &'static str {
        "modified-hybrid"
    }

    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        if view.cardinality() == 2 {
            decide_pair(view)
        } else {
            majority_or_tiebreak(view)
        }
    }

    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        debug_assert!(self.decide(view).is_accepted());
        if view.member_count() == 2 {
            pair_commit(view)
        } else {
            dynamic_linear_commit(view)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{LinearOrder, SiteId};

    fn view<'a>(
        order: &'a LinearOrder,
        n: usize,
        entries: &[(u8, u64, u32, Distinguished)],
    ) -> PartitionView<'a> {
        let responses: Vec<_> = entries
            .iter()
            .map(|&(s, version, cardinality, distinguished)| {
                (
                    SiteId(s),
                    CopyMeta {
                        version,
                        cardinality,
                        distinguished,
                    },
                )
            })
            .collect();
        // Leaked so the returned view can borrow it (test-only helper).
        PartitionView::new(n, order, Box::leak(responses.into_boxed_slice())).unwrap()
    }

    fn single(s: u8) -> Distinguished {
        Distinguished::Single(SiteId(s))
    }

    #[test]
    fn pair_rule_accepts_both_current() {
        let order = LinearOrder::lexicographic(5);
        let v = view(&order, 5, &[(0, 12, 2, single(2)), (1, 12, 2, single(2))]);
        assert_eq!(
            ModifiedHybrid.decide(&v),
            Verdict::Accepted(AcceptRule::PairBothCurrent)
        );
    }

    #[test]
    fn pair_rule_accepts_one_current_plus_named_site() {
        let order = LinearOrder::lexicographic(5);
        // A current (SC=2, DS=C); C reachable but stale: accepted.
        let v = view(
            &order,
            5,
            &[(0, 12, 2, single(2)), (2, 10, 3, Distinguished::Irrelevant)],
        );
        assert_eq!(
            ModifiedHybrid.decide(&v),
            Verdict::Accepted(AcceptRule::PairTieBreak)
        );
    }

    #[test]
    fn pair_rule_rejects_one_current_without_named_site() {
        let order = LinearOrder::lexicographic(5);
        // A current (SC=2, DS=C); only D reachable: blocked.
        let v = view(
            &order,
            5,
            &[(0, 12, 2, single(2)), (3, 10, 3, Distinguished::Irrelevant)],
        );
        assert_eq!(ModifiedHybrid.decide(&v), Verdict::Rejected);
    }

    #[test]
    fn both_current_pair_commit_keeps_the_old_guard() {
        let order = LinearOrder::lexicographic(5);
        // Current pair {A, B}, guard C; both update. The absent guard is
        // derivable locally and must be retained.
        let v = view(&order, 5, &[(0, 12, 2, single(2)), (1, 12, 2, single(2))]);
        let meta = ModifiedHybrid.commit_meta(&v);
        assert_eq!(meta.cardinality, 2);
        assert_eq!(meta.distinguished, single(2));
    }

    #[test]
    fn tie_break_pair_commit_uses_the_guard_hint() {
        let order = LinearOrder::lexicographic(5);
        // Current pair was {A, B}; guard C. Partition {A, C}: one current
        // plus the guard. The hybrid-equivalent new guard is B (the absent
        // version-M holder), which the protocol layer supplies as a hint.
        let v = view(&order, 5, &[(0, 12, 2, single(2)), (2, 11, 2, single(4))])
            .with_guard_hint(Some(SiteId(1)));
        assert!(ModifiedHybrid.is_distinguished(&v));
        let meta = ModifiedHybrid.commit_meta(&v);
        assert_eq!(meta.distinguished, single(1));
    }

    #[test]
    fn hint_naming_a_member_is_ignored() {
        let order = LinearOrder::lexicographic(5);
        let v = view(&order, 5, &[(0, 12, 2, single(2)), (2, 11, 2, single(4))])
            .with_guard_hint(Some(SiteId(0)));
        assert_eq!(v.guard_hint(), None);
    }

    #[test]
    fn pair_commit_falls_back_to_greatest_absent_site() {
        let order = LinearOrder::lexicographic(5);
        // After a 3-site update ({A,B,D} current, SC=3), A and B update as
        // a pair. The absent version-M holder D is not derivable locally
        // and no hint is supplied: the fallback picks the greatest absent
        // site (C under the lexicographic convention).
        let v = view(
            &order,
            5,
            &[
                (0, 10, 3, Distinguished::Irrelevant),
                (1, 10, 3, Distinguished::Irrelevant),
            ],
        );
        assert!(ModifiedHybrid.is_distinguished(&v));
        let meta = ModifiedHybrid.commit_meta(&v);
        assert_eq!(meta.cardinality, 2);
        assert_eq!(meta.distinguished, single(2));
    }

    #[test]
    fn sc_three_or_more_uses_dynamic_linear_rules() {
        let order = LinearOrder::lexicographic(5);
        // SC=3: a single current copy is blocked even with stale company —
        // the modified hybrid has no trio list to consult.
        let v = view(
            &order,
            5,
            &[
                (2, 11, 3, Distinguished::Irrelevant),
                (1, 10, 3, Distinguished::Irrelevant),
            ],
        );
        assert_eq!(ModifiedHybrid.decide(&v), Verdict::Rejected);
        // SC=4 tie-break with DS current works as in dynamic-linear.
        let v = view(&order, 5, &[(1, 12, 4, single(1)), (4, 12, 4, single(1))]);
        assert_eq!(
            ModifiedHybrid.decide(&v),
            Verdict::Accepted(AcceptRule::TieBreak)
        );
    }

    #[test]
    fn three_site_commit_resets_cardinality() {
        let order = LinearOrder::lexicographic(5);
        let v = view(
            &order,
            5,
            &[
                (0, 12, 2, single(2)),
                (2, 10, 3, Distinguished::Irrelevant),
                (3, 10, 3, Distinguished::Irrelevant),
            ],
        );
        assert!(ModifiedHybrid.is_distinguished(&v));
        let meta = ModifiedHybrid.commit_meta(&v);
        assert_eq!(meta.cardinality, 3);
        assert_eq!(meta.distinguished, Distinguished::Irrelevant);
    }

    #[test]
    fn two_site_network_has_no_guard() {
        let order = LinearOrder::lexicographic(2);
        let v = view(&order, 2, &[(0, 5, 2, single(1)), (1, 5, 2, single(1))]);
        assert!(ModifiedHybrid.is_distinguished(&v));
        let meta = ModifiedHybrid.commit_meta(&v);
        assert_eq!(meta.distinguished, Distinguished::Irrelevant);
    }
}
