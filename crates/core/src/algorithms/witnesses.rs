//! Voting with witnesses — Pâris's scheme (the paper's refs \[28\],\[29\]).
//!
//! The paper borrows the first four assumptions of its stochastic model
//! from Pâris's analysis of *voting with witnesses*: a static voting
//! scheme where some sites hold **witnesses** — they carry a version
//! number and a vote, but no data. Witnesses make quorums cheaper (a
//! witness is a few bytes of state) while preserving safety: any two
//! vote majorities intersect.
//!
//! Decision rule: the partition is distinguished iff its members hold a
//! strict majority of the votes **and** some *data copy* in the
//! partition holds the partition's newest version number — otherwise
//! there is nothing to read the current file contents from. The version
//! bookkeeping is exactly why witnesses work: a witness's `VN`
//! participates in establishing which version is newest, vetoing any
//! quorum whose copies are all stale.
//!
//! Like plain voting the scheme is static (`SC`/`DS` never change); it
//! is included here as the natural third baseline and because the
//! asymmetric site roles exercise the unlumped analysis path
//! (`dynvote_markov::hetero::hetero_chain_for`).

use crate::algorithm::{AcceptRule, ReplicaControl, Verdict};
use crate::meta::CopyMeta;
use crate::quorum::VoteAssignment;
use crate::site::SiteSet;
use crate::view::PartitionView;

/// Static voting over data copies plus witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VotingWithWitnesses {
    copies: SiteSet,
    votes: VoteAssignment,
}

impl VotingWithWitnesses {
    /// One vote per site; `copies` hold data, all other sites of the
    /// `n`-site system are witnesses.
    ///
    /// # Panics
    ///
    /// If `copies` is empty or names sites outside `0..n`.
    #[must_use]
    pub fn uniform(n: usize, copies: SiteSet) -> Self {
        assert!(!copies.is_empty(), "at least one data copy is required");
        assert!(
            copies.is_subset(SiteSet::all(n)),
            "copies must be replica sites"
        );
        VotingWithWitnesses {
            copies,
            votes: VoteAssignment::uniform(n),
        }
    }

    /// Weighted votes (witness votes may differ from copy votes).
    #[must_use]
    pub fn weighted(copies: SiteSet, votes: VoteAssignment) -> Self {
        assert!(!copies.is_empty());
        assert!(copies.is_subset(SiteSet::all(votes.len())));
        VotingWithWitnesses { copies, votes }
    }

    /// The sites holding real data.
    #[must_use]
    pub fn copies(&self) -> SiteSet {
        self.copies
    }

    /// The witness sites.
    #[must_use]
    pub fn witnesses(&self) -> SiteSet {
        SiteSet::all(self.votes.len()).difference(self.copies)
    }
}

impl ReplicaControl for VotingWithWitnesses {
    fn name(&self) -> &'static str {
        "witnesses"
    }

    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        debug_assert_eq!(self.votes.len(), view.n());
        if !self.votes.is_majority(view.members()) {
            return Verdict::Rejected;
        }
        // A current *data* copy must be present: witnesses can vouch for
        // the version number but cannot supply the file contents.
        if view.current_sites().intersection(self.copies).is_empty() {
            return Verdict::Rejected;
        }
        Verdict::Accepted(AcceptRule::VoteQuorum)
    }

    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        debug_assert!(self.decide(view).is_accepted());
        // Static: only the version number advances (at copies and
        // witnesses alike — a witness's fresh VN is its entire job).
        CopyMeta {
            version: view.max_version() + 1,
            ..view.current_meta()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Distinguished;
    use crate::site::{LinearOrder, SiteId};

    fn view<'a>(order: &'a LinearOrder, n: usize, entries: &[(u8, u64)]) -> PartitionView<'a> {
        let responses: Vec<_> = entries
            .iter()
            .map(|&(s, version)| {
                (
                    SiteId(s),
                    CopyMeta {
                        version,
                        cardinality: n as u32,
                        distinguished: Distinguished::Irrelevant,
                    },
                )
            })
            .collect();
        // Leaked so the returned view can borrow it (test-only helper).
        PartitionView::new(n, order, Box::leak(responses.into_boxed_slice())).unwrap()
    }

    fn set(s: &str) -> SiteSet {
        SiteSet::parse(s).unwrap()
    }

    #[test]
    fn majority_with_current_copy_is_accepted() {
        let order = LinearOrder::lexicographic(3);
        // Copies A, B; witness C.
        let algo = VotingWithWitnesses::uniform(3, set("AB"));
        assert_eq!(algo.witnesses(), set("C"));
        // A (current copy) + C (witness): majority with data.
        let v = view(&order, 3, &[(0, 5), (2, 5)]);
        assert!(algo.is_distinguished(&v));
    }

    #[test]
    fn witness_majority_without_current_copy_is_rejected() {
        let order = LinearOrder::lexicographic(3);
        let algo = VotingWithWitnesses::uniform(3, set("AB"));
        // B (stale copy, v4) + C (witness at v5): a majority, but the
        // only member knowing version 5 is the witness — no data source.
        let v = view(&order, 3, &[(1, 4), (2, 5)]);
        assert!(!algo.is_distinguished(&v));
    }

    #[test]
    fn stale_copy_plus_witness_confirming_it_is_fine() {
        let order = LinearOrder::lexicographic(3);
        let algo = VotingWithWitnesses::uniform(3, set("AB"));
        // B and C agree on v5 (B *is* current; the witness confirms no
        // newer version exists in this partition).
        let v = view(&order, 3, &[(1, 5), (2, 5)]);
        assert!(algo.is_distinguished(&v));
    }

    #[test]
    fn minority_is_rejected() {
        let order = LinearOrder::lexicographic(3);
        let algo = VotingWithWitnesses::uniform(3, set("AB"));
        let v = view(&order, 3, &[(0, 5)]);
        assert!(!algo.is_distinguished(&v));
    }

    #[test]
    fn commit_bumps_version_only() {
        let order = LinearOrder::lexicographic(3);
        let algo = VotingWithWitnesses::uniform(3, set("AB"));
        let v = view(&order, 3, &[(0, 5), (2, 5)]);
        let meta = algo.commit_meta(&v);
        assert_eq!(meta.version, 6);
        assert_eq!(meta.cardinality, 3);
    }

    #[test]
    fn weighted_witness_can_be_tie_breaker_only() {
        // Copies A, B with 2 votes each; witness C with 1: total 5.
        // A alone (2 of 5) is a minority; A + C (3 of 5) is quorate.
        let order = LinearOrder::lexicographic(3);
        let algo = VotingWithWitnesses::weighted(set("AB"), VoteAssignment::new(vec![2, 2, 1]));
        assert!(!algo.is_distinguished(&view(&order, 3, &[(0, 5)])));
        assert!(algo.is_distinguished(&view(&order, 3, &[(0, 5), (2, 5)])));
    }

    #[test]
    #[should_panic(expected = "at least one data copy")]
    fn no_copies_is_rejected_at_construction() {
        let _ = VotingWithWitnesses::uniform(3, SiteSet::EMPTY);
    }
}
