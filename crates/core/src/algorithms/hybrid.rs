//! The hybrid replica control algorithm — the paper's primary
//! contribution (Sections III–V).
//!
//! The hybrid acts exactly like dynamic-linear, except:
//!
//! 1. When a **three-site** partition commits an update, the
//!    distinguished-site entry is expanded to *list* the three
//!    participants ([`Distinguished::Trio`]). The algorithm thereby
//!    switches from dynamic quorum adjustment to a **static**, three-site
//!    voting scheme.
//! 2. While the recorded cardinality `N` is 3, a partition is
//!    distinguished iff it contains **two of the three listed sites** —
//!    counted over the whole partition `P`, *not* just the current copies
//!    `I` (step 5 of `Is_Distinguished`: "we do not require that these
//!    sites be in `I`, but only that they be in `P`"). If the partition
//!    contains *only* those two sites, the commit leaves `SC` and `DS`
//!    unchanged (the static phase); with any extra site the algorithm
//!    re-enters its dynamic phase and re-installs the partition as the
//!    new quorum base.

use crate::algorithm::{AcceptRule, ReplicaControl, Verdict};
use crate::algorithms::linear::{dynamic_linear_commit, majority_or_tiebreak};
use crate::meta::{CopyMeta, Distinguished};
use crate::view::PartitionView;

/// The hybrid algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hybrid;

impl Hybrid {
    /// Create the algorithm (stateless).
    #[must_use]
    pub fn new() -> Self {
        Hybrid
    }
}

impl ReplicaControl for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        // Steps 3 and 4: the dynamic-linear rules.
        let dynamic = majority_or_tiebreak(view);
        if dynamic.is_accepted() {
            return dynamic;
        }
        // Step 5: the static trio rule. Applies only when the recorded
        // cardinality is 3 and the current copies carry a trio list.
        if view.cardinality() == 3 {
            if let Some(trio) = view.current_meta().distinguished.trio() {
                if view.members().intersection(trio).len() >= 2 {
                    return Verdict::Accepted(AcceptRule::TrioQuorum);
                }
            }
        }
        Verdict::Rejected
    }

    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        debug_assert!(self.decide(view).is_accepted());
        let members = view.members();
        // The static phase: "if N = 3 and card(P) = 2, then there is no
        // change made to SC_i and DS_i" (Do_Update). Only the version
        // number advances; the potential distinguished partitions stay
        // pinned to pairs from the recorded trio.
        if view.cardinality() == 3 && members.len() == 2 {
            return CopyMeta {
                version: view.max_version() + 1,
                ..view.current_meta()
            };
        }
        // Dynamic phase: `DS = P` if card(P) = 3, else the dynamic-linear
        // rule (greatest participant when card(P) is even).
        if members.len() == 3 {
            CopyMeta {
                version: view.max_version() + 1,
                cardinality: 3,
                distinguished: Distinguished::Trio(members),
            }
        } else {
            dynamic_linear_commit(view)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{LinearOrder, SiteId, SiteSet};

    fn view<'a>(
        order: &'a LinearOrder,
        n: usize,
        entries: &[(u8, u64, u32, Distinguished)],
    ) -> PartitionView<'a> {
        let responses: Vec<_> = entries
            .iter()
            .map(|&(s, version, cardinality, distinguished)| {
                (
                    SiteId(s),
                    CopyMeta {
                        version,
                        cardinality,
                        distinguished,
                    },
                )
            })
            .collect();
        // Leaked so the returned view can borrow it (test-only helper).
        PartitionView::new(n, order, Box::leak(responses.into_boxed_slice())).unwrap()
    }

    fn trio(s: &str) -> Distinguished {
        Distinguished::Trio(SiteSet::parse(s).unwrap())
    }

    #[test]
    fn three_site_commit_installs_the_trio() {
        let order = LinearOrder::lexicographic(5);
        // ABC, all current at version 9 with SC=5 (the Section IV opening).
        let v = view(
            &order,
            5,
            &[
                (0, 9, 5, Distinguished::Irrelevant),
                (1, 9, 5, Distinguished::Irrelevant),
                (2, 9, 5, Distinguished::Irrelevant),
            ],
        );
        assert_eq!(Hybrid.decide(&v), Verdict::Accepted(AcceptRule::Majority));
        let meta = Hybrid.commit_meta(&v);
        assert_eq!(meta.version, 10);
        assert_eq!(meta.cardinality, 3);
        assert_eq!(meta.distinguished, trio("ABC"));
    }

    #[test]
    fn static_phase_two_of_trio_commits_without_metadata_change() {
        let order = LinearOrder::lexicographic(5);
        // A and C hold version 10 with SC=3 DS=ABC (Section IV step 2).
        let v = view(
            &order,
            5,
            &[(0, 10, 3, trio("ABC")), (2, 10, 3, trio("ABC"))],
        );
        assert_eq!(Hybrid.decide(&v), Verdict::Accepted(AcceptRule::Majority));
        let meta = Hybrid.commit_meta(&v);
        assert_eq!(meta.version, 11);
        assert_eq!(meta.cardinality, 3, "static phase keeps SC=3");
        assert_eq!(meta.distinguished, trio("ABC"), "static phase keeps DS");
    }

    #[test]
    fn stale_trio_members_count_toward_the_trio_quorum() {
        let order = LinearOrder::lexicographic(5);
        // Section IV step 3: D reaches B, C, E. Only C is current (v11);
        // B is stale (v10) but is on the trio list, so BC is a trio
        // majority. Neither dynamic voting nor dynamic-linear permits this.
        let v = view(
            &order,
            5,
            &[
                (1, 10, 3, trio("ABC")),
                (2, 11, 3, trio("ABC")),
                (3, 9, 5, Distinguished::Irrelevant),
                (4, 9, 5, Distinguished::Irrelevant),
            ],
        );
        assert_eq!(Hybrid.decide(&v), Verdict::Accepted(AcceptRule::TrioQuorum));
        // Four sites participate: dynamic phase resumes, SC=4, DS=B
        // (greatest of BCDE under the lexicographic convention).
        let meta = Hybrid.commit_meta(&v);
        assert_eq!(meta.version, 12);
        assert_eq!(meta.cardinality, 4);
        assert_eq!(meta.distinguished, Distinguished::Single(SiteId(1)));
    }

    #[test]
    fn one_trio_member_is_not_enough() {
        let order = LinearOrder::lexicographic(5);
        let v = view(
            &order,
            5,
            &[
                (2, 11, 3, trio("ABC")),
                (3, 9, 5, Distinguished::Irrelevant),
            ],
        );
        assert_eq!(Hybrid.decide(&v), Verdict::Rejected);
    }

    #[test]
    fn even_cardinality_tie_break_still_works() {
        let order = LinearOrder::lexicographic(5);
        // Section IV final step: B and E current at v12, SC=4, DS=B.
        // E reaches only B: exactly half of SC=4 present... no wait, B and
        // E are both current: card(I)=2 = SC/2, and DS=B ∈ I.
        let ds = Distinguished::Single(SiteId(1));
        let v = view(&order, 5, &[(1, 12, 4, ds), (4, 12, 4, ds)]);
        assert_eq!(Hybrid.decide(&v), Verdict::Accepted(AcceptRule::TieBreak));
        let meta = Hybrid.commit_meta(&v);
        assert_eq!(meta.version, 13);
        assert_eq!(meta.cardinality, 2);
        assert_eq!(meta.distinguished, Distinguished::Single(SiteId(1)));
    }

    #[test]
    fn trio_rule_does_not_fire_for_other_cardinalities() {
        let order = LinearOrder::lexicographic(5);
        // SC=5 with a (corrupt) trio entry: step 5 must not apply.
        let v = view(&order, 5, &[(0, 9, 5, trio("ABC")), (1, 9, 5, trio("ABC"))]);
        assert_eq!(Hybrid.decide(&v), Verdict::Rejected);
    }

    #[test]
    fn all_three_trio_members_re_enter_dynamic_phase() {
        let order = LinearOrder::lexicographic(5);
        // The full trio reconvenes: card(P)=3 so DS is re-installed as the
        // same trio (dynamic phase, but the commit rule card(P)=3 => trio).
        let v = view(
            &order,
            5,
            &[
                (0, 11, 3, trio("ABC")),
                (1, 10, 3, trio("ABC")),
                (2, 11, 3, trio("ABC")),
            ],
        );
        assert!(Hybrid.is_distinguished(&v));
        let meta = Hybrid.commit_meta(&v);
        assert_eq!(meta.cardinality, 3);
        assert_eq!(meta.distinguished, trio("ABC"));
    }

    #[test]
    fn five_site_commit_behaves_like_dynamic_linear() {
        let order = LinearOrder::lexicographic(8);
        let entries: Vec<_> = SiteSet::parse("ABCDE")
            .unwrap()
            .iter()
            .map(|s| (s.0, 4u64, 8u32, Distinguished::Single(SiteId(0))))
            .collect();
        let v = view(&order, 8, &entries);
        // 5 of 8 is a majority.
        assert!(Hybrid.is_distinguished(&v));
        let meta = Hybrid.commit_meta(&v);
        assert_eq!(meta.cardinality, 5);
        assert_eq!(meta.distinguished, Distinguished::Irrelevant);
    }

    #[test]
    fn four_site_commit_records_greatest_site() {
        let order = LinearOrder::lexicographic(6);
        let entries: Vec<_> = SiteSet::parse("CDEF")
            .unwrap()
            .iter()
            .map(|s| (s.0, 4u64, 6u32, Distinguished::Irrelevant))
            .collect();
        let v = view(&order, 6, &entries);
        assert!(Hybrid.is_distinguished(&v));
        let meta = Hybrid.commit_meta(&v);
        assert_eq!(meta.cardinality, 4);
        assert_eq!(meta.distinguished, Distinguished::Single(SiteId(2)));
    }
}
