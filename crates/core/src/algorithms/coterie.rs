//! Generalized static replica control from an arbitrary coterie.
//!
//! Section VII observes that "the members of a distinguished partition
//! may convert to any vote reassignment they choose (or more generally,
//! any valid coterie)". This algorithm is the static end of that
//! observation: the distinguished partition is any superset of a quorum
//! of a fixed [`Coterie`] — majority voting, tree quorums, grid
//! quorums, primary copy, and every other intersecting antichain are
//! instances. Pessimism is the coterie's intersection property itself.

use crate::algorithm::{AcceptRule, ReplicaControl, Verdict};
use crate::meta::CopyMeta;
use crate::quorum::Coterie;
use crate::view::PartitionView;

/// Static replica control by an arbitrary coterie.
#[derive(Debug, Clone, PartialEq)]
pub struct CoterieControl {
    coterie: Coterie,
}

impl CoterieControl {
    /// Use the given coterie (its intersection property was validated
    /// at construction of the [`Coterie`] itself).
    #[must_use]
    pub fn new(coterie: Coterie) -> Self {
        CoterieControl { coterie }
    }

    /// The coterie in force.
    #[must_use]
    pub fn coterie(&self) -> &Coterie {
        &self.coterie
    }
}

impl ReplicaControl for CoterieControl {
    fn name(&self) -> &'static str {
        "coterie"
    }

    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        if self.coterie.is_quorum(view.members()) {
            Verdict::Accepted(AcceptRule::VoteQuorum)
        } else {
            Verdict::Rejected
        }
    }

    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        debug_assert!(self.decide(view).is_accepted());
        CopyMeta {
            version: view.max_version() + 1,
            ..view.current_meta()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Distinguished;
    use crate::quorum::VoteAssignment;
    use crate::site::{LinearOrder, SiteSet};

    fn view<'a>(order: &'a LinearOrder, n: usize, members: &str) -> PartitionView<'a> {
        let responses = SiteSet::parse(members)
            .unwrap()
            .iter()
            .map(|s| {
                (
                    s,
                    CopyMeta {
                        version: 1,
                        cardinality: n as u32,
                        distinguished: Distinguished::Irrelevant,
                    },
                )
            })
            .collect::<Vec<_>>();
        // Leaked so the returned view can borrow it (test-only helper).
        PartitionView::new(n, order, Box::leak(responses.into_boxed_slice())).unwrap()
    }

    #[test]
    fn majority_coterie_equals_static_voting() {
        let order = LinearOrder::lexicographic(5);
        let coterie = VoteAssignment::uniform(5).coterie();
        let algo = CoterieControl::new(coterie);
        let voting = crate::algorithms::StaticVoting::uniform(5);
        for bits in 1u64..(1 << 5) {
            let members: String = SiteSet::from_bits(bits).to_string();
            let v = view(&order, 5, &members);
            assert_eq!(
                algo.is_distinguished(&v),
                voting.is_distinguished(&v),
                "{members}"
            );
        }
    }

    #[test]
    fn tree_coterie_has_logarithmic_best_quorums() {
        // 7 sites in 3 levels: the root-to-leaf paths are 3-site
        // quorums (vs 4 for a 7-site majority).
        let coterie = Coterie::binary_tree(3);
        let smallest = coterie.quorums().iter().map(|q| q.len()).min().unwrap();
        assert_eq!(smallest, 3);
        assert!(coterie.intersecting());
        assert!(coterie.is_antichain());
        // Root + left child + its left leaf is a quorum.
        let order = LinearOrder::lexicographic(7);
        let algo = CoterieControl::new(coterie);
        assert!(algo.is_distinguished(&view(&order, 7, "ABD")));
        // Three leaves alone are not.
        assert!(!algo.is_distinguished(&view(&order, 7, "DEF")));
        // But the root can be bypassed through both children's paths.
        assert!(algo.is_distinguished(&view(&order, 7, "BCDF")));
    }

    #[test]
    fn grid_coterie_shape() {
        // 2×3 grid: a quorum is a full row (3) + one per other row (1).
        let coterie = Coterie::grid(2, 3);
        assert!(coterie.intersecting());
        assert!(coterie.is_antichain());
        let order = LinearOrder::lexicographic(6);
        let algo = CoterieControl::new(coterie);
        // Row 0 = ABC, plus D from row 1.
        assert!(algo.is_distinguished(&view(&order, 6, "ABCD")));
        // A row alone is not a quorum.
        assert!(!algo.is_distinguished(&view(&order, 6, "ABC")));
    }

    #[test]
    fn primary_copy_as_a_coterie() {
        let coterie = Coterie::try_new(vec![SiteSet::parse("A").unwrap()]).unwrap();
        let order = LinearOrder::lexicographic(3);
        let algo = CoterieControl::new(coterie);
        assert!(algo.is_distinguished(&view(&order, 3, "A")));
        assert!(!algo.is_distinguished(&view(&order, 3, "BC")));
    }

    #[test]
    fn commit_only_bumps_version() {
        let order = LinearOrder::lexicographic(3);
        let algo = CoterieControl::new(VoteAssignment::uniform(3).coterie());
        let v = view(&order, 3, "AB");
        let meta = algo.commit_meta(&v);
        assert_eq!(meta.version, 2);
        assert_eq!(meta.cardinality, 3);
    }
}
