//! Static (weighted) majority voting — the baseline the paper compares
//! against.
//!
//! "For voting in its simplest form, the distinguished partition is the
//! partition, if any, that contains more than half of the sites"
//! (Section III). With weighted votes this generalises to: more than half
//! of the total votes. The algorithm is *static*: the set of possible
//! distinguished partitions is fixed in advance, so a commit changes only
//! the version number.

use crate::algorithm::{AcceptRule, ReplicaControl, Verdict};
use crate::meta::CopyMeta;
use crate::quorum::VoteAssignment;
use crate::view::PartitionView;

/// Static voting with an arbitrary vote assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticVoting {
    votes: VoteAssignment,
}

impl StaticVoting {
    /// Uniform one-vote-per-site voting over `n` sites (the configuration
    /// used in all of the paper's comparisons).
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        StaticVoting {
            votes: VoteAssignment::uniform(n),
        }
    }

    /// Weighted voting.
    #[must_use]
    pub fn weighted(votes: VoteAssignment) -> Self {
        StaticVoting { votes }
    }

    /// The vote assignment in force.
    #[must_use]
    pub fn votes(&self) -> &VoteAssignment {
        &self.votes
    }
}

impl ReplicaControl for StaticVoting {
    fn name(&self) -> &'static str {
        "voting"
    }

    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        debug_assert_eq!(
            self.votes.len(),
            view.n(),
            "vote assignment must cover all replica sites"
        );
        if self.votes.is_majority(view.members()) {
            Verdict::Accepted(AcceptRule::VoteQuorum)
        } else {
            Verdict::Rejected
        }
    }

    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        debug_assert!(self.decide(view).is_accepted());
        // Static algorithm: only the version number advances. Any two vote
        // quorums intersect, so the quorum always holds a globally current
        // copy; SC/DS are dead weight carried along unchanged.
        CopyMeta {
            version: view.max_version() + 1,
            ..view.current_meta()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Distinguished;
    use crate::site::{LinearOrder, SiteId, SiteSet};

    fn view_of<'a>(
        n: usize,
        order: &'a LinearOrder,
        members: &str,
        version_of: impl Fn(SiteId) -> u64,
    ) -> PartitionView<'a> {
        let responses = SiteSet::parse(members)
            .unwrap()
            .iter()
            .map(|s| {
                (
                    s,
                    CopyMeta {
                        version: version_of(s),
                        cardinality: n as u32,
                        distinguished: Distinguished::Irrelevant,
                    },
                )
            })
            .collect::<Vec<_>>();
        // Leaked so the returned view can borrow it (test-only helper).
        PartitionView::new(n, order, Box::leak(responses.into_boxed_slice())).unwrap()
    }

    #[test]
    fn majority_of_five_is_three() {
        let order = LinearOrder::lexicographic(5);
        let algo = StaticVoting::uniform(5);
        assert!(algo.is_distinguished(&view_of(5, &order, "ABC", |_| 4)));
        assert!(!algo.is_distinguished(&view_of(5, &order, "DE", |_| 4)));
    }

    #[test]
    fn exactly_half_is_rejected() {
        let order = LinearOrder::lexicographic(4);
        let algo = StaticVoting::uniform(4);
        assert!(!algo.is_distinguished(&view_of(4, &order, "AB", |_| 0)));
        assert!(algo.is_distinguished(&view_of(4, &order, "ABC", |_| 0)));
    }

    #[test]
    fn commit_only_bumps_version() {
        let order = LinearOrder::lexicographic(5);
        let algo = StaticVoting::uniform(5);
        let view = view_of(5, &order, "ABC", |s| if s == SiteId(0) { 7 } else { 5 });
        let meta = algo.commit_meta(&view);
        assert_eq!(meta.version, 8);
        assert_eq!(meta.cardinality, 5);
    }

    #[test]
    fn weighted_primary_site_can_update_alone() {
        let order = LinearOrder::lexicographic(3);
        // A holds 3 of 5 votes: "voting with a primary site" flavour.
        let algo = StaticVoting::weighted(VoteAssignment::new(vec![3, 1, 1]));
        assert!(algo.is_distinguished(&view_of(3, &order, "A", |_| 0)));
        assert!(!algo.is_distinguished(&view_of(3, &order, "BC", |_| 0)));
    }

    #[test]
    fn verdict_reports_vote_quorum_rule() {
        let order = LinearOrder::lexicographic(3);
        let algo = StaticVoting::uniform(3);
        assert_eq!(
            algo.decide(&view_of(3, &order, "AB", |_| 0)),
            Verdict::Accepted(AcceptRule::VoteQuorum)
        );
    }
}
