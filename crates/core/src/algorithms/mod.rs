//! The six replica control algorithms of the paper's family.
//!
//! | Algorithm | Source | Data used |
//! |---|---|---|
//! | [`StaticVoting`] | Gifford'79 / Thomas'79 (refs \[19\],\[32\],\[35\]) | vote assignment |
//! | [`DynamicVoting`] | Jajodia–Mutchler, SIGMOD 1987 (ref \[21\]) | `VN`, `SC` |
//! | [`DynamicLinear`] | Jajodia–Mutchler, VLDB 1987 (ref \[22\]) | `VN`, `SC`, single `DS` |
//! | [`Hybrid`] | this paper, Sections III–V | `VN`, `SC`, `DS` list |
//! | [`ModifiedHybrid`] | this paper, Section VII Changes 1–2 | `VN`, `SC`, single `DS` |
//! | [`OptimalCandidate`] | this paper, Section VII footnote 6 | `VN`, `SC`, single/implicit `DS` |
//! | [`VotingWithWitnesses`] | Pâris 1986 (refs \[28\],\[29\]) | votes, `VN` (witnesses hold no data) |
//! | [`CoterieControl`] | Section VII's "any valid coterie"; refs \[5\],\[18\],\[26\] | a fixed coterie |

mod coterie;
mod dynamic;
mod hybrid;
mod linear;
mod modified_hybrid;
mod optimal;
mod voting;
mod witnesses;

pub use coterie::CoterieControl;
pub use dynamic::DynamicVoting;
pub use hybrid::Hybrid;
pub use linear::DynamicLinear;
pub use modified_hybrid::ModifiedHybrid;
pub use optimal::OptimalCandidate;
pub use voting::StaticVoting;
pub use witnesses::VotingWithWitnesses;
