//! Dynamic voting with linearly ordered copies ("dynamic-linear",
//! the paper's ref \[22\]).
//!
//! Extends dynamic voting with a per-copy *distinguished site*: whenever
//! an **even** number `SC` of sites participates in an update, every
//! participant records the greatest participant (in the file's a-priori
//! linear order) as `DS`. A partition holding exactly `SC/2` of the
//! up-to-date copies is distinguished iff those copies include `DS` —
//! the distinguished site "breaks the tie", letting the quorum shrink all
//! the way to a single site.

use crate::algorithm::{current_single_ds, AcceptRule, ReplicaControl, Verdict};
use crate::meta::{CopyMeta, Distinguished};
use crate::view::PartitionView;

/// Dynamic voting with linearly ordered copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynamicLinear;

impl DynamicLinear {
    /// Create the algorithm (stateless).
    #[must_use]
    pub fn new() -> Self {
        DynamicLinear
    }
}

/// Shared by `DynamicLinear` and the dynamic phase of the hybrid: steps 3
/// and 4 of `Is_Distinguished`.
pub(crate) fn majority_or_tiebreak(view: &PartitionView<'_>) -> Verdict {
    let current = view.current_count() as u64;
    let n = u64::from(view.cardinality());
    if 2 * current > n {
        return Verdict::Accepted(AcceptRule::Majority);
    }
    if 2 * current == n {
        if let Some(ds) = current_single_ds(view) {
            if view.current_sites().contains(ds) {
                return Verdict::Accepted(AcceptRule::TieBreak);
            }
        }
    }
    Verdict::Rejected
}

/// The `Do_Update` metadata rule shared by dynamic-linear and the dynamic
/// phase of the hybrid (minus the hybrid's trio special case): `SC`
/// becomes `card(P)`; `DS` names the greatest participant when `card(P)`
/// is even.
pub(crate) fn dynamic_linear_commit(view: &PartitionView<'_>) -> CopyMeta {
    let members = view.members();
    let distinguished = if members.len() % 2 == 0 {
        Distinguished::Single(
            view.order()
                .max_of(members)
                .expect("distinguished partition is non-empty"),
        )
    } else {
        Distinguished::Irrelevant
    };
    CopyMeta {
        version: view.max_version() + 1,
        cardinality: members.len() as u32,
        distinguished,
    }
}

impl ReplicaControl for DynamicLinear {
    fn name(&self) -> &'static str {
        "dynamic-linear"
    }

    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        majority_or_tiebreak(view)
    }

    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        debug_assert!(self.decide(view).is_accepted());
        dynamic_linear_commit(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{LinearOrder, SiteId, SiteSet};

    fn view<'a>(
        order: &'a LinearOrder,
        n: usize,
        entries: &[(u8, u64, u32, Distinguished)],
    ) -> PartitionView<'a> {
        let responses: Vec<_> = entries
            .iter()
            .map(|&(s, version, cardinality, distinguished)| {
                (
                    SiteId(s),
                    CopyMeta {
                        version,
                        cardinality,
                        distinguished,
                    },
                )
            })
            .collect();
        // Leaked so the returned view can borrow it (test-only helper).
        PartitionView::new(n, order, Box::leak(responses.into_boxed_slice())).unwrap()
    }

    #[test]
    fn tie_break_requires_the_distinguished_site() {
        let order = LinearOrder::lexicographic(5);
        let ds = Distinguished::Single(SiteId(0)); // A
                                                   // Half of SC=2 present, and it is A (the DS): distinguished.
        let v = view(&order, 5, &[(0, 11, 2, ds)]);
        assert_eq!(
            DynamicLinear.decide(&v),
            Verdict::Accepted(AcceptRule::TieBreak)
        );
        // Half present but it is B, not the DS: blocked.
        let v = view(&order, 5, &[(1, 11, 2, ds)]);
        assert_eq!(DynamicLinear.decide(&v), Verdict::Rejected);
    }

    #[test]
    fn ds_must_be_current_not_merely_reachable() {
        let order = LinearOrder::lexicographic(5);
        let ds = Distinguished::Single(SiteId(0));
        // B holds the current copy; A (the DS) is reachable but stale.
        // Step 4 demands DS ∈ I, so this is blocked.
        let v = view(
            &order,
            5,
            &[(1, 11, 2, ds), (0, 9, 5, Distinguished::Irrelevant)],
        );
        assert_eq!(DynamicLinear.decide(&v), Verdict::Rejected);
    }

    #[test]
    fn quorum_shrinks_to_one_site() {
        let order = LinearOrder::lexicographic(5);
        let ds = Distinguished::Single(SiteId(0));
        let v = view(&order, 5, &[(0, 11, 2, ds)]);
        let meta = DynamicLinear.commit_meta(&v);
        assert_eq!(meta.version, 12);
        assert_eq!(meta.cardinality, 1);
        assert_eq!(meta.distinguished, Distinguished::Irrelevant);
    }

    #[test]
    fn even_commit_records_greatest_participant() {
        let order = LinearOrder::lexicographic(5);
        // Partition BCDE updates: DS must be B (lexicographic convention,
        // matching the Section IV example).
        let entries: Vec<_> = SiteSet::parse("BCDE")
            .unwrap()
            .iter()
            .map(|s| (s.0, 11u64, 3u32, Distinguished::Irrelevant))
            .collect();
        let v = view(&order, 5, &entries);
        assert!(DynamicLinear.is_distinguished(&v));
        let meta = DynamicLinear.commit_meta(&v);
        assert_eq!(meta.cardinality, 4);
        assert_eq!(meta.distinguished, Distinguished::Single(SiteId(1)));
    }

    #[test]
    fn odd_commit_leaves_ds_irrelevant() {
        let order = LinearOrder::lexicographic(5);
        let entries: Vec<_> = SiteSet::parse("ABC")
            .unwrap()
            .iter()
            .map(|s| (s.0, 9u64, 5u32, Distinguished::Irrelevant))
            .collect();
        let v = view(&order, 5, &entries);
        let meta = DynamicLinear.commit_meta(&v);
        assert_eq!(meta.cardinality, 3);
        assert_eq!(meta.distinguished, Distinguished::Irrelevant);
    }

    #[test]
    fn majority_rule_is_still_primary() {
        let order = LinearOrder::lexicographic(5);
        let ds = Distinguished::Single(SiteId(4));
        // 3 of SC=4 present without the DS: majority suffices.
        let v = view(&order, 5, &[(0, 7, 4, ds), (1, 7, 4, ds), (2, 7, 4, ds)]);
        assert_eq!(
            DynamicLinear.decide(&v),
            Verdict::Accepted(AcceptRule::Majority)
        );
    }

    #[test]
    fn no_ties_possible_with_odd_cardinality() {
        let order = LinearOrder::lexicographic(5);
        // SC=3 with one copy present: 2*1 < 3, and no tie-break applies.
        let v = view(&order, 5, &[(0, 7, 3, Distinguished::Irrelevant)]);
        assert_eq!(DynamicLinear.decide(&v), Verdict::Rejected);
    }
}
