//! Dynamic voting — the SIGMOD 1987 algorithm (the paper's ref \[21\]).
//!
//! Each copy carries a version number and an *update sites cardinality*
//! `SC`; the distinguished partition is the one containing **more than
//! half of the up-to-date copies**: with `M` the largest version in the
//! partition, `I` the member sites holding `M`, and `N` the cardinality
//! recorded by those sites, the partition is distinguished iff
//! `card(I) > N/2`. A commit resets `SC` at every participant to the
//! number of participants, dynamically shrinking (or growing) the quorum
//! base.

use crate::algorithm::{AcceptRule, ReplicaControl, Verdict};
use crate::meta::{CopyMeta, Distinguished};
use crate::view::PartitionView;

/// Dynamic voting (no tie-breaking; `DS` is never consulted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynamicVoting;

impl DynamicVoting {
    /// Create the algorithm (stateless).
    #[must_use]
    pub fn new() -> Self {
        DynamicVoting
    }
}

impl ReplicaControl for DynamicVoting {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        let current = view.current_count() as u64;
        let n = u64::from(view.cardinality());
        if 2 * current > n {
            Verdict::Accepted(AcceptRule::Majority)
        } else {
            Verdict::Rejected
        }
    }

    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        debug_assert!(self.decide(view).is_accepted());
        CopyMeta {
            version: view.max_version() + 1,
            cardinality: view.member_count() as u32,
            distinguished: Distinguished::Irrelevant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{LinearOrder, SiteId};

    fn meta(version: u64, cardinality: u32) -> CopyMeta {
        CopyMeta {
            version,
            cardinality,
            distinguished: Distinguished::Irrelevant,
        }
    }

    fn view<'a>(order: &'a LinearOrder, n: usize, entries: &[(u8, u64, u32)]) -> PartitionView<'a> {
        let responses: Vec<_> = entries
            .iter()
            .map(|&(s, v, c)| (SiteId(s), meta(v, c)))
            .collect();
        // Leaked so the returned view can borrow it (test-only helper).
        PartitionView::new(n, order, Box::leak(responses.into_boxed_slice())).unwrap()
    }

    #[test]
    fn majority_of_current_copies_wins() {
        let order = LinearOrder::lexicographic(5);
        // 3 of the 5 version-9 copies present: distinguished.
        let v = view(&order, 5, &[(0, 9, 5), (1, 9, 5), (2, 9, 5)]);
        assert!(DynamicVoting.is_distinguished(&v));
        // Only 2 of 5: not distinguished.
        let v = view(&order, 5, &[(3, 9, 5), (4, 9, 5)]);
        assert!(!DynamicVoting.is_distinguished(&v));
    }

    #[test]
    fn exactly_half_is_rejected() {
        let order = LinearOrder::lexicographic(4);
        let v = view(&order, 4, &[(0, 3, 4), (1, 3, 4)]);
        assert!(!DynamicVoting.is_distinguished(&v));
    }

    #[test]
    fn stale_members_do_not_count_toward_the_quorum() {
        let order = LinearOrder::lexicographic(5);
        // One current copy (SC=3) plus two stale ones: 1 of 3 is blocked,
        // no matter how many stale members are reachable.
        let v = view(&order, 5, &[(0, 9, 3), (3, 2, 5), (4, 2, 5)]);
        assert!(!DynamicVoting.is_distinguished(&v));
    }

    #[test]
    fn commit_installs_partition_cardinality() {
        let order = LinearOrder::lexicographic(5);
        // 2 of 3 current plus 2 stale members: commit resets SC to 4.
        let v = view(&order, 5, &[(0, 9, 3), (1, 9, 3), (3, 2, 5), (4, 2, 5)]);
        assert!(DynamicVoting.is_distinguished(&v));
        let meta = DynamicVoting.commit_meta(&v);
        assert_eq!(meta.version, 10);
        assert_eq!(meta.cardinality, 4);
        assert_eq!(meta.distinguished, Distinguished::Irrelevant);
    }

    #[test]
    fn quorum_can_shrink_to_two_but_not_below() {
        let order = LinearOrder::lexicographic(5);
        // SC=2: both copies present -> distinguished.
        let v = view(&order, 5, &[(0, 12, 2), (1, 12, 2)]);
        assert!(DynamicVoting.is_distinguished(&v));
        // SC=2: one copy is exactly half -> blocked. This is precisely the
        // case dynamic-linear's distinguished site was invented for.
        let v = view(&order, 5, &[(0, 12, 2)]);
        assert!(!DynamicVoting.is_distinguished(&v));
    }
}
