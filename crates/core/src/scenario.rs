//! A model-level executable replica system and a partition-graph scenario
//! runner.
//!
//! [`ReplicaSystem`] keeps one `(VN, SC, DS)` triple per site and applies
//! the paper's protocol *semantics* (voting → catch-up → commit) to
//! explicit partitions, without messages or clocks. It is the shared
//! executable substrate of:
//!
//! * the Section IV worked example and the Fig. 1 partition graph;
//! * the Monte-Carlo model simulator (`dynvote-mc`);
//! * the automatic state-space derivation (`dynvote-markov`).
//!
//! The message-level protocol with locks, 2PC and failure handling lives
//! in `dynvote-sim`; its committed states must agree with this model (an
//! invariant its tests check).

use crate::algorithm::{ReplicaControl, Verdict};
use crate::meta::CopyMeta;
use crate::site::{LinearOrder, SiteId, SiteSet};
use crate::view::PartitionView;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of one update attempt in one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateOutcome {
    /// The `Is_Distinguished` verdict.
    pub verdict: Verdict,
    /// The version committed, if the partition was distinguished.
    pub committed_version: Option<u64>,
    /// Number of sites that participated (committed) — `card(P)`.
    pub participants: u32,
}

impl UpdateOutcome {
    /// True if the update committed.
    #[must_use]
    pub fn committed(&self) -> bool {
        self.committed_version.is_some()
    }
}

/// A replica system: one metadata triple per site, driven by a replica
/// control algorithm.
#[derive(Debug, Clone)]
pub struct ReplicaSystem<A> {
    algo: A,
    order: LinearOrder,
    metas: Vec<CopyMeta>,
}

impl<A: ReplicaControl> ReplicaSystem<A> {
    /// A fresh `n`-site system at version 0 with the paper's lexicographic
    /// site ordering.
    #[must_use]
    pub fn new(n: usize, algo: A) -> Self {
        Self::with_order(LinearOrder::lexicographic(n), algo)
    }

    /// A fresh system with an explicit site ordering.
    #[must_use]
    pub fn with_order(order: LinearOrder, algo: A) -> Self {
        let n = order.len();
        assert!(n >= 2, "a replicated file needs at least two sites");
        let metas = vec![CopyMeta::initial(n, &order); n];
        ReplicaSystem { algo, order, metas }
    }

    /// Number of replica sites.
    #[must_use]
    pub fn n(&self) -> usize {
        self.metas.len()
    }

    /// The algorithm driving the system.
    #[must_use]
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The site ordering.
    #[must_use]
    pub fn order(&self) -> &LinearOrder {
        &self.order
    }

    /// The metadata currently held at `site`.
    #[must_use]
    pub fn meta(&self, site: SiteId) -> CopyMeta {
        self.metas[site.index()]
    }

    /// All metadata, indexed by site.
    #[must_use]
    pub fn metas(&self) -> &[CopyMeta] {
        &self.metas
    }

    /// Overwrite the metadata at `site` (for test-harness construction of
    /// specific states; the protocol itself only writes through
    /// [`ReplicaSystem::attempt_update`]).
    pub fn set_meta(&mut self, site: SiteId, meta: CopyMeta) {
        self.metas[site.index()] = meta;
    }

    /// The globally largest version number.
    #[must_use]
    pub fn latest_version(&self) -> u64 {
        self.metas.iter().map(|m| m.version).max().unwrap_or(0)
    }

    /// Collect the `(site, meta)` responses an update arriving in
    /// `partition` would gather, into `buf` (cleared first). The buffer is
    /// caller-owned so hot paths can reuse one allocation across calls.
    fn collect_responses(&self, partition: SiteSet, buf: &mut Vec<(SiteId, CopyMeta)>) {
        buf.clear();
        buf.extend(
            partition
                .iter()
                .filter(|s| s.index() < self.n())
                .map(|s| (s, self.metas[s.index()])),
        );
    }

    /// Build the coordinator's view over previously collected responses.
    ///
    /// `responses` must be non-empty and come from
    /// [`Self::collect_responses`] for the same `partition`.
    fn view_from<'a>(
        &'a self,
        responses: &'a [(SiteId, CopyMeta)],
        partition: SiteSet,
    ) -> PartitionView<'a> {
        let view = PartitionView::new(self.n(), &self.order, responses)
            .expect("system metadata is well-formed");
        // Guard hint: the greatest absent holder of the partition's
        // maximum version, if any (see `algorithms::modified_hybrid`).
        let max_version = view.max_version();
        let absent_current =
            SiteSet::from_sites((0..self.n()).map(SiteId::new).filter(|s| {
                !partition.contains(*s) && self.metas[s.index()].version == max_version
            }));
        let hint = self.order.max_of(absent_current);
        view.with_guard_hint(hint)
    }

    /// Would an update arriving in `partition` succeed? (Pure query; also
    /// the answer for read requests, per the paper's footnote 5.)
    #[must_use]
    pub fn can_update(&self, partition: SiteSet) -> bool {
        let mut responses = Vec::new();
        self.collect_responses(partition, &mut responses);
        if responses.is_empty() {
            return false;
        }
        let view = self.view_from(&responses, partition);
        self.algo.is_distinguished(&view)
    }

    /// The verdict an update arriving in `partition` would receive.
    #[must_use]
    pub fn decide(&self, partition: SiteSet) -> Verdict {
        let mut responses = Vec::new();
        self.collect_responses(partition, &mut responses);
        if responses.is_empty() {
            return Verdict::Rejected;
        }
        let view = self.view_from(&responses, partition);
        self.algo.decide(&view)
    }

    /// Process one update arriving at a site of `partition`.
    ///
    /// If the partition is distinguished, all members catch up and commit
    /// the new metadata (the voting, catch-up and commit phases collapsed
    /// to their end state); otherwise nothing changes.
    pub fn attempt_update(&mut self, partition: SiteSet) -> UpdateOutcome {
        let mut responses = Vec::new();
        self.collect_responses(partition, &mut responses);
        if responses.is_empty() {
            return UpdateOutcome {
                verdict: Verdict::Rejected,
                committed_version: None,
                participants: 0,
            };
        }
        let view = self.view_from(&responses, partition);
        let verdict = self.algo.decide(&view);
        if !verdict.is_accepted() {
            return UpdateOutcome {
                verdict,
                committed_version: None,
                participants: 0,
            };
        }
        let meta = self.algo.commit_meta(&view);
        let members = view.members();
        for site in members.iter() {
            self.metas[site.index()] = meta;
        }
        UpdateOutcome {
            verdict,
            committed_version: Some(meta.version),
            participants: members.len() as u32,
        }
    }

    /// Render the per-site state as in the paper's Section IV tables.
    #[must_use]
    pub fn state_table(&self) -> String {
        let mut out = String::new();
        for (i, meta) in self.metas.iter().enumerate() {
            out.push_str(&format!("{}: {}\n", SiteId::new(i), meta));
        }
        out
    }
}

/// One step of a partition-graph scenario: the network is split into the
/// given partitions (every site appears in exactly one) and an update
/// arrives in each partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioStep {
    /// Label for reporting (e.g. the "time" of the paper's Fig. 1).
    pub label: String,
    /// The partitions in effect.
    pub partitions: Vec<SiteSet>,
}

impl ScenarioStep {
    /// Build a step from compact partition strings, e.g. `["ABC", "DE"]`.
    #[must_use]
    pub fn parse(label: &str, partitions: &[&str]) -> Self {
        ScenarioStep {
            label: label.to_owned(),
            partitions: partitions
                .iter()
                .map(|p| SiteSet::parse(p).expect("valid partition string"))
                .collect(),
        }
    }

    /// Check the step is a true partition of `0..n`.
    #[must_use]
    pub fn is_partition_of(&self, n: usize) -> bool {
        let mut seen = SiteSet::EMPTY;
        for p in &self.partitions {
            if p.is_empty() || !seen.is_disjoint(*p) {
                return false;
            }
            seen = seen.union(*p);
        }
        seen == SiteSet::all(n)
    }
}

/// Report for one step: which partitions accepted an update.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepReport {
    /// The step's label.
    pub label: String,
    /// Outcome per partition, in step order.
    pub outcomes: Vec<(SiteSet, UpdateOutcome)>,
}

impl StepReport {
    /// The distinguished partition of this step, if any. Pessimism
    /// guarantees at most one.
    #[must_use]
    pub fn distinguished(&self) -> Option<SiteSet> {
        self.outcomes
            .iter()
            .find(|(_, o)| o.committed())
            .map(|(p, _)| *p)
    }
}

impl fmt::Display for StepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.label)?;
        match self.distinguished() {
            Some(p) => write!(f, "distinguished partition {p}"),
            None => write!(f, "no distinguished partition"),
        }
    }
}

/// Run a partition-graph scenario against one algorithm, processing one
/// update per partition per step.
pub fn run_scenario<A: ReplicaControl>(
    system: &mut ReplicaSystem<A>,
    steps: &[ScenarioStep],
) -> Vec<StepReport> {
    steps
        .iter()
        .map(|step| {
            debug_assert!(step.is_partition_of(system.n()), "malformed step");
            let outcomes = step
                .partitions
                .iter()
                .map(|&p| (p, system.attempt_update(p)))
                .collect();
            StepReport {
                label: step.label.clone(),
                outcomes,
            }
        })
        .collect()
}

/// The partition graph of the paper's Fig. 1: five sites, four epochs.
///
/// * time 1: `ABC | DE`
/// * time 2: `AB | C | DE`
/// * time 3: `A | B | CDE`
/// * time 4: `A | BC | DE`
///
/// (Times 2–4 are inferred from Section VI-A's narrative: partition ABC
/// fragments into AB and C at time 2; C joins DE at time 3 while AB
/// splits; at time 4 B and C form a partition.)
#[must_use]
pub fn fig1_partition_graph() -> Vec<ScenarioStep> {
    vec![
        ScenarioStep::parse("time 1", &["ABC", "DE"]),
        ScenarioStep::parse("time 2", &["AB", "C", "DE"]),
        ScenarioStep::parse("time 3", &["A", "B", "CDE"]),
        ScenarioStep::parse("time 4", &["A", "BC", "DE"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{DynamicLinear, DynamicVoting, Hybrid, StaticVoting};
    use crate::meta::Distinguished;

    fn set(s: &str) -> SiteSet {
        SiteSet::parse(s).unwrap()
    }

    #[test]
    fn fresh_system_updates_in_full_partition() {
        let mut sys = ReplicaSystem::new(5, Hybrid::new());
        let outcome = sys.attempt_update(SiteSet::all(5));
        assert!(outcome.committed());
        assert_eq!(outcome.committed_version, Some(1));
        assert_eq!(outcome.participants, 5);
        assert!(sys.metas().iter().all(|m| m.version == 1));
    }

    #[test]
    fn minority_partition_is_rejected_without_state_change() {
        let mut sys = ReplicaSystem::new(5, DynamicVoting::new());
        let before = sys.metas().to_vec();
        let outcome = sys.attempt_update(set("AB"));
        assert!(!outcome.committed());
        assert_eq!(sys.metas(), &before[..]);
    }

    #[test]
    fn catch_up_brings_stale_members_current() {
        let mut sys = ReplicaSystem::new(5, DynamicVoting::new());
        sys.attempt_update(set("ABCD")); // v1, SC=4
        sys.attempt_update(set("ABC")); // v2, SC=3 (D, E stale)
        let out = sys.attempt_update(set("ABDE")); // 2 of 3 current + stale D, E
        assert!(out.committed());
        assert_eq!(sys.meta(SiteId(3)).version, 3);
        assert_eq!(sys.meta(SiteId(3)).cardinality, 4);
        // E caught up too; C is the one left behind.
        assert_eq!(sys.meta(SiteId(4)).version, 3);
        assert_eq!(sys.meta(SiteId(2)).version, 2);
    }

    #[test]
    fn scenario_step_partition_validation() {
        assert!(ScenarioStep::parse("t", &["ABC", "DE"]).is_partition_of(5));
        assert!(!ScenarioStep::parse("t", &["ABC", "CE"]).is_partition_of(5)); // overlap
        assert!(!ScenarioStep::parse("t", &["ABC"]).is_partition_of(5)); // missing sites
    }

    #[test]
    fn at_most_one_distinguished_partition_per_step() {
        // Pessimism sanity check over the Fig. 1 scenario for all kinds.
        for kind in crate::algorithm::AlgorithmKind::ALL {
            let mut sys = ReplicaSystem::new(5, kind.instantiate(5));
            let reports = run_scenario(&mut sys, &fig1_partition_graph());
            for report in reports {
                let committed: usize = report
                    .outcomes
                    .iter()
                    .filter(|(_, o)| o.committed())
                    .count();
                assert!(committed <= 1, "{kind}: {}", report.label);
            }
        }
    }

    #[test]
    fn fig1_voting_behaviour() {
        let mut sys = ReplicaSystem::new(5, StaticVoting::uniform(5));
        let reports = run_scenario(&mut sys, &fig1_partition_graph());
        assert_eq!(reports[0].distinguished(), Some(set("ABC")));
        assert_eq!(reports[1].distinguished(), None);
        assert_eq!(reports[2].distinguished(), Some(set("CDE")));
        assert_eq!(reports[3].distinguished(), None);
    }

    #[test]
    fn fig1_dynamic_voting_behaviour() {
        let mut sys = ReplicaSystem::new(5, DynamicVoting::new());
        let reports = run_scenario(&mut sys, &fig1_partition_graph());
        assert_eq!(reports[0].distinguished(), Some(set("ABC")));
        assert_eq!(reports[1].distinguished(), Some(set("AB")));
        assert_eq!(reports[2].distinguished(), None);
        assert_eq!(reports[3].distinguished(), None);
    }

    #[test]
    fn fig1_dynamic_linear_behaviour() {
        let mut sys = ReplicaSystem::new(5, DynamicLinear::new());
        let reports = run_scenario(&mut sys, &fig1_partition_graph());
        assert_eq!(reports[0].distinguished(), Some(set("ABC")));
        assert_eq!(reports[1].distinguished(), Some(set("AB")));
        assert_eq!(reports[2].distinguished(), Some(set("A")));
        assert_eq!(reports[3].distinguished(), Some(set("A")));
    }

    #[test]
    fn fig1_hybrid_behaviour() {
        let mut sys = ReplicaSystem::new(5, Hybrid::new());
        let reports = run_scenario(&mut sys, &fig1_partition_graph());
        assert_eq!(reports[0].distinguished(), Some(set("ABC")));
        assert_eq!(reports[1].distinguished(), Some(set("AB")));
        assert_eq!(reports[2].distinguished(), None);
        assert_eq!(reports[3].distinguished(), Some(set("BC")));
    }

    #[test]
    fn section_iv_worked_example() {
        // The full worked example of Section IV, state by state.
        let mut sys = ReplicaSystem::new(5, Hybrid::new());
        // Bring the system to version 9 as in the paper's opening table.
        for _ in 0..9 {
            assert!(sys.attempt_update(SiteSet::all(5)).committed());
        }
        for meta in sys.metas() {
            assert_eq!(meta.version, 9);
            assert_eq!(meta.cardinality, 5);
        }
        // Update at A, reaching B and C only: version 10, SC=3, DS=ABC.
        assert!(sys.attempt_update(set("ABC")).committed());
        for s in set("ABC").iter() {
            assert_eq!(sys.meta(s).version, 10);
            assert_eq!(sys.meta(s).cardinality, 3);
            assert_eq!(sys.meta(s).distinguished, Distinguished::Trio(set("ABC")));
        }
        assert_eq!(sys.meta(SiteId(3)).version, 9);
        // Update at A reaching C only: static phase, SC/DS unchanged.
        assert!(sys.attempt_update(set("AC")).committed());
        for s in set("AC").iter() {
            assert_eq!(sys.meta(s).version, 11);
            assert_eq!(sys.meta(s).cardinality, 3);
            assert_eq!(sys.meta(s).distinguished, Distinguished::Trio(set("ABC")));
        }
        assert_eq!(sys.meta(SiteId(1)).version, 10);
        // Update at D reaching B, C, E: B and C are two of the trio, so
        // the update proceeds and the dynamic phase resumes with SC=4,
        // DS=B. (Neither dynamic voting nor dynamic-linear permits this.)
        assert!(sys.attempt_update(set("BCDE")).committed());
        for s in set("BCDE").iter() {
            assert_eq!(sys.meta(s).version, 12);
            assert_eq!(sys.meta(s).cardinality, 4);
            assert_eq!(sys.meta(s).distinguished, Distinguished::Single(SiteId(1)));
        }
        // Update at E reaching B only: half of four, including DS=B.
        assert!(sys.attempt_update(set("BE")).committed());
        for s in set("BE").iter() {
            assert_eq!(sys.meta(s).version, 13);
            assert_eq!(sys.meta(s).cardinality, 2);
            assert_eq!(sys.meta(s).distinguished, Distinguished::Single(SiteId(1)));
        }
        assert_eq!(sys.meta(SiteId(0)).version, 11);
    }

    #[test]
    fn empty_partition_is_rejected() {
        let mut sys = ReplicaSystem::new(3, Hybrid::new());
        let out = sys.attempt_update(SiteSet::EMPTY);
        assert_eq!(out.verdict, Verdict::Rejected);
    }

    #[test]
    fn state_table_mentions_every_site() {
        let sys = ReplicaSystem::new(3, Hybrid::new());
        let table = sys.state_table();
        for s in ["A:", "B:", "C:"] {
            assert!(table.contains(s));
        }
    }
}
