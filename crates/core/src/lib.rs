//! # dynvote-core — replica control by dynamic voting
//!
//! A from-scratch implementation of the family of *pessimistic replica
//! control algorithms* around **dynamic voting** (Jajodia & Mutchler,
//! SIGMOD 1987) and the **hybrid static/dynamic algorithm** of Jajodia &
//! Mutchler's "A Hybrid Replica Control Algorithm Combining Static and
//! Dynamic Voting".
//!
//! A replicated file is stored at `n` sites. Site and link failures may
//! split the network into partitions; a pessimistic algorithm allows
//! updates in at most one partition at a time (the *distinguished
//! partition*) so that copies never diverge. The algorithms here differ
//! only in how the distinguished partition is defined:
//!
//! * [`algorithms::StaticVoting`] — a fixed (weighted) majority;
//! * [`algorithms::DynamicVoting`] — a majority of the copies that were
//!   written by the most recent update;
//! * [`algorithms::DynamicLinear`] — dynamic voting plus a
//!   distinguished-site tie-break, letting the quorum shrink to one site;
//! * [`algorithms::Hybrid`] — dynamic-linear that freezes into a static
//!   three-site scheme when the quorum reaches three sites;
//! * [`algorithms::ModifiedHybrid`] / [`algorithms::OptimalCandidate`] —
//!   the Section VII refinements.
//!
//! ## Quickstart
//!
//! ```
//! use dynvote_core::{ReplicaSystem, SiteSet, algorithms::Hybrid};
//!
//! // A file replicated at five sites, managed by the hybrid algorithm.
//! let mut system = ReplicaSystem::new(5, Hybrid::new());
//!
//! // The full network commits an update.
//! assert!(system.attempt_update(SiteSet::all(5)).committed());
//!
//! // The network partitions; A, B and C still form a quorum...
//! let abc = SiteSet::parse("ABC").unwrap();
//! assert!(system.attempt_update(abc).committed());
//!
//! // ...and the minority partition is refused.
//! let de = SiteSet::parse("DE").unwrap();
//! assert!(!system.attempt_update(de).committed());
//! ```
//!
//! The decision kernel ([`ReplicaControl`]) is pure; everything driving
//! real executions (message-level protocol, Markov availability analysis,
//! Monte-Carlo simulation) lives in the sibling crates `dynvote-sim`,
//! `dynvote-markov` and `dynvote-mc`, all consuming this kernel.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod algorithm;
pub mod algorithms;
mod backoff;
mod config;
mod meta;
pub mod multifile;
pub mod par;
pub mod quorum;
pub mod scenario;
mod site;
mod timer;
mod view;

pub use algorithm::{AcceptRule, AlgorithmKind, ReplicaControl, UnknownAlgorithm, Verdict};
pub use backoff::BackoffPolicy;
pub use config::{
    check_non_negative, check_positive, check_probability, check_site_count, ConfigError,
};
pub use meta::{CopyMeta, Distinguished};
pub use multifile::{FileId, MultiFileSystem, Transaction, TransactionOutcome};
pub use scenario::{
    fig1_partition_graph, run_scenario, ReplicaSystem, ScenarioStep, StepReport, UpdateOutcome,
};
pub use site::{LinearOrder, SiteId, SiteSet, MAX_SITES};
pub use timer::{TimerWheel, VirtualInstant};
pub use view::{PartitionView, ViewError};
