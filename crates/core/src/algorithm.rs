//! The replica-control abstraction shared by every algorithm in the family.
//!
//! A replica control algorithm, in the sense of this crate, is a pure
//! decision kernel with two operations:
//!
//! * [`ReplicaControl::decide`] — the `Is_Distinguished` routine of
//!   Section V-B: given the coordinator's [`PartitionView`], is the
//!   partition the distinguished one, and by which rule?
//! * [`ReplicaControl::commit_meta`] — the metadata part of the
//!   `Do_Update` routine: the `(VN, SC, DS)` triple installed at every
//!   participant by a successful commit.
//!
//! The kernel is deliberately free of I/O, clocks and randomness: the
//! message-level protocol (`dynvote-sim`), the Markov analysis
//! (`dynvote-markov`) and the Monte-Carlo model simulator (`dynvote-mc`)
//! all drive these same two functions, so the three evaluation paths
//! cross-validate the kernel.

use crate::meta::CopyMeta;
use crate::site::SiteId;
use crate::view::PartitionView;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which rule of `Is_Distinguished` admitted the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceptRule {
    /// `card(I) > N/2` — step 3 of `Is_Distinguished` (all dynamic
    /// algorithms), or the plain majority of static voting.
    Majority,
    /// `card(I) = N/2` and the distinguished site lies in `I` — step 4
    /// (dynamic-linear tie-break).
    TieBreak,
    /// `N = 3` and the partition holds two or more of the trio on the
    /// distinguished sites list — step 5 (the hybrid's static phase).
    TrioQuorum,
    /// Static voting: the members hold strictly more than half the votes.
    VoteQuorum,
    /// `SC = 2` and both current copies are in the partition (modified
    /// hybrid / optimal candidate, Section VII case 2).
    PairBothCurrent,
    /// `SC = 2`, exactly one current copy present, plus the named
    /// distinguished (down) site — modified hybrid, Section VII case 2.
    PairTieBreak,
    /// `SC = 2`, one current copy present, plus more than half of all `n`
    /// sites — the "optimal candidate" of Section VII, footnote 6.
    PairNetworkMajority,
}

impl fmt::Display for AcceptRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            AcceptRule::Majority => "majority of current copies",
            AcceptRule::TieBreak => "half of current copies incl. distinguished site",
            AcceptRule::TrioQuorum => "two of the three distinguished sites",
            AcceptRule::VoteQuorum => "static vote quorum",
            AcceptRule::PairBothCurrent => "both current copies",
            AcceptRule::PairTieBreak => "one current copy plus distinguished site",
            AcceptRule::PairNetworkMajority => "one current copy plus network majority",
        };
        f.write_str(text)
    }
}

/// Outcome of `Is_Distinguished` for one partition view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The partition is distinguished; updates may commit.
    Accepted(AcceptRule),
    /// The partition is not distinguished; the update must abort.
    Rejected,
}

impl Verdict {
    /// True if the partition was found distinguished.
    #[must_use]
    pub fn is_accepted(self) -> bool {
        matches!(self, Verdict::Accepted(_))
    }

    /// The admitting rule, if accepted.
    #[must_use]
    pub fn rule(self) -> Option<AcceptRule> {
        match self {
            Verdict::Accepted(rule) => Some(rule),
            Verdict::Rejected => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Accepted(rule) => write!(f, "distinguished ({rule})"),
            Verdict::Rejected => write!(f, "not distinguished"),
        }
    }
}

/// A pessimistic replica control algorithm: the pure decision kernel.
///
/// # Contract
///
/// * `decide` must be a pure function of the view.
/// * `commit_meta` may only be called on a view for which `decide`
///   returned [`Verdict::Accepted`]; implementations `debug_assert` this.
/// * For a fixed per-version metadata state, the set of site sets that
///   `decide` accepts must be a *coterie-dominating* family: any two
///   accepted partitions for the same maximum version intersect. This is
///   the pessimism requirement of Theorem 1 and is checked by property
///   tests in this crate.
pub trait ReplicaControl: fmt::Debug + Send + Sync {
    /// Short stable identifier, e.g. `"hybrid"`.
    fn name(&self) -> &'static str;

    /// The `Is_Distinguished` routine.
    fn decide(&self, view: &PartitionView<'_>) -> Verdict;

    /// The metadata installed by `Do_Update` at all participants.
    ///
    /// # Panics (debug)
    ///
    /// If the view is not distinguished.
    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta;

    /// Convenience wrapper over [`ReplicaControl::decide`].
    fn is_distinguished(&self, view: &PartitionView<'_>) -> bool {
        self.decide(view).is_accepted()
    }
}

impl<T: ReplicaControl + ?Sized> ReplicaControl for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        (**self).decide(view)
    }
    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        (**self).commit_meta(view)
    }
}

impl<T: ReplicaControl + ?Sized> ReplicaControl for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn decide(&self, view: &PartitionView<'_>) -> Verdict {
        (**self).decide(view)
    }
    fn commit_meta(&self, view: &PartitionView<'_>) -> CopyMeta {
        (**self).commit_meta(view)
    }
}

/// Every algorithm implemented by this crate, for CLI/bench selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Static majority voting (Gifford/Thomas), uniform one-vote-per-site.
    Voting,
    /// Dynamic voting (Jajodia–Mutchler, SIGMOD 1987).
    DynamicVoting,
    /// Dynamic voting with linearly ordered copies (VLDB 1987).
    DynamicLinear,
    /// The hybrid algorithm (this paper's contribution).
    Hybrid,
    /// Section VII modified hybrid (Changes 1 and 2).
    ModifiedHybrid,
    /// Section VII, footnote 6: the conjectured-optimal variant.
    OptimalCandidate,
}

impl AlgorithmKind {
    /// All algorithm kinds, in presentation order.
    pub const ALL: [AlgorithmKind; 6] = [
        AlgorithmKind::Voting,
        AlgorithmKind::DynamicVoting,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::Hybrid,
        AlgorithmKind::ModifiedHybrid,
        AlgorithmKind::OptimalCandidate,
    ];

    /// Instantiate the algorithm for an `n`-site file with uniform votes.
    #[must_use]
    pub fn instantiate(self, n: usize) -> Box<dyn ReplicaControl> {
        use crate::algorithms::*;
        match self {
            AlgorithmKind::Voting => Box::new(StaticVoting::uniform(n)),
            AlgorithmKind::DynamicVoting => Box::new(DynamicVoting::new()),
            AlgorithmKind::DynamicLinear => Box::new(DynamicLinear::new()),
            AlgorithmKind::Hybrid => Box::new(Hybrid::new()),
            AlgorithmKind::ModifiedHybrid => Box::new(ModifiedHybrid::new()),
            AlgorithmKind::OptimalCandidate => Box::new(OptimalCandidate::new()),
        }
    }

    /// Short stable identifier used by the CLI and output tables.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            AlgorithmKind::Voting => "voting",
            AlgorithmKind::DynamicVoting => "dynamic",
            AlgorithmKind::DynamicLinear => "dynamic-linear",
            AlgorithmKind::Hybrid => "hybrid",
            AlgorithmKind::ModifiedHybrid => "modified-hybrid",
            AlgorithmKind::OptimalCandidate => "optimal-candidate",
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Error returned when parsing an unknown algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithm(pub String);

impl fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown algorithm {:?}", self.0)
    }
}

impl std::error::Error for UnknownAlgorithm {}

impl FromStr for AlgorithmKind {
    type Err = UnknownAlgorithm;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgorithmKind::ALL
            .iter()
            .copied()
            .find(|k| k.id() == s)
            .ok_or_else(|| UnknownAlgorithm(s.to_owned()))
    }
}

/// Helper shared by the dynamic algorithms: look up the single
/// distinguished site of the current copies, if one is recorded.
pub(crate) fn current_single_ds(view: &PartitionView<'_>) -> Option<SiteId> {
    view.current_meta().distinguished.single()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(kind.id().parse::<AlgorithmKind>().unwrap(), kind);
        }
        assert!("nonsense".parse::<AlgorithmKind>().is_err());
    }

    #[test]
    fn instantiate_produces_matching_names() {
        for kind in AlgorithmKind::ALL {
            let algo = kind.instantiate(5);
            assert_eq!(algo.name(), kind.id());
        }
    }

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Accepted(AcceptRule::Majority).is_accepted());
        assert!(!Verdict::Rejected.is_accepted());
        assert_eq!(
            Verdict::Accepted(AcceptRule::TieBreak).rule(),
            Some(AcceptRule::TieBreak)
        );
        assert_eq!(Verdict::Rejected.rule(), None);
    }

    #[test]
    fn display_strings_are_informative() {
        let text = Verdict::Accepted(AcceptRule::TrioQuorum).to_string();
        assert!(text.contains("distinguished"));
        assert!(text.contains("trio") || text.contains("three"));
        assert_eq!(Verdict::Rejected.to_string(), "not distinguished");
    }
}
