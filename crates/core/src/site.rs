//! Site identifiers, site sets, and the a-priori total ordering on sites.
//!
//! The paper (Section V-A) assigns each replicated file an *a priori* total
//! ordering on the sites holding a copy. The ordering is used by
//! dynamic-linear and the hybrid algorithm to select the *distinguished
//! site* when an even number of sites participates in an update.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of replica sites supported by [`SiteSet`]'s bitset
/// representation. The paper evaluates 3–20 sites; 64 leaves generous room.
pub const MAX_SITES: usize = 64;

/// Identifier of a replica site, an index in `0..MAX_SITES`.
///
/// Sites are displayed as letters `A`, `B`, `C`, … (wrapping to `S26`,
/// `S27`, … past `Z`) to match the paper's examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u8);

impl SiteId {
    /// Construct a site id, panicking if `index` is out of range.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index < MAX_SITES, "site index {index} out of range");
        SiteId(index as u8)
    }

    /// The zero-based index of this site.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0) as char)
        } else {
            write!(f, "S{}", self.0)
        }
    }
}

/// A set of sites, represented as a 64-bit bitset.
///
/// `SiteSet` is the universal currency of the crate: partitions, quorums,
/// distinguished-sites lists and vote tallies are all site sets.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SiteSet(u64);

impl SiteSet {
    /// The empty set.
    pub const EMPTY: SiteSet = SiteSet(0);

    /// Set containing the sites `0..n`.
    #[must_use]
    pub fn all(n: usize) -> Self {
        assert!(n <= MAX_SITES, "site count {n} out of range");
        if n == MAX_SITES {
            SiteSet(u64::MAX)
        } else {
            SiteSet((1u64 << n) - 1)
        }
    }

    /// Set containing exactly `site`.
    #[must_use]
    pub fn singleton(site: SiteId) -> Self {
        SiteSet(1u64 << site.index())
    }

    /// Build a set from an iterator of site ids.
    pub fn from_sites<I: IntoIterator<Item = SiteId>>(sites: I) -> Self {
        let mut s = SiteSet::EMPTY;
        for site in sites {
            s.insert(site);
        }
        s
    }

    /// Parse a compact site list such as `"ABC"` (letters `A`–`Z` only).
    ///
    /// Returns `None` on any character outside `A..=Z`/`a..=z`.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let mut s = SiteSet::EMPTY;
        for ch in text.chars() {
            let upper = ch.to_ascii_uppercase();
            if !upper.is_ascii_uppercase() {
                return None;
            }
            s.insert(SiteId(upper as u8 - b'A'));
        }
        Some(s)
    }

    /// Number of sites in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set has no members.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if `site` is a member.
    #[must_use]
    pub fn contains(self, site: SiteId) -> bool {
        self.0 & (1u64 << site.index()) != 0
    }

    /// Insert a site (idempotent).
    pub fn insert(&mut self, site: SiteId) {
        self.0 |= 1u64 << site.index();
    }

    /// Remove a site (idempotent).
    pub fn remove(&mut self, site: SiteId) {
        self.0 &= !(1u64 << site.index());
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: SiteSet) -> SiteSet {
        SiteSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: SiteSet) -> SiteSet {
        SiteSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: SiteSet) -> SiteSet {
        SiteSet(self.0 & !other.0)
    }

    /// True if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: SiteSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if the two sets share no member.
    #[must_use]
    pub fn is_disjoint(self, other: SiteSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterate over member sites in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = SiteId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(SiteId(idx))
            }
        })
    }

    /// The member with the smallest index, if any.
    #[must_use]
    pub fn first(self) -> Option<SiteId> {
        if self.0 == 0 {
            None
        } else {
            Some(SiteId(self.0.trailing_zeros() as u8))
        }
    }

    /// The raw bit representation (stable across calls; bit `i` = site `i`).
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstruct from a raw bit representation.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        SiteSet(bits)
    }
}

impl FromIterator<SiteId> for SiteSet {
    fn from_iter<I: IntoIterator<Item = SiteId>>(iter: I) -> Self {
        SiteSet::from_sites(iter)
    }
}

impl fmt::Display for SiteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        for site in self.iter() {
            write!(f, "{site}")?;
        }
        Ok(())
    }
}

/// The a-priori total ordering (`>` in the paper) on the sites of one file.
///
/// `rank[i]` is the priority of site `i`; *greater rank wins*. The paper's
/// examples select distinguished sites "according to the linear order" such
/// that in `{B, C, D, E}` the winner is `B` — i.e. lexicographically earlier
/// site letters are *greater* in the order. [`LinearOrder::lexicographic`]
/// reproduces that convention; [`LinearOrder::new`] accepts any permutation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearOrder {
    rank: Vec<u32>,
}

impl LinearOrder {
    /// Build an order from explicit ranks (`rank[i]` = priority of site `i`;
    /// larger is greater). Ranks must be distinct.
    #[must_use]
    pub fn new(rank: Vec<u32>) -> Self {
        let mut sorted = rank.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rank.len(), "ranks must be distinct");
        LinearOrder { rank }
    }

    /// The paper's convention: site `A` is greatest, then `B`, and so on.
    #[must_use]
    pub fn lexicographic(n: usize) -> Self {
        assert!(n <= MAX_SITES);
        LinearOrder {
            rank: (0..n).map(|i| (n - i) as u32).collect(),
        }
    }

    /// Number of sites covered by the order.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True if the order covers no sites.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// The priority of `site` (larger is greater in the order).
    #[must_use]
    pub fn rank(&self, site: SiteId) -> u32 {
        self.rank[site.index()]
    }

    /// True if `a > b` in the order.
    #[must_use]
    pub fn greater(&self, a: SiteId, b: SiteId) -> bool {
        self.rank(a) > self.rank(b)
    }

    /// The greatest member of `set`, or `None` if `set` is empty.
    ///
    /// This is the *distinguished site* selection rule of dynamic-linear:
    /// "the site which is greater (in the linear ordering for the file)
    /// than all other sites that participated in the most recent update".
    #[must_use]
    pub fn max_of(&self, set: SiteSet) -> Option<SiteId> {
        set.iter().max_by_key(|s| self.rank(*s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_display_is_letters() {
        assert_eq!(SiteId(0).to_string(), "A");
        assert_eq!(SiteId(4).to_string(), "E");
        assert_eq!(SiteId(25).to_string(), "Z");
        assert_eq!(SiteId(26).to_string(), "S26");
    }

    #[test]
    fn parse_round_trips_display() {
        let set = SiteSet::parse("ACE").unwrap();
        assert_eq!(set.to_string(), "ACE");
        assert_eq!(set.len(), 3);
        assert!(set.contains(SiteId(0)));
        assert!(!set.contains(SiteId(1)));
    }

    #[test]
    fn parse_rejects_non_letters() {
        assert!(SiteSet::parse("A1").is_none());
        assert_eq!(SiteSet::parse(""), Some(SiteSet::EMPTY));
    }

    #[test]
    fn all_covers_exactly_n() {
        let set = SiteSet::all(5);
        assert_eq!(set.len(), 5);
        assert!(set.contains(SiteId(4)));
        assert!(!set.contains(SiteId(5)));
        assert_eq!(SiteSet::all(64).len(), 64);
    }

    #[test]
    fn set_algebra() {
        let abc = SiteSet::parse("ABC").unwrap();
        let bcd = SiteSet::parse("BCD").unwrap();
        assert_eq!(abc.union(bcd), SiteSet::parse("ABCD").unwrap());
        assert_eq!(abc.intersection(bcd), SiteSet::parse("BC").unwrap());
        assert_eq!(abc.difference(bcd), SiteSet::parse("A").unwrap());
        assert!(SiteSet::parse("AB").unwrap().is_subset(abc));
        assert!(!abc.is_subset(bcd));
        assert!(abc.is_disjoint(SiteSet::parse("E").unwrap()));
        assert!(!abc.is_disjoint(bcd));
    }

    #[test]
    fn insert_remove_are_idempotent() {
        let mut s = SiteSet::EMPTY;
        s.insert(SiteId(3));
        s.insert(SiteId(3));
        assert_eq!(s.len(), 1);
        s.remove(SiteId(3));
        s.remove(SiteId(3));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_sorted_by_index() {
        let set = SiteSet::parse("DBAC").unwrap();
        let ids: Vec<usize> = set.iter().map(SiteId::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(set.first(), Some(SiteId(0)));
    }

    #[test]
    fn lexicographic_order_prefers_earlier_letters() {
        // Matches the paper's example: the distinguished site of {B,C,D,E}
        // is B.
        let order = LinearOrder::lexicographic(5);
        let bcde = SiteSet::parse("BCDE").unwrap();
        assert_eq!(order.max_of(bcde), Some(SiteId(1)));
        assert!(order.greater(SiteId(0), SiteId(4)));
    }

    #[test]
    fn custom_order_is_honoured() {
        // Rank E highest.
        let order = LinearOrder::new(vec![1, 2, 3, 4, 5]);
        let all = SiteSet::all(5);
        assert_eq!(order.max_of(all), Some(SiteId(4)));
    }

    #[test]
    #[should_panic(expected = "ranks must be distinct")]
    fn duplicate_ranks_panic() {
        let _ = LinearOrder::new(vec![1, 1, 2]);
    }

    #[test]
    fn max_of_empty_is_none() {
        let order = LinearOrder::lexicographic(3);
        assert_eq!(order.max_of(SiteSet::EMPTY), None);
    }

    #[test]
    fn bits_round_trip() {
        let set = SiteSet::parse("AFZ").unwrap();
        assert_eq!(SiteSet::from_bits(set.bits()), set);
    }
}
