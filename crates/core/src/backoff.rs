//! Exponential backoff with jitter — the shared retry-timer policy.
//!
//! Both the discrete-event simulator (`dynvote-sim`) and the live
//! cluster runtime (`dynvote-cluster`) arm retry timers for the
//! cooperative termination protocol: a prepared subordinate that never
//! hears the coordinator's decision re-probes its peers, doubling the
//! delay between rounds so that simultaneously blocked sites do not
//! synchronize into retry storms. The computation used to live inside
//! the simulator's engine; it is extracted here so every runtime backs
//! off identically and the policy can be tuned (and tested) in one
//! place.
//!
//! Delays are plain `f64` time units: the simulator interprets them as
//! simulated time, the cluster runtime as seconds of wall-clock time.

use serde::{Deserialize, Serialize};

/// Exponential backoff with decorrelating jitter.
///
/// Round `r` (counted from 0) waits `initial · 2^r`, capped at `max`,
/// then scaled by a uniform factor in `[1 − jitter, 1 + jitter)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first retry round.
    pub initial: f64,
    /// Upper bound on the (un-jittered) delay.
    pub max: f64,
    /// Jitter fraction in `[0, 1)`: `0` disables jitter entirely.
    pub jitter: f64,
}

impl BackoffPolicy {
    /// A jitter-free policy doubling from `initial` up to `max`.
    #[must_use]
    pub const fn new(initial: f64, max: f64) -> Self {
        BackoffPolicy {
            initial,
            max,
            jitter: 0.0,
        }
    }

    /// The same policy with a jitter fraction attached.
    #[must_use]
    pub const fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// The un-jittered delay for retry round `rounds` (counted from 0):
    /// `initial · 2^rounds`, capped at `max`.
    #[must_use]
    pub fn base_delay(&self, rounds: u32) -> f64 {
        // 2^62 already dwarfs any sane max/initial ratio.
        let factor = f64::powi(2.0, rounds.min(62) as i32);
        (self.initial * factor).min(self.max)
    }

    /// Scale an arbitrary base delay by the policy's jitter fraction,
    /// given a uniform draw `u ∈ [0, 1)`: the result is uniform in
    /// `[base·(1 − jitter), base·(1 + jitter))`. With `jitter == 0` the
    /// base is returned untouched (and callers need not consume
    /// randomness at all).
    #[must_use]
    pub fn scale(&self, base: f64, u: f64) -> f64 {
        if self.jitter > 0.0 {
            base * (1.0 - self.jitter + 2.0 * self.jitter * u)
        } else {
            base
        }
    }

    /// The jittered delay for retry round `rounds`, given a uniform
    /// draw `u ∈ [0, 1)`.
    #[must_use]
    pub fn delay(&self, rounds: u32, u: f64) -> f64 {
        self.scale(self.base_delay(rounds), u)
    }

    /// True if every field is finite and within its documented range
    /// (`0 < initial ≤ max`, `0 ≤ jitter < 1`).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.initial.is_finite()
            && self.initial > 0.0
            && self.max.is_finite()
            && self.max >= self.initial
            && self.jitter.is_finite()
            && (0.0..1.0).contains(&self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_and_caps() {
        let p = BackoffPolicy::new(0.25, 2.0);
        assert_eq!(p.base_delay(0), 0.25);
        assert_eq!(p.base_delay(1), 0.5);
        assert_eq!(p.base_delay(2), 1.0);
        assert_eq!(p.base_delay(3), 2.0);
        assert_eq!(p.base_delay(40), 2.0);
        assert_eq!(
            BackoffPolicy::new(0.02, 0.02).base_delay(5),
            0.02,
            "flat when max == initial"
        );
    }

    #[test]
    fn jitter_spreads_around_the_base() {
        let p = BackoffPolicy::new(1.0, 8.0).with_jitter(0.5);
        assert_eq!(p.delay(0, 0.0), 0.5);
        assert_eq!(p.delay(0, 0.5), 1.0);
        assert!((p.delay(0, 1.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_jitter_is_exact() {
        let p = BackoffPolicy::new(0.25, 2.0);
        assert_eq!(p.delay(2, 0.987), 1.0);
        assert_eq!(p.scale(7.0, 0.1), 7.0);
    }

    #[test]
    fn validity() {
        assert!(BackoffPolicy::new(0.25, 2.0).is_valid());
        assert!(BackoffPolicy::new(0.25, 2.0).with_jitter(0.3).is_valid());
        assert!(!BackoffPolicy::new(0.0, 2.0).is_valid());
        assert!(!BackoffPolicy::new(0.5, 0.25).is_valid());
        assert!(!BackoffPolicy::new(0.25, 2.0).with_jitter(1.0).is_valid());
        assert!(!BackoffPolicy::new(f64::NAN, 2.0).is_valid());
    }

    #[test]
    fn serde_round_trip() {
        let p = BackoffPolicy::new(0.25, 2.0).with_jitter(0.2);
        let json = serde_json::to_string(&p).unwrap();
        let back: BackoffPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
