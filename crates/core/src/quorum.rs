//! Static quorum machinery: weighted vote assignments and coteries.
//!
//! Static voting ([Gifford 1979], [Thomas 1979]) assigns each site a
//! number of votes; a partition may update the file when its members hold
//! strictly more than half of the total votes. The set of minimal such
//! partitions forms a *coterie* ([Garcia-Molina & Barbara 1985], the
//! paper's refs \[5\], \[18\], \[26\]): a family of pairwise-intersecting,
//! mutually non-containing site sets. Section VII of the paper frames
//! every algorithm in the family as a (dynamically re-assigned) coterie;
//! this module provides the static building blocks and the predicates the
//! property tests use to certify pessimism.

use crate::site::{SiteId, SiteSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A weighted vote assignment over `n` sites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoteAssignment {
    votes: Vec<u64>,
}

impl VoteAssignment {
    /// One vote per site (the assignment used throughout the paper's
    /// evaluation).
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        VoteAssignment { votes: vec![1; n] }
    }

    /// An explicit assignment; zero-vote sites (witness-less copies) are
    /// permitted.
    #[must_use]
    pub fn new(votes: Vec<u64>) -> Self {
        assert!(!votes.is_empty(), "vote assignment must cover >= 1 site");
        assert!(
            votes.iter().any(|&v| v > 0),
            "at least one site must hold votes"
        );
        VoteAssignment { votes }
    }

    /// Number of sites covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// True if no sites are covered (never true for a valid assignment).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Votes held by one site.
    #[must_use]
    pub fn votes_of(&self, site: SiteId) -> u64 {
        self.votes[site.index()]
    }

    /// Total votes in the system.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.votes.iter().sum()
    }

    /// Votes held collectively by `set`.
    #[must_use]
    pub fn tally(&self, set: SiteSet) -> u64 {
        set.iter().map(|s| self.votes_of(s)).sum()
    }

    /// True if `set` holds strictly more than half of all votes — the
    /// static-voting distinguished-partition test.
    #[must_use]
    pub fn is_majority(&self, set: SiteSet) -> bool {
        2 * self.tally(set) > self.total()
    }

    /// Enumerate the coterie induced by this assignment: all *minimal*
    /// majorities.
    ///
    /// Exponential in `n`; intended for tests and small `n` (≤ ~20).
    #[must_use]
    pub fn coterie(&self) -> Coterie {
        let n = self.len();
        let mut quorums: Vec<SiteSet> = Vec::new();
        for bits in 1u64..(1u64 << n) {
            let set = SiteSet::from_bits(bits);
            if self.is_majority(set) {
                quorums.push(set);
            }
        }
        Coterie::minimalize(quorums)
    }
}

impl fmt::Display for VoteAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.votes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}:{v}", SiteId::new(i))?;
        }
        write!(f, "]")
    }
}

/// A coterie: an antichain of pairwise-intersecting quorums.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coterie {
    quorums: Vec<SiteSet>,
}

impl Coterie {
    /// Build a coterie from a quorum family by dropping non-minimal
    /// members. Panics if the remaining family violates the intersection
    /// property.
    #[must_use]
    pub fn minimalize(mut quorums: Vec<SiteSet>) -> Self {
        quorums.sort_by_key(|q| (q.len(), q.bits()));
        quorums.dedup();
        let mut minimal: Vec<SiteSet> = Vec::new();
        for q in quorums {
            if !minimal.iter().any(|m| m.is_subset(q)) {
                minimal.push(q);
            }
        }
        let coterie = Coterie { quorums: minimal };
        assert!(
            coterie.intersecting(),
            "quorum family violates the coterie intersection property"
        );
        coterie
    }

    /// Build from already-minimal quorums, returning `None` if the family
    /// is not an intersecting antichain.
    #[must_use]
    pub fn try_new(quorums: Vec<SiteSet>) -> Option<Self> {
        let coterie = Coterie { quorums };
        if coterie.is_antichain() && coterie.intersecting() {
            Some(coterie)
        } else {
            None
        }
    }

    /// The minimal quorums.
    #[must_use]
    pub fn quorums(&self) -> &[SiteSet] {
        &self.quorums
    }

    /// True if `set` contains some quorum.
    #[must_use]
    pub fn is_quorum(&self, set: SiteSet) -> bool {
        self.quorums.iter().any(|q| q.is_subset(set))
    }

    /// Intersection property: every pair of quorums shares a site. This
    /// is precisely what forbids two simultaneous distinguished
    /// partitions.
    #[must_use]
    pub fn intersecting(&self) -> bool {
        for (i, a) in self.quorums.iter().enumerate() {
            for b in &self.quorums[i + 1..] {
                if a.is_disjoint(*b) {
                    return false;
                }
            }
        }
        true
    }

    /// Minimality: no quorum contains another.
    #[must_use]
    pub fn is_antichain(&self) -> bool {
        for (i, a) in self.quorums.iter().enumerate() {
            for (j, b) in self.quorums.iter().enumerate() {
                if i != j && a.is_subset(*b) {
                    return false;
                }
            }
        }
        true
    }

    /// True if this coterie *dominates* `other`: every quorum of `other`
    /// contains a quorum of `self`. Non-dominated coteries maximise
    /// availability ([Garcia-Molina & Barbara 1985]).
    #[must_use]
    pub fn dominates(&self, other: &Coterie) -> bool {
        other.quorums.iter().all(|q| self.is_quorum(*q))
    }
}

impl Coterie {
    /// The binary-tree quorum coterie (Agrawal–El Abbadi): sites are the
    /// nodes of a complete binary tree; a quorum is a root-to-leaf path,
    /// with a failed node replaced by paths through *both* its children.
    /// Quorums have logarithmic size in the best case yet still pairwise
    /// intersect.
    ///
    /// `levels` complete levels, so `2^levels − 1` sites.
    ///
    /// # Panics
    ///
    /// If `levels` is 0 or the tree exceeds [`crate::MAX_SITES`] sites.
    #[must_use]
    pub fn binary_tree(levels: u32) -> Self {
        assert!((1..=6).contains(&levels), "1..=6 levels (<= 63 sites)");
        let n = (1usize << levels) - 1;
        // Recursive quorum enumeration: quorums(v) = {v} × quorums(left)
        // ∪ {v} × quorums(right) for the path rule, plus (v failed):
        // quorums(left) × quorums(right).
        fn quorums_of(v: usize, n: usize) -> Vec<SiteSet> {
            let (l, r) = (2 * v + 1, 2 * v + 2);
            let me = SiteId::new(v);
            if l >= n {
                return vec![SiteSet::singleton(me)];
            }
            let left = quorums_of(l, n);
            let right = quorums_of(r, n);
            let mut result = Vec::new();
            for q in left.iter().chain(right.iter()) {
                let mut with_me = *q;
                with_me.insert(me);
                result.push(with_me);
            }
            for ql in &left {
                for qr in &right {
                    result.push(ql.union(*qr));
                }
            }
            result
        }
        Coterie::minimalize(quorums_of(0, n))
    }

    /// The grid quorum coterie (Cheung–Ammar–Ahamad / Maekawa-style):
    /// sites form a `rows × cols` grid; a quorum is one full row plus
    /// one representative from every other row, guaranteeing pairwise
    /// intersection.
    ///
    /// # Panics
    ///
    /// If the grid is degenerate or exceeds [`crate::MAX_SITES`] sites.
    #[must_use]
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1 && rows * cols <= crate::MAX_SITES);
        let site = |r: usize, c: usize| SiteId::new(r * cols + c);
        let mut quorums = Vec::new();
        // Choose the full row, then a representative per other row.
        let mut reps = vec![0usize; rows];
        for full in 0..rows {
            loop {
                let mut q = SiteSet::EMPTY;
                for c in 0..cols {
                    q.insert(site(full, c));
                }
                for (r, &rep) in reps.iter().enumerate() {
                    if r != full {
                        q.insert(site(r, rep));
                    }
                }
                quorums.push(q);
                // Odometer over representatives of the other rows.
                let mut carried = true;
                for (r, rep) in reps.iter_mut().enumerate() {
                    if r == full {
                        continue;
                    }
                    *rep += 1;
                    if *rep < cols {
                        carried = false;
                        break;
                    }
                    *rep = 0;
                }
                if carried {
                    break;
                }
            }
            reps.iter_mut().for_each(|r| *r = 0);
        }
        Coterie::minimalize(quorums)
    }
}

impl fmt::Display for Coterie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, q) in self.quorums.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> SiteSet {
        SiteSet::parse(s).unwrap()
    }

    #[test]
    fn uniform_majority() {
        let votes = VoteAssignment::uniform(5);
        assert_eq!(votes.total(), 5);
        assert!(votes.is_majority(set("ABC")));
        assert!(!votes.is_majority(set("AB")));
        assert_eq!(votes.tally(set("AD")), 2);
    }

    #[test]
    fn even_n_has_no_half_majority() {
        let votes = VoteAssignment::uniform(4);
        assert!(!votes.is_majority(set("AB")));
        assert!(votes.is_majority(set("ABC")));
    }

    #[test]
    fn weighted_votes_shift_the_quorum() {
        // A holds 3 votes, the rest 1 each: total 6, majority needs > 3.
        let votes = VoteAssignment::new(vec![3, 1, 1, 1]);
        assert!(votes.is_majority(set("AB")));
        assert!(!votes.is_majority(set("A"))); // exactly half is not enough
        assert!(!votes.is_majority(set("BCD")));
    }

    #[test]
    fn zero_vote_sites_are_witnesses() {
        let votes = VoteAssignment::new(vec![1, 1, 1, 0]);
        assert!(votes.is_majority(set("AB")));
        assert!(!votes.is_majority(set("AD")));
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn all_zero_votes_rejected() {
        let _ = VoteAssignment::new(vec![0, 0]);
    }

    #[test]
    fn coterie_of_uniform_three() {
        let coterie = VoteAssignment::uniform(3).coterie();
        assert_eq!(coterie.quorums().len(), 3);
        assert!(coterie.is_quorum(set("AB")));
        assert!(coterie.is_quorum(set("ABC")));
        assert!(!coterie.is_quorum(set("C")));
        assert!(coterie.intersecting());
        assert!(coterie.is_antichain());
    }

    #[test]
    fn coterie_of_uniform_five_is_all_triples() {
        let coterie = VoteAssignment::uniform(5).coterie();
        assert_eq!(coterie.quorums().len(), 10); // C(5,3)
        assert!(coterie.quorums().iter().all(|q| q.len() == 3));
    }

    #[test]
    fn minimalize_drops_supersets() {
        let coterie = Coterie::minimalize(vec![set("AB"), set("ABC"), set("AC"), set("BC")]);
        assert_eq!(coterie.quorums().len(), 3);
        assert!(coterie.is_antichain());
    }

    #[test]
    fn try_new_rejects_disjoint_quorums() {
        assert!(Coterie::try_new(vec![set("AB"), set("CD")]).is_none());
        assert!(Coterie::try_new(vec![set("AB"), set("BC"), set("AC")]).is_some());
    }

    #[test]
    fn try_new_rejects_non_antichain() {
        assert!(Coterie::try_new(vec![set("AB"), set("ABC")]).is_none());
    }

    #[test]
    fn primary_site_coterie_dominates_nothing_unusual() {
        // Primary-copy: the singleton {A} is a valid coterie and dominates
        // the majority coterie on {A,B,C} restricted to quorums through A?
        // No: majority quorum BC does not contain {A}; domination fails.
        let primary = Coterie::try_new(vec![set("A")]).unwrap();
        let majority = VoteAssignment::uniform(3).coterie();
        assert!(!primary.dominates(&majority));
        // But it does dominate the coterie {AB, AC}:
        let through_a = Coterie::try_new(vec![set("AB"), set("AC")]).unwrap();
        assert!(primary.dominates(&through_a));
    }
}
