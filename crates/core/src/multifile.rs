//! Multi-file databases and transactions — the paper's footnote 2.
//!
//! "Our work generalizes to the setting where transactions may update
//! two or more files. Any such transaction T will require a
//! distinguished partition for every file in its read and write set."
//!
//! [`MultiFileSystem`] manages several replicated files, each with its
//! own replication site set, a-priori linear order, and replica control
//! algorithm. A [`Transaction`] names the files it reads and writes;
//! it commits iff the current partition is distinguished *for every
//! file touched* (reads included, per footnote 5 — a read needs a
//! distinguished partition but modifies no metadata).

use crate::algorithm::{ReplicaControl, Verdict};
use crate::scenario::ReplicaSystem;
use crate::site::{LinearOrder, SiteId, SiteSet};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a file within a [`MultiFileSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(usize);

impl FileId {
    /// The index of the file.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A transaction's access sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transaction {
    /// Files read (require a distinguished partition; no metadata
    /// change).
    pub reads: Vec<FileId>,
    /// Files written (require a distinguished partition; version,
    /// cardinality and distinguished-sites entries advance).
    pub writes: Vec<FileId>,
}

impl Transaction {
    /// A read-only transaction.
    #[must_use]
    pub fn read(files: &[FileId]) -> Self {
        Transaction {
            reads: files.to_vec(),
            writes: Vec::new(),
        }
    }

    /// A write (update) transaction.
    #[must_use]
    pub fn write(files: &[FileId]) -> Self {
        Transaction {
            reads: Vec::new(),
            writes: files.to_vec(),
        }
    }

    /// All files touched, reads first.
    pub fn touched(&self) -> impl Iterator<Item = FileId> + '_ {
        self.reads.iter().chain(self.writes.iter()).copied()
    }
}

/// Outcome of a multi-file transaction attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionOutcome {
    /// True if every touched file had a distinguished partition and all
    /// writes committed atomically.
    pub committed: bool,
    /// Per touched file: its verdict (in [`Transaction::touched`]
    /// order).
    pub verdicts: Vec<(FileId, Verdict)>,
}

struct FileEntry {
    name: String,
    /// Global site of each local replica index.
    sites: Vec<SiteId>,
    /// Local index of each global site.
    local: HashMap<SiteId, SiteId>,
    system: ReplicaSystem<Box<dyn ReplicaControl>>,
}

impl FileEntry {
    /// Project a global partition onto the file's local replica space.
    fn localize(&self, partition: SiteSet) -> SiteSet {
        SiteSet::from_sites(
            self.sites
                .iter()
                .enumerate()
                .filter(|(_, global)| partition.contains(**global))
                .map(|(local, _)| SiteId::new(local)),
        )
    }
}

/// A distributed database of several replicated files.
pub struct MultiFileSystem {
    n_sites: usize,
    files: Vec<FileEntry>,
}

impl fmt::Debug for MultiFileSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiFileSystem")
            .field("n_sites", &self.n_sites)
            .field(
                "files",
                &self.files.iter().map(|e| &e.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl MultiFileSystem {
    /// A database over `n_sites` global sites, initially without files.
    #[must_use]
    pub fn new(n_sites: usize) -> Self {
        assert!(n_sites >= 2);
        MultiFileSystem {
            n_sites,
            files: Vec::new(),
        }
    }

    /// Number of global sites.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Number of files.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Register a file replicated at the given global sites, managed by
    /// `algo`. The file's a-priori linear order ranks its replicas by
    /// ascending global site id, greatest first (the paper's
    /// lexicographic convention — "different files may be replicated at
    /// different groups of sites, and sites in each group may be
    /// assigned different total orderings").
    ///
    /// # Panics
    ///
    /// If `sites` has fewer than two members or names non-existent
    /// sites.
    pub fn add_file(
        &mut self,
        name: &str,
        sites: SiteSet,
        algo: Box<dyn ReplicaControl>,
    ) -> FileId {
        assert!(sites.len() >= 2, "a replicated file needs >= 2 sites");
        assert!(
            sites.is_subset(SiteSet::all(self.n_sites)),
            "replication sites must exist"
        );
        let site_list: Vec<SiteId> = sites.iter().collect();
        let local: HashMap<SiteId, SiteId> = site_list
            .iter()
            .enumerate()
            .map(|(i, &global)| (global, SiteId::new(i)))
            .collect();
        let order = LinearOrder::lexicographic(site_list.len());
        let system = ReplicaSystem::with_order(order, algo);
        self.files.push(FileEntry {
            name: name.to_owned(),
            sites: site_list,
            local,
            system,
        });
        FileId(self.files.len() - 1)
    }

    /// The file's name.
    #[must_use]
    pub fn file_name(&self, file: FileId) -> &str {
        &self.files[file.0].name
    }

    /// The global sites replicating the file.
    #[must_use]
    pub fn replication_sites(&self, file: FileId) -> SiteSet {
        SiteSet::from_sites(self.files[file.0].sites.iter().copied())
    }

    /// The file's version at a global site (`None` if the site holds no
    /// copy).
    #[must_use]
    pub fn version_at(&self, file: FileId, site: SiteId) -> Option<u64> {
        let entry = &self.files[file.0];
        entry
            .local
            .get(&site)
            .map(|&local| entry.system.meta(local).version)
    }

    /// Would the partition serve (read or write) the file?
    #[must_use]
    pub fn can_access(&self, file: FileId, partition: SiteSet) -> bool {
        let entry = &self.files[file.0];
        entry.system.can_update(entry.localize(partition))
    }

    /// Attempt a transaction from within `partition` (the coordinator's
    /// connected component, in global site ids).
    ///
    /// All touched files are checked first; writes commit only if
    /// *every* touched file is distinguished — the all-or-nothing
    /// semantics footnote 2 requires.
    pub fn attempt_transaction(
        &mut self,
        partition: SiteSet,
        txn: &Transaction,
    ) -> TransactionOutcome {
        let verdicts: Vec<(FileId, Verdict)> = txn
            .touched()
            .map(|file| {
                let entry = &self.files[file.0];
                (file, entry.system.decide(entry.localize(partition)))
            })
            .collect();
        let committed = !verdicts.is_empty() && verdicts.iter().all(|(_, v)| v.is_accepted());
        if committed {
            for &file in &txn.writes {
                let local = self.files[file.0].localize(partition);
                let outcome = self.files[file.0].system.attempt_update(local);
                debug_assert!(outcome.committed(), "pre-checked file must commit");
            }
        }
        TransactionOutcome {
            committed,
            verdicts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::AlgorithmKind;
    use crate::algorithms::{Hybrid, StaticVoting};

    fn set(s: &str) -> SiteSet {
        SiteSet::parse(s).unwrap()
    }

    /// Two files over seven sites: `inventory` at ABCDE (hybrid) and
    /// `orders` at CDEFG (voting).
    fn two_files() -> (MultiFileSystem, FileId, FileId) {
        let mut db = MultiFileSystem::new(7);
        let inventory = db.add_file("inventory", set("ABCDE"), Box::new(Hybrid::new()));
        let orders = db.add_file("orders", set("CDEFG"), Box::new(StaticVoting::uniform(5)));
        (db, inventory, orders)
    }

    #[test]
    fn single_file_write_needs_only_that_quorum() {
        let (mut db, inventory, _) = two_files();
        // ABC is 3 of inventory's 5 replicas; orders is irrelevant.
        let out = db.attempt_transaction(set("ABC"), &Transaction::write(&[inventory]));
        assert!(out.committed);
        assert_eq!(db.version_at(inventory, SiteId(0)), Some(1));
        assert_eq!(db.version_at(inventory, SiteId(4)), Some(0)); // E missed it
        assert_eq!(db.version_at(inventory, SiteId(6)), None); // no copy at G
    }

    #[test]
    fn cross_file_transaction_needs_every_quorum() {
        let (mut db, inventory, orders) = two_files();
        let both = Transaction::write(&[inventory, orders]);
        // ABC: quorum for inventory, but only C from orders' replicas.
        let out = db.attempt_transaction(set("ABC"), &both);
        assert!(!out.committed);
        assert_eq!(out.verdicts.len(), 2);
        assert!(out.verdicts[0].1.is_accepted());
        assert!(!out.verdicts[1].1.is_accepted());
        // Atomicity: the accepted file must NOT have committed alone.
        assert_eq!(db.version_at(inventory, SiteId(0)), Some(0));

        // CDE serves both: 3 of 5 inventory replicas and 3 of 5 orders
        // replicas.
        let out = db.attempt_transaction(set("CDE"), &both);
        assert!(out.committed);
        assert_eq!(db.version_at(inventory, SiteId(2)), Some(1));
        assert_eq!(db.version_at(orders, SiteId(2)), Some(1));
    }

    #[test]
    fn reads_require_quorum_but_change_nothing() {
        let (mut db, inventory, orders) = two_files();
        let read_both = Transaction::read(&[inventory, orders]);
        assert!(db.attempt_transaction(set("CDE"), &read_both).committed);
        assert_eq!(db.version_at(inventory, SiteId(2)), Some(0));
        assert!(!db.attempt_transaction(set("AB"), &read_both).committed);
    }

    #[test]
    fn mixed_read_write_transactions() {
        let (mut db, inventory, orders) = two_files();
        let txn = Transaction {
            reads: vec![inventory],
            writes: vec![orders],
        };
        let out = db.attempt_transaction(set("CDEFG"), &txn);
        assert!(out.committed);
        assert_eq!(db.version_at(inventory, SiteId(2)), Some(0), "read-only");
        assert_eq!(db.version_at(orders, SiteId(6)), Some(1), "written");
    }

    #[test]
    fn per_file_dynamic_state_evolves_independently() {
        let (mut db, inventory, _) = two_files();
        // Shrink inventory's quorum to ABC, then to AB (hybrid trio
        // phase) while orders is untouched.
        assert!(
            db.attempt_transaction(set("ABC"), &Transaction::write(&[inventory]))
                .committed
        );
        assert!(
            db.attempt_transaction(set("AB"), &Transaction::write(&[inventory]))
                .committed
        );
        // DE alone can no longer write inventory...
        assert!(!db.can_access(inventory, set("DE")));
        // ...and CDEFG still writes orders (a static majority there).
        assert!(db.can_access(FileId(1), set("CDEFG")));
    }

    #[test]
    fn different_algorithms_per_file() {
        let mut db = MultiFileSystem::new(5);
        let files: Vec<FileId> = AlgorithmKind::ALL
            .iter()
            .map(|kind| db.add_file(kind.id(), set("ABCDE"), kind.instantiate(5)))
            .collect();
        // ABC writes everything (majority in every scheme, fresh state).
        for &f in &files {
            assert!(
                db.attempt_transaction(set("ABC"), &Transaction::write(&[f]))
                    .committed
            );
        }
        // AB now: dynamic algorithms (quorum shrank to ABC) accept;
        // static voting refuses (2 of 5).
        for (&f, kind) in files.iter().zip(AlgorithmKind::ALL.iter()) {
            let ok = db
                .attempt_transaction(set("AB"), &Transaction::write(&[f]))
                .committed;
            match kind {
                AlgorithmKind::Voting => assert!(!ok, "{kind}"),
                _ => assert!(ok, "{kind}"),
            }
        }
    }

    #[test]
    fn local_site_order_follows_global_ids() {
        let mut db = MultiFileSystem::new(7);
        // File replicated at C, E, G: local ids 0,1,2 map to those.
        let f = db.add_file("f", set("CEG"), Box::new(Hybrid::new()));
        assert_eq!(db.replication_sites(f), set("CEG"));
        assert_eq!(db.version_at(f, SiteId(2)), Some(0)); // C
        assert_eq!(db.version_at(f, SiteId(0)), None); // A: no copy
                                                       // Two of its three replicas form a quorum.
        assert!(
            db.attempt_transaction(set("CE"), &Transaction::write(&[f]))
                .committed
        );
    }

    #[test]
    fn empty_transaction_never_commits() {
        let (mut db, _, _) = two_files();
        let out = db.attempt_transaction(set("ABCDE"), &Transaction::default());
        assert!(!out.committed);
    }
}
