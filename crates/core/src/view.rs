//! The coordinator's view of its partition: collected `(VN, SC, DS)`
//! responses.
//!
//! Step 2 of `Is_Distinguished` (Section V-B) has the coordinator compute
//! from the responses: the largest version number `M` in the partition `P`,
//! the set `I ⊆ P` of sites holding version `M`, and the update sites
//! cardinality `N` shared by the sites in `I`. [`PartitionView`] performs
//! exactly that computation once, and every algorithm's decision rule reads
//! from it.

use crate::meta::CopyMeta;
use crate::site::{LinearOrder, SiteId, SiteSet};
use std::fmt;

/// Errors raised while assembling a [`PartitionView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// No responses: a partition view requires at least the coordinator.
    Empty,
    /// The same site responded twice.
    DuplicateSite(SiteId),
    /// A site index is `>= n`.
    SiteOutOfRange(SiteId),
    /// Sites holding the maximum version disagree on `SC` or `DS`.
    ///
    /// The protocol guarantees all copies at the maximum version share
    /// their cardinality and distinguished-sites entry (see the proof of
    /// Theorem 1); a view violating this indicates corruption.
    InconsistentCurrentCopies {
        /// First offending site.
        a: SiteId,
        /// Second offending site, disagreeing with the first.
        b: SiteId,
    },
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::Empty => write!(f, "partition view has no members"),
            ViewError::DuplicateSite(s) => write!(f, "site {s} responded twice"),
            ViewError::SiteOutOfRange(s) => write!(f, "site {s} is not a replica site"),
            ViewError::InconsistentCurrentCopies { a, b } => write!(
                f,
                "sites {a} and {b} hold the maximum version but disagree on SC/DS"
            ),
        }
    }
}

impl std::error::Error for ViewError {}

/// The assembled view of one partition: which sites responded and with
/// what metadata, plus the derived quantities `M`, `I` and `N`.
#[derive(Debug, Clone)]
pub struct PartitionView<'a> {
    n: usize,
    order: &'a LinearOrder,
    responses: &'a [(SiteId, CopyMeta)],
    members: SiteSet,
    max_version: u64,
    current: SiteSet,
    current_meta: CopyMeta,
    guard_hint: Option<SiteId>,
}

impl<'a> PartitionView<'a> {
    /// Assemble a view from the responses collected by a coordinator.
    ///
    /// `n` is the total number of replica sites of the file (required by
    /// static voting and by the "optimal candidate" rule); `order` is the
    /// file's a-priori linear ordering. The responses are borrowed, not
    /// owned: a coordinator keeps them wherever it collected them (the
    /// protocol layer stores the meta slice alongside its membership
    /// bitset) and assembles views against that storage with zero copies.
    pub fn new(
        n: usize,
        order: &'a LinearOrder,
        responses: &'a [(SiteId, CopyMeta)],
    ) -> Result<Self, ViewError> {
        if responses.is_empty() {
            return Err(ViewError::Empty);
        }
        let mut members = SiteSet::EMPTY;
        for &(site, _) in responses {
            if site.index() >= n {
                return Err(ViewError::SiteOutOfRange(site));
            }
            if members.contains(site) {
                return Err(ViewError::DuplicateSite(site));
            }
            members.insert(site);
        }
        let max_version = responses
            .iter()
            .map(|(_, m)| m.version)
            .max()
            .expect("nonempty");
        let mut current = SiteSet::EMPTY;
        let mut current_meta: Option<(SiteId, CopyMeta)> = None;
        for &(site, meta) in responses {
            if meta.version == max_version {
                current.insert(site);
                match current_meta {
                    None => current_meta = Some((site, meta)),
                    Some((first_site, first_meta)) => {
                        if first_meta.cardinality != meta.cardinality
                            || first_meta.distinguished != meta.distinguished
                        {
                            return Err(ViewError::InconsistentCurrentCopies {
                                a: first_site,
                                b: site,
                            });
                        }
                    }
                }
            }
        }
        let (_, current_meta) = current_meta.expect("nonempty view has a max version");
        Ok(PartitionView {
            n,
            order,
            responses,
            members,
            max_version,
            current,
            current_meta,
            guard_hint: None,
        })
    }

    /// Attach a *guard hint*: a non-member site the surrounding system
    /// nominates for Section VII Change 1's "site that is down" choice.
    ///
    /// The modified hybrid's two-site commit must name a down site as the
    /// new distinguished site. Which down site is best is information the
    /// voting exchange itself does not carry (the paper suggests "the site
    /// that most recently failed"); the protocol layer supplies it here.
    /// For exact accept-set equivalence with the unmodified hybrid, the
    /// hint should name the absent holder of the maximum version when one
    /// exists (see `algorithms::modified_hybrid` for discussion).
    ///
    /// Hints naming a member of the partition are ignored.
    #[must_use]
    pub fn with_guard_hint(mut self, hint: Option<SiteId>) -> Self {
        self.guard_hint = hint.filter(|s| !self.members.contains(*s));
        self
    }

    /// The guard hint, if one was attached and names a non-member.
    #[must_use]
    pub fn guard_hint(&self) -> Option<SiteId> {
        self.guard_hint
    }

    /// Total number of replica sites of the file (`n` in the paper).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The file's a-priori linear ordering.
    #[must_use]
    pub fn order(&self) -> &LinearOrder {
        self.order
    }

    /// The partition `P`: all sites that responded (including the
    /// coordinator).
    #[must_use]
    pub fn members(&self) -> SiteSet {
        self.members
    }

    /// `card(P)`.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// `M`: the largest version number present in the partition.
    #[must_use]
    pub fn max_version(&self) -> u64 {
        self.max_version
    }

    /// `I`: the sites in `P` holding version `M` ("current" copies, from
    /// the partition's local point of view).
    #[must_use]
    pub fn current_sites(&self) -> SiteSet {
        self.current
    }

    /// `card(I)`.
    #[must_use]
    pub fn current_count(&self) -> usize {
        self.current.len()
    }

    /// The metadata shared by all sites in `I` (validated at construction).
    #[must_use]
    pub fn current_meta(&self) -> CopyMeta {
        self.current_meta
    }

    /// `N`: the update sites cardinality recorded by the sites in `I`.
    #[must_use]
    pub fn cardinality(&self) -> u32 {
        self.current_meta.cardinality
    }

    /// `P − I`: members whose copies are stale and need the catch-up phase.
    #[must_use]
    pub fn stale_sites(&self) -> SiteSet {
        self.members.difference(self.current)
    }

    /// The raw responses, in the order they were supplied.
    #[must_use]
    pub fn responses(&self) -> &[(SiteId, CopyMeta)] {
        self.responses
    }

    /// The metadata reported by `site`, if it is a member.
    #[must_use]
    pub fn meta_of(&self, site: SiteId) -> Option<CopyMeta> {
        self.responses
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, m)| *m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Distinguished;

    fn meta(version: u64, cardinality: u32, ds: Distinguished) -> CopyMeta {
        CopyMeta {
            version,
            cardinality,
            distinguished: ds,
        }
    }

    #[test]
    fn computes_m_i_n() {
        let order = LinearOrder::lexicographic(5);
        let responses = [
            (
                SiteId(0),
                meta(10, 3, Distinguished::Trio(SiteSet::parse("ABC").unwrap())),
            ),
            (
                SiteId(2),
                meta(10, 3, Distinguished::Trio(SiteSet::parse("ABC").unwrap())),
            ),
            (SiteId(3), meta(9, 5, Distinguished::Irrelevant)),
        ];
        let view = PartitionView::new(5, &order, &responses).unwrap();
        assert_eq!(view.max_version(), 10);
        assert_eq!(view.current_sites(), SiteSet::parse("AC").unwrap());
        assert_eq!(view.cardinality(), 3);
        assert_eq!(view.member_count(), 3);
        assert_eq!(view.stale_sites(), SiteSet::parse("D").unwrap());
        assert_eq!(view.meta_of(SiteId(3)).unwrap().version, 9);
        assert_eq!(view.meta_of(SiteId(4)), None);
    }

    #[test]
    fn empty_view_is_an_error() {
        let order = LinearOrder::lexicographic(3);
        assert_eq!(
            PartitionView::new(3, &order, &[]).unwrap_err(),
            ViewError::Empty
        );
    }

    #[test]
    fn duplicate_site_is_an_error() {
        let order = LinearOrder::lexicographic(3);
        let m = meta(1, 3, Distinguished::Irrelevant);
        let err = PartitionView::new(3, &order, &[(SiteId(0), m), (SiteId(0), m)]).unwrap_err();
        assert_eq!(err, ViewError::DuplicateSite(SiteId(0)));
    }

    #[test]
    fn out_of_range_site_is_an_error() {
        let order = LinearOrder::lexicographic(3);
        let m = meta(1, 3, Distinguished::Irrelevant);
        let err = PartitionView::new(3, &order, &[(SiteId(7), m)]).unwrap_err();
        assert_eq!(err, ViewError::SiteOutOfRange(SiteId(7)));
    }

    #[test]
    fn inconsistent_current_copies_are_detected() {
        let order = LinearOrder::lexicographic(4);
        let err = PartitionView::new(
            4,
            &order,
            &[
                (SiteId(0), meta(5, 4, Distinguished::Single(SiteId(0)))),
                (SiteId(1), meta(5, 3, Distinguished::Single(SiteId(0)))),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ViewError::InconsistentCurrentCopies { .. }));
    }

    #[test]
    fn stale_copies_may_disagree_freely() {
        // Only the maximum-version copies must agree on SC/DS.
        let order = LinearOrder::lexicographic(4);
        let responses = [
            (SiteId(0), meta(5, 2, Distinguished::Single(SiteId(0)))),
            (SiteId(1), meta(4, 4, Distinguished::Single(SiteId(2)))),
            (SiteId(2), meta(3, 4, Distinguished::Irrelevant)),
        ];
        let view = PartitionView::new(4, &order, &responses).unwrap();
        assert_eq!(view.current_count(), 1);
        assert_eq!(view.cardinality(), 2);
    }
}
