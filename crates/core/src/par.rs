//! Deterministic parallel execution of embarrassingly parallel task
//! grids (availability sweeps, Monte-Carlo replications, experiment
//! batches).
//!
//! Every evaluation surface in this repository — the figure sweeps of
//! `dynvote-markov`, the Monte-Carlo replications of `dynvote-mc`, the
//! multi-configuration experiment grids of `dynvote-sim` — is a list of
//! independent tasks indexed `0..count`. This module runs such a grid
//! on `jobs` OS threads (hand-rolled on [`std::thread::scope`]; the
//! build environment has no crates.io, so no rayon) under a contract
//! strong enough to treat parallelism as a pure optimization:
//!
//! **results are byte-identical for any worker count.**
//!
//! Three rules make that hold:
//!
//! 1. *Task identity, not schedule, selects the work.* Workers claim
//!    task indices from a shared atomic cursor; which worker runs which
//!    index varies run to run, but the index fully determines the task.
//! 2. *Randomness is derived from `(master_seed, task_index)`.* Tasks
//!    must never share an RNG stream; [`seed_for`] gives every index
//!    its own statistically independent seed, counter-based so it can
//!    be computed without running earlier tasks.
//! 3. *Results land in pre-sized slots.* Worker `w` finishing task `i`
//!    writes `slots[i]`; output order is index order by construction
//!    and scheduling cannot leak into it.
//!
//! The module is std-only: `dynvote-core` stays dependency-clean.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of hardware threads, with a fallback of 1 when the
/// platform will not say.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolve a worker count: an explicit request (CLI `--jobs`) wins,
/// then the `DYNVOTE_JOBS` environment variable, then
/// [`available_parallelism`]. A request of `Some(0)` means "auto",
/// mirroring `make -j`/`cargo build -j` conventions; the result is
/// always at least 1.
#[must_use]
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => std::env::var("DYNVOTE_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(available_parallelism),
    }
}

/// The seed for task `task_index` of a run with `master_seed`.
///
/// Counter-based SplitMix64: the state is `master_seed` advanced by
/// `task_index + 1` steps of the Weyl sequence (golden-ratio
/// increment), pushed through the SplitMix64 finalizer. Every task's
/// seed is therefore a pure function of `(master_seed, task_index)` —
/// no task ever has to run, or even exist, for another's seed to be
/// computed — and consecutive indices land in statistically
/// independent parts of the output space (the finalizer is a bijection
/// with full avalanche).
///
/// The `+ 1` keeps `seed_for(s, 0) != splitmix64_finalize(s)`, so a
/// task seed never collides with a direct use of the master seed by
/// legacy single-stream code.
#[must_use]
pub fn seed_for(master_seed: u64, task_index: u64) -> u64 {
    let mut z = master_seed.wrapping_add(
        task_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A raw pointer to the slot array that is allowed to cross thread
/// boundaries. Safety rests on the cursor protocol in [`run`]: each
/// index is claimed by exactly one worker, so writes through this
/// pointer never alias.
struct Slots<T>(UnsafeCell<Vec<Option<T>>>);

// SAFETY: workers write disjoint elements (each task index is handed
// out exactly once by `fetch_add`) and the scope join synchronizes all
// writes before the vector is read back.
unsafe impl<T: Send> Sync for Slots<T> {}

/// Run `count` independent tasks on `jobs` worker threads and return
/// the results **in task-index order**, regardless of scheduling.
///
/// `task(i)` must be a pure function of `i` (draw any randomness from
/// [`seed_for`]); under that discipline the returned vector is
/// byte-identical for every `jobs` value, which the test suite and CI
/// enforce for the real sweep surfaces.
///
/// `jobs <= 1` (or a single task) runs inline on the caller's thread
/// with no thread machinery at all, so the serial path stays the
/// trivially obvious one.
///
/// # Panics
///
/// If a task panics the panic is propagated after the remaining
/// workers drain the queue (the [`std::thread::scope`] contract).
pub fn run<T, F>(jobs: usize, count: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || count <= 1 {
        return (0..count).map(task).collect();
    }
    let slots = Slots(UnsafeCell::new(Vec::new()));
    // SAFETY: no worker exists yet; this is the only live reference.
    unsafe { &mut *slots.0.get() }.resize_with(count, || None);
    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(count);
    // Capture the `Sync` wrapper, not its `UnsafeCell` field (edition
    // 2021 closures capture disjoint fields by default).
    let (slots_ref, cursor_ref, task_ref) = (&slots, &cursor, &task);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                // Claim-one-index queue: task grids here are coarse
                // (one Markov solve, one Monte-Carlo replication), so
                // per-index claiming costs nothing measurable and
                // balances tail latency better than static chunks.
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = task_ref(i);
                // SAFETY: `i` was handed to this worker alone, the
                // vector was pre-sized (never reallocates), and the
                // element write touches only slot `i`.
                unsafe {
                    let base = (*slots_ref.0.get()).as_mut_ptr();
                    *base.add(i) = Some(value);
                }
            });
        }
    });
    // The scope joined every worker: all writes are visible.
    slots
        .0
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every task index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        let expected: Vec<u64> = (0..97).map(|i| (i as u64) * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 32] {
            let got = run(jobs, 97, |i| (i as u64) * 3 + 1);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_single_task_grids_work() {
        assert_eq!(run(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run(8, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let results = run(4, 1000, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(results.len(), 1000);
        assert!(results.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        assert_eq!(run(64, 3, |i| i * i), vec![0, 1, 4]);
    }

    #[test]
    fn seed_splitter_is_stable() {
        // Pinned values: recorded experiment baselines (BENCH_sweep,
        // replication CSVs) depend on this stream never changing.
        assert_eq!(seed_for(0, 0), 0xE220_A839_7B1D_CDAF_u64);
        assert_eq!(seed_for(0xD1CE, 7), seed_for(0xD1CE, 7));
    }

    #[test]
    fn seed_splitter_has_no_easy_collisions() {
        let mut seen = std::collections::HashSet::new();
        for master in [0u64, 1, 0xD1CE, u64::MAX] {
            for index in 0..1000u64 {
                assert!(seen.insert(seed_for(master, index)), "collision");
            }
        }
    }

    #[test]
    fn seed_differs_from_master_and_between_indices() {
        let master = 42;
        assert_ne!(seed_for(master, 0), master);
        assert_ne!(seed_for(master, 0), seed_for(master, 1));
        assert_ne!(seed_for(master, 0), seed_for(master + 1, 0));
    }

    #[test]
    fn resolve_jobs_prefers_explicit_request() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    #[test]
    fn parallel_matches_serial_on_a_stateful_computation() {
        // A task heavy enough to overlap workers: sum a per-task PRNG
        // stream seeded by the splitter, the exact discipline the
        // sweep surfaces use.
        let compute = |i: usize| {
            let mut state = seed_for(99, i as u64);
            let mut acc = 0u64;
            for _ in 0..1000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                acc = acc.wrapping_add(state >> 33);
            }
            acc
        };
        let serial = run(1, 64, compute);
        for jobs in [2, 4, 8] {
            assert_eq!(run(jobs, 64, compute), serial, "jobs = {jobs}");
        }
    }
}
