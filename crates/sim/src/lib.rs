//! # dynvote-sim — a message-level distributed database simulator
//!
//! The paper specifies its replica control protocol operationally
//! (Section V): a three-phase exchange — voting, catch-up, commit —
//! embedded in two-phase commit, plus a restart protocol for recovering
//! sites and a termination protocol for transactions interrupted by
//! failures. The paper itself evaluates only analytically; this crate
//! *executes* the protocol, so its safety claims can be tested under
//! crashes, link failures, partitions, message loss and races:
//!
//! * [`SiteActor`] — the per-site state machine: coordinator,
//!   subordinate and restart roles; a durable/volatile state split with
//!   classic 2PC force-writes (prepare records before voting, commit
//!   records before announcing);
//! * [`Topology`] — sites, links, partitions as connected components;
//! * [`Simulation`] — deterministic discrete-event engine with message
//!   latency, loss, fault injection, Poisson workloads, read-only
//!   requests (paper footnote 5) and an *omniscient ledger* that flags
//!   any violation of one-copy serializability the instant it happens;
//! * [`MultiFileSimulation`] — several files with **atomic cross-file
//!   transactions** (paper footnote 2): per-site transaction managers,
//!   durable group commit records, crash redo, and an atomicity audit;
//! * [`FaultSchedule`] — the nemesis layer: a serde-serializable DSL of
//!   windowed fault behaviors (crash storms, rolling and asymmetric
//!   one-way partitions, lossy bursts, duplication, reordering) that
//!   replays bit-for-bit from JSON, plus [`nemesis::minimize`], which
//!   delta-debugs a failing schedule to a minimal reproducer.
//!
//! ```
//! use dynvote_core::{AlgorithmKind, SiteId, SiteSet};
//! use dynvote_sim::{SimConfig, Simulation};
//!
//! let mut sim = Simulation::new(SimConfig {
//!     n: 5,
//!     algorithm: AlgorithmKind::Hybrid,
//!     ..SimConfig::default()
//! });
//! sim.submit_update(SiteId(0));
//! sim.quiesce();
//! assert_eq!(sim.stats().commits, 1);
//!
//! // Partition the network: the minority side is refused.
//! sim.impose_partitions(&[
//!     SiteSet::parse("AB").unwrap(),
//!     SiteSet::parse("CDE").unwrap(),
//! ]);
//! sim.submit_update(SiteId(0));
//! sim.quiesce();
//! assert_eq!(sim.stats().rejected, 1);
//! assert!(sim.check_invariants().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod engine;
pub mod experiments;
pub mod multi;
pub mod nemesis;
mod topology;

pub use dynvote_core::ConfigError;
pub use dynvote_protocol::{
    Action, CountingSink, DurableState, EventKind, EventSink, EventTallies, LogEntry, Message,
    ProtocolEvent, RenderSink, ResolveReason, SiteActor, StatusOutcome, TimerKind, TxnId,
};
pub use engine::{ConsistencyViolation, LedgerEntry, SimConfig, SimStats, Simulation};
pub use experiments::{results_to_csv, ExperimentPlan, ExperimentResult};
pub use multi::{GroupId, MultiConfig, MultiFileSimulation, MultiStats};
pub use nemesis::{minimize, FaultSchedule, NemesisEvent, NemesisProfile};
pub use topology::Topology;
