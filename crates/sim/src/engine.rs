//! The discrete-event simulation engine.
//!
//! Owns the topology, the site actors, the event queue, and an
//! *omniscient ledger* against which every commit is checked: two
//! commits of the same version — the divergence pessimistic replica
//! control exists to prevent — abort the simulation immediately.
//!
//! Messages take `latency` time units and are delivered only if the
//! endpoints are connected (through up sites and up links) *at delivery
//! time*; an optional drop probability models lossy channels ("messages
//! may be lost or delivered out of order", Section II).

use crate::nemesis::{FaultSchedule, NemesisEvent};
use crate::topology::Topology;
use dynvote_core::{
    check_non_negative, check_positive, check_probability, check_site_count, AlgorithmKind,
    BackoffPolicy, ConfigError, SiteId, SiteSet, TimerWheel, VirtualInstant,
};
use dynvote_protocol::{
    Action, CountingSink, EventSink, EventTallies, FanoutSink, LogEntry, Message, RenderSink,
    ResolveReason, SiteActor, TimerKind, TxnId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of replica sites.
    pub n: usize,
    /// The replica control algorithm every site runs.
    pub algorithm: AlgorithmKind,
    /// One-way message latency.
    pub latency: f64,
    /// Baseline per-message extra latency: each delivery adds a uniform
    /// draw from `[0, latency_jitter)`. Values above `latency` let
    /// later messages overtake earlier ones (reordering). Nemesis
    /// `Reorder` windows raise this temporarily.
    pub latency_jitter: f64,
    /// Coordinator's wait for votes before deciding with whoever
    /// answered.
    pub vote_timeout: f64,
    /// Coordinator's wait for a catch-up reply before aborting.
    pub catchup_timeout: f64,
    /// Prepared subordinate's delay before its *first*
    /// termination-protocol round; each further round doubles the delay
    /// (exponential backoff) up to [`SimConfig::max_backoff`].
    pub initial_backoff: f64,
    /// Upper bound on the termination-protocol retry delay.
    pub max_backoff: f64,
    /// Timer jitter fraction in `[0, 1)`: every timer delay is scaled
    /// by a uniform factor in `[1 - jitter, 1 + jitter)` so that retry
    /// storms from simultaneously blocked sites de-correlate.
    pub jitter: f64,
    /// Probability an individual message is lost in transit. Nemesis
    /// `Lossy` windows raise the effective probability temporarily.
    pub drop_probability: f64,
    /// Probability an individual message is delivered twice (the copy
    /// arrives after an independent extra delay). Nemesis `Duplicate`
    /// windows raise this temporarily.
    pub duplicate_probability: f64,
    /// PRNG seed (runs are deterministic given the seed and the
    /// scripted/driven events).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n: 5,
            algorithm: AlgorithmKind::Hybrid,
            latency: 0.01,
            latency_jitter: 0.0,
            vote_timeout: 0.05,
            catchup_timeout: 0.05,
            initial_backoff: 0.25,
            max_backoff: 2.0,
            jitter: 0.0,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 7,
        }
    }
}

impl SimConfig {
    /// Validate every field; [`Simulation::new`] refuses (panics on) a
    /// configuration this rejects, so callers accepting untrusted
    /// parameters (the CLI) should call it first and surface the error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_site_count(self.n)?;
        check_positive("latency", self.latency)?;
        check_non_negative("latency_jitter", self.latency_jitter)?;
        check_positive("vote_timeout", self.vote_timeout)?;
        check_positive("catchup_timeout", self.catchup_timeout)?;
        check_positive("initial_backoff", self.initial_backoff)?;
        check_positive("max_backoff", self.max_backoff)?;
        if self.max_backoff < self.initial_backoff {
            return Err(ConfigError::BackoffRange {
                initial: self.initial_backoff,
                max: self.max_backoff,
            });
        }
        if !(self.jitter.is_finite() && (0.0..1.0).contains(&self.jitter)) {
            return Err(ConfigError::NotProbability {
                field: "jitter",
                value: self.jitter,
            });
        }
        check_probability("drop_probability", self.drop_probability)?;
        check_probability("duplicate_probability", self.duplicate_probability)?;
        Ok(())
    }

    /// The termination-protocol retry policy these settings describe
    /// (shared with the live cluster runtime via [`BackoffPolicy`]).
    #[must_use]
    pub fn backoff(&self) -> BackoffPolicy {
        BackoffPolicy::new(self.initial_backoff, self.max_backoff).with_jitter(self.jitter)
    }
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Updates submitted by the workload (excluding `Make_Current`).
    pub submitted: u64,
    /// Transactions that committed.
    pub commits: u64,
    /// Read-only requests served from a distinguished partition.
    pub reads_served: u64,
    /// Workload arrivals that found their target site down (counted as
    /// failed submissions by the paper's site-weighted availability
    /// measure).
    pub refused_down: u64,
    /// Aborted: the partition was not distinguished.
    pub rejected: u64,
    /// Aborted: the local copy was locked.
    pub lock_busy: u64,
    /// Aborted: votes or catch-up timed out.
    pub timeouts: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages lost (disconnection or random drop).
    pub messages_dropped: u64,
    /// Messages delivered twice (duplication injection).
    pub messages_duplicated: u64,
    /// Site crash events applied.
    pub site_crashes: u64,
    /// Site recovery events applied.
    pub site_recoveries: u64,
    /// `Make_Current` restart transactions that committed (kept apart
    /// from workload commits so availability measurements are not
    /// polluted by recovery traffic).
    pub restarts_committed: u64,
    /// `Make_Current` restart transactions that were refused.
    pub restarts_rejected: u64,
}

/// A simulation event.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Deliver {
        from: SiteId,
        to: SiteId,
        msg: Message,
    },
    Timer {
        site: SiteId,
        txn: TxnId,
        kind: TimerKind,
    },
    /// Workload: an update arrives at `site`.
    Arrival { site: SiteId },
    /// Fault injection: crash a random up site, or recover a random
    /// down one (chosen at execution time for determinism under a fixed
    /// seed).
    ToggleRandomSite,
    /// Fault injection: flip the state of a random link.
    ToggleRandomLink,
    /// Scripted fault: crash this site (no-op if already down).
    CrashSite { site: SiteId },
    /// Scripted fault: recover this site (no-op if already up).
    RecoverSite { site: SiteId },
    /// Nemesis: sever one direction of a link.
    FailOneWay { from: SiteId, to: SiteId },
    /// Nemesis: restore one direction of a link.
    RepairOneWay { from: SiteId, to: SiteId },
    /// Nemesis: impose an explicit partition layout.
    ImposePartition { parts: Vec<SiteSet> },
    /// Nemesis: repair every link (liveness untouched).
    HealLinks,
    /// Nemesis: set the windowed extra message-loss probability.
    SetLoss { p: f64 },
    /// Nemesis: set the windowed message-duplication probability.
    SetDuplication { p: f64 },
    /// Nemesis: set the windowed extra-latency bound (reordering).
    SetReorder { extra: f64 },
}

/// Windowed channel perturbations currently in force (driven by
/// [`FaultSchedule`] events; each combines with the corresponding
/// baseline [`SimConfig`] knob by `max`).
#[derive(Debug, Clone, Copy, Default)]
struct NemesisKnobs {
    loss: f64,
    duplication: f64,
    reorder_extra: f64,
}

/// A committed version in the omniscient ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEntry {
    /// The payload committed at this version.
    pub payload: u64,
    /// The committing transaction.
    pub txn: TxnId,
}

/// Violations of one-copy serializability detected by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyViolation {
    /// Two transactions committed the same version number.
    DivergentCommit {
        /// The contested version.
        version: u64,
        /// The first commit.
        first: LedgerEntry,
        /// The conflicting second commit.
        second: LedgerEntry,
    },
    /// A version was skipped in the global chain.
    VersionGap {
        /// The missing version.
        missing: u64,
    },
    /// A site's log disagrees with the global chain.
    LogMismatch {
        /// The offending site.
        site: SiteId,
        /// The version at which it disagrees.
        version: u64,
    },
    /// A site's metadata version does not match its log.
    MetaLogSkew {
        /// The offending site.
        site: SiteId,
    },
}

impl std::fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyViolation::DivergentCommit {
                version,
                first,
                second,
            } => write!(
                f,
                "version {version} committed twice: by {} and {}",
                first.txn, second.txn
            ),
            ConsistencyViolation::VersionGap { missing } => {
                write!(f, "version {missing} missing from the global chain")
            }
            ConsistencyViolation::LogMismatch { site, version } => {
                write!(f, "site {site} log disagrees with the chain at v{version}")
            }
            ConsistencyViolation::MetaLogSkew { site } => {
                write!(f, "site {site} metadata version does not match its log")
            }
        }
    }
}

/// The discrete-event simulation.
pub struct Simulation {
    config: SimConfig,
    topology: Topology,
    sites: Vec<SiteActor>,
    /// The event queue: the shared [`TimerWheel`] under a virtual clock
    /// (the live cluster runtime arms the same wheel with `Instant`s).
    timers: TimerWheel<VirtualInstant, Event>,
    clock: f64,
    rng: StdRng,
    /// Counts every [`dynvote_protocol::ProtocolEvent`] the actors emit.
    sink: Arc<CountingSink>,
    ledger: Vec<Option<LedgerEntry>>,
    violations: Vec<ConsistencyViolation>,
    stats: SimStats,
    next_payload: u64,
    /// Transactions started by the restart protocol, so their outcomes
    /// are booked separately from workload statistics.
    restart_txns: HashSet<TxnId>,
    nemesis: NemesisKnobs,
    /// Test-only: crashing this site fabricates a consistency violation
    /// (see [`Simulation::set_divergence_trap`]).
    divergence_trap: Option<SiteId>,
    /// Reusable action sink: every kernel call emits into this buffer
    /// and [`Simulation::apply_actions`] drains it, so steady-state
    /// stepping allocates no per-event `Vec<Action>`.
    scratch: Vec<Action>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("clock", &self.clock)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Build a simulation with all sites up and connected.
    ///
    /// # Panics
    ///
    /// If [`SimConfig::validate`] rejects the configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SimConfig: {e}");
        }
        let sink = Arc::new(CountingSink::new());
        let mut sites: Vec<SiteActor> = (0..config.n)
            .map(|i| {
                SiteActor::new(
                    SiteId::new(i),
                    config.n,
                    config.algorithm.instantiate(config.n),
                )
            })
            .collect();
        for site in &mut sites {
            site.set_sink(sink.clone());
        }
        Simulation {
            topology: Topology::fully_connected(config.n),
            sites,
            timers: TimerWheel::new(),
            clock: 0.0,
            rng: StdRng::seed_from_u64(config.seed),
            sink,
            ledger: Vec::new(),
            violations: Vec::new(),
            stats: SimStats::default(),
            next_payload: 0,
            restart_txns: HashSet::new(),
            nemesis: NemesisKnobs::default(),
            divergence_trap: None,
            scratch: Vec::new(),
            config,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The network state (for scripted fault injection).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The site actors (read-only inspection).
    #[must_use]
    pub fn site(&self, id: SiteId) -> &SiteActor {
        &self.sites[id.index()]
    }

    /// The global committed chain (`ledger[v-1]` = version `v`).
    #[must_use]
    pub fn ledger(&self) -> &[Option<LedgerEntry>] {
        &self.ledger
    }

    /// Consistency violations detected so far (must stay empty).
    #[must_use]
    pub fn violations(&self) -> &[ConsistencyViolation] {
        &self.violations
    }

    /// Per-site tallies of every protocol event the actors emitted.
    #[must_use]
    pub fn event_tallies(&self) -> EventTallies {
        self.sink.tallies()
    }

    /// Mirror every protocol event to stderr as it happens (the tallies
    /// keep counting).
    pub fn enable_trace(&mut self) {
        let fanout: Arc<dyn EventSink> = Arc::new(FanoutSink::new(vec![
            self.sink.clone() as Arc<dyn EventSink>,
            Arc::new(RenderSink),
        ]));
        for site in &mut self.sites {
            site.set_sink(fanout.clone());
        }
    }

    fn schedule(&mut self, delay: f64, event: Event) {
        debug_assert!(delay >= 0.0);
        self.timers
            .schedule(VirtualInstant(self.clock + delay), event);
    }

    fn fresh_payload(&mut self) -> u64 {
        self.next_payload += 1;
        self.next_payload
    }

    /// Submit an update at `site` right now. Returns false if the site
    /// is down (the client cannot reach it).
    pub fn submit_update(&mut self, site: SiteId) -> bool {
        if !self.topology.is_up(site) {
            return false;
        }
        self.stats.submitted += 1;
        let payload = self.fresh_payload();
        self.sites[site.index()].start_update(payload, &mut self.scratch);
        self.apply_actions(site);
        true
    }

    /// Submit a read-only request at `site` (paper footnote 5). Returns
    /// false if the site is down.
    pub fn submit_read(&mut self, site: SiteId) -> bool {
        if !self.topology.is_up(site) {
            return false;
        }
        self.stats.submitted += 1;
        self.sites[site.index()].start_read(&mut self.scratch);
        self.apply_actions(site);
        true
    }

    /// Crash a site (volatile state lost; messages to it dropped).
    pub fn crash_site(&mut self, site: SiteId) {
        if self.topology.is_up(site) {
            self.topology.crash(site);
            self.sites[site.index()].crash();
            self.stats.site_crashes += 1;
            if self.divergence_trap == Some(site) {
                // Fabricate the divergence the armed trap promises; the
                // sentinel payload/txn make the fake origin obvious.
                let entry = LedgerEntry {
                    payload: u64::MAX,
                    txn: TxnId::new(site, u64::MAX),
                };
                self.violations.push(ConsistencyViolation::DivergentCommit {
                    version: 1,
                    first: entry,
                    second: entry,
                });
            }
        }
    }

    /// Arm a deliberate consistency violation on the next crash of
    /// `site`. This exists solely so tests (and the CLI's minimizer
    /// self-check) can exercise [`crate::nemesis::minimize`] against a
    /// deterministic failing oracle without a real protocol bug.
    #[doc(hidden)]
    pub fn set_divergence_trap(&mut self, site: SiteId) {
        self.divergence_trap = Some(site);
    }

    /// Recover a site; it runs the restart protocol of Section V-C.
    pub fn recover_site(&mut self, site: SiteId) {
        if !self.topology.is_up(site) {
            self.topology.recover(site);
            self.stats.site_recoveries += 1;
            let payload = self.fresh_payload();
            self.sites[site.index()].recover(payload, &mut self.scratch);
            // Tag the Make_Current transaction (if one started) so its
            // outcome is booked as restart traffic, not workload.
            for action in &self.scratch {
                if let Action::Broadcast {
                    msg: Message::VoteRequest { txn },
                } = action
                {
                    self.restart_txns.insert(*txn);
                }
            }
            self.apply_actions(site);
        }
    }

    /// Fail the link between two sites.
    pub fn fail_link(&mut self, a: SiteId, b: SiteId) {
        self.topology.fail_link(a, b);
    }

    /// Repair the link between two sites.
    pub fn repair_link(&mut self, a: SiteId, b: SiteId) {
        self.topology.repair_link(a, b);
    }

    /// Sever only the `from → to` direction of a link (asymmetric
    /// failure: replies still flow, requests do not — or vice versa).
    pub fn fail_link_one_way(&mut self, from: SiteId, to: SiteId) {
        self.topology.fail_link_one_way(from, to);
    }

    /// Restore one direction of a link.
    pub fn repair_link_one_way(&mut self, from: SiteId, to: SiteId) {
        self.topology.repair_link_one_way(from, to);
    }

    /// Heal the world: recover every site, repair every link direction,
    /// and clear the windowed nemesis channel perturbations. (Pending
    /// duplicated/ jittered deliveries already in flight still arrive.)
    pub fn heal(&mut self) {
        for i in 0..self.config.n {
            self.recover_site(SiteId::new(i));
        }
        self.topology.heal_links();
        self.nemesis = NemesisKnobs::default();
    }

    /// Impose an explicit partition layout (see
    /// [`Topology::impose_partitions`]).
    pub fn impose_partitions(&mut self, parts: &[SiteSet]) {
        self.topology.impose_partitions(parts);
    }

    /// Drain the scratch sink, interpreting each action. The buffer is
    /// taken out of `self` for the duration (the single-file engine
    /// never re-enters a kernel from inside this loop) and put back
    /// with its capacity intact.
    fn apply_actions(&mut self, site: SiteId) {
        let mut actions = std::mem::take(&mut self.scratch);
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.send(site, to, msg),
                Action::Broadcast { msg } => {
                    for i in 0..self.config.n {
                        let to = SiteId::new(i);
                        if to != site {
                            self.send(site, to, msg.clone());
                        }
                    }
                }
                Action::SetTimer { txn, kind } => {
                    let base = match kind {
                        TimerKind::VoteDeadline => self.config.vote_timeout,
                        TimerKind::CatchUpDeadline => self.config.catchup_timeout,
                        TimerKind::PreparedRetry => self
                            .config
                            .backoff()
                            .base_delay(self.sites[site.index()].prepared_rounds()),
                    };
                    let delay = self.jittered(base);
                    self.schedule(delay, Event::Timer { site, txn, kind });
                }
                Action::Resolved { txn, reason } => {
                    let restart = self.restart_txns.remove(&txn);
                    match reason {
                        ResolveReason::Committed if restart => {
                            self.stats.restarts_committed += 1;
                        }
                        ResolveReason::Committed => self.stats.commits += 1,
                        ResolveReason::ReadServed => self.stats.reads_served += 1,
                        ResolveReason::NotDistinguished | ResolveReason::Timeout if restart => {
                            self.stats.restarts_rejected += 1;
                        }
                        ResolveReason::NotDistinguished => self.stats.rejected += 1,
                        ResolveReason::LockBusy => self.stats.lock_busy += 1,
                        ResolveReason::Timeout => self.stats.timeouts += 1,
                    }
                }
                Action::CommitRecorded {
                    version,
                    payload,
                    txn,
                } => self.record_commit(version, payload, txn),
                Action::DecisionReady { .. } => {
                    debug_assert!(false, "single-file engine never starts group legs");
                }
            }
        }
        self.scratch = actions;
    }

    fn record_commit(&mut self, version: u64, payload: u64, txn: TxnId) {
        let entry = LedgerEntry { payload, txn };
        let idx = (version - 1) as usize;
        if idx >= self.ledger.len() {
            self.ledger.resize(idx + 1, None);
        }
        match self.ledger[idx] {
            Some(existing) => self.violations.push(ConsistencyViolation::DivergentCommit {
                version,
                first: existing,
                second: entry,
            }),
            None => self.ledger[idx] = Some(entry),
        }
    }

    /// Scale a timer delay by the configured jitter fraction (via the
    /// shared [`BackoffPolicy`]). The RNG is only consulted when jitter
    /// is on, so default-config runs replay the exact event streams of
    /// jitter-free builds.
    fn jittered(&mut self, base: f64) -> f64 {
        if self.config.jitter > 0.0 {
            let u: f64 = self.rng.gen();
            self.config.backoff().scale(base, u)
        } else {
            base
        }
    }

    /// One delivery's transit time: base latency plus a uniform draw
    /// from the widest extra-latency window currently in force.
    fn delivery_delay(&mut self) -> f64 {
        let extra = self.config.latency_jitter.max(self.nemesis.reorder_extra);
        if extra > 0.0 {
            self.config.latency + self.rng.gen::<f64>() * extra
        } else {
            self.config.latency
        }
    }

    fn send(&mut self, from: SiteId, to: SiteId, msg: Message) {
        self.stats.messages_sent += 1;
        let drop_p = self.config.drop_probability.max(self.nemesis.loss);
        if drop_p > 0.0 && self.rng.gen::<f64>() < drop_p {
            self.stats.messages_dropped += 1;
            return;
        }
        let delay = self.delivery_delay();
        let dup_p = self
            .config
            .duplicate_probability
            .max(self.nemesis.duplication);
        if dup_p > 0.0 && self.rng.gen::<f64>() < dup_p {
            // The copy takes its own (independently jittered) transit
            // time on top of the original's, so duplicates also arrive
            // out of order relative to later traffic.
            let copy_delay = delay + self.delivery_delay();
            self.stats.messages_duplicated += 1;
            self.schedule(
                copy_delay,
                Event::Deliver {
                    from,
                    to,
                    msg: msg.clone(),
                },
            );
        }
        self.schedule(delay, Event::Deliver { from, to, msg });
    }

    /// Process one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((when, event)) = self.timers.pop_next() else {
            return false;
        };
        self.clock = when.0;
        match event {
            Event::Deliver { from, to, msg } => {
                // Delivery requires connectivity *now*.
                if self.topology.connected(from, to) {
                    self.sites[to.index()].handle_message(from, msg, &mut self.scratch);
                    self.apply_actions(to);
                } else {
                    self.stats.messages_dropped += 1;
                }
            }
            Event::Timer { site, txn, kind } => {
                // Timers at a crashed site die with its volatile state.
                if self.topology.is_up(site) {
                    self.sites[site.index()].timer_fired(txn, kind, &mut self.scratch);
                    self.apply_actions(site);
                }
            }
            Event::Arrival { site } => {
                if self.topology.is_up(site) {
                    self.stats.submitted += 1;
                    let payload = self.fresh_payload();
                    self.sites[site.index()].start_update(payload, &mut self.scratch);
                    self.apply_actions(site);
                } else {
                    self.stats.refused_down += 1;
                }
            }
            Event::ToggleRandomSite => {
                let site = SiteId::new(self.rng.gen_range(0..self.config.n));
                if self.topology.is_up(site) {
                    self.crash_site(site);
                } else {
                    self.recover_site(site);
                }
            }
            Event::CrashSite { site } => self.crash_site(site),
            Event::RecoverSite { site } => self.recover_site(site),
            Event::FailOneWay { from, to } => self.topology.fail_link_one_way(from, to),
            Event::RepairOneWay { from, to } => self.topology.repair_link_one_way(from, to),
            Event::ImposePartition { parts } => self.topology.impose_partitions(&parts),
            Event::HealLinks => self.topology.heal_links(),
            Event::SetLoss { p } => self.nemesis.loss = p,
            Event::SetDuplication { p } => self.nemesis.duplication = p,
            Event::SetReorder { extra } => self.nemesis.reorder_extra = extra,
            Event::ToggleRandomLink => {
                let a = self.rng.gen_range(0..self.config.n);
                let mut b = self.rng.gen_range(0..self.config.n - 1);
                if b >= a {
                    b += 1;
                }
                let (a, b) = (SiteId::new(a), SiteId::new(b));
                if self.topology.link_up(a, b) {
                    self.fail_link(a, b);
                } else {
                    self.repair_link(a, b);
                }
            }
        }
        true
    }

    /// Run until the queue drains or the clock passes `deadline`.
    pub fn run_until(&mut self, deadline: f64) {
        while let Some(&VirtualInstant(t)) = self.timers.next_deadline() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.clock = self.clock.max(deadline);
    }

    /// Drain every pending event (quiesce).
    pub fn quiesce(&mut self) {
        // Timers re-arm (prepared retries), so bound by a generous
        // horizon rather than literal emptiness.
        let deadline = self.clock + 10_000.0 * self.config.max_backoff;
        let mut guard = 0u64;
        while let Some(&VirtualInstant(t)) = self.timers.next_deadline() {
            if t > deadline {
                break;
            }
            // Stop early once nothing but prepared-retry heartbeats of
            // permanently blocked transactions remain.
            guard += 1;
            if guard > 10_000_000 {
                break;
            }
            self.step();
        }
    }

    /// Schedule a Poisson workload: updates arrive at uniformly random
    /// sites at `rate` per time unit, for `duration` time units from
    /// now. (Arrivals at down sites are counted as failed submissions by
    /// the paper's availability measure — here they are simply ignored,
    /// matching the engine-side measure used in `dynvote-mc`.)
    pub fn schedule_poisson_arrivals(&mut self, rate: f64, duration: f64) {
        assert!(rate > 0.0 && duration > 0.0);
        let mut t = 0.0;
        loop {
            let u: f64 = self.rng.gen();
            t += -(1.0 - u).ln() / rate;
            if t > duration {
                break;
            }
            let site = SiteId::new(self.rng.gen_range(0..self.config.n));
            self.schedule(t, Event::Arrival { site });
        }
    }

    /// Schedule random fault injection: site crash/recovery toggles at
    /// `site_rate` per time unit and link fail/repair toggles at
    /// `link_rate`, for `duration` time units from now. The affected
    /// site/link is chosen at execution time, so a fixed seed gives a
    /// deterministic fault script.
    pub fn schedule_random_faults(&mut self, site_rate: f64, link_rate: f64, duration: f64) {
        assert!(duration > 0.0);
        for (rate, make) in [
            (site_rate, Event::ToggleRandomSite),
            (link_rate, Event::ToggleRandomLink),
        ] {
            if rate <= 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                let u: f64 = self.rng.gen();
                t += -(1.0 - u).ln() / rate;
                if t > duration {
                    break;
                }
                self.schedule(t, make.clone());
            }
        }
    }

    /// Install a [`FaultSchedule`]: every behavior's `at`/`duration`
    /// are offsets from the current clock. Each windowed behavior
    /// expands into a begin event and an end event (restart, heal,
    /// repair, knob reset), so schedules compose with the Poisson
    /// workload and with each other; overlapping windows of the same
    /// channel knob resolve last-writer-wins. Replaying the same
    /// schedule with the same seed and workload reproduces the run
    /// event-for-event — this is what makes serialized schedules
    /// replayable and [`crate::nemesis::minimize`] sound.
    ///
    /// Site ids outside `0..n` are ignored (a hand-edited schedule
    /// should not crash the engine), negative times clamp to now.
    pub fn apply_schedule(&mut self, schedule: &FaultSchedule) {
        let n = self.config.n;
        let site_ok = |s: usize| s < n;
        for event in &schedule.events {
            let at = event.at().max(0.0);
            let end = at + event.duration().max(0.0);
            match event {
                NemesisEvent::Crash { site, .. } => {
                    if site_ok(*site) {
                        let site = SiteId::new(*site);
                        self.schedule(at, Event::CrashSite { site });
                        self.schedule(end, Event::RecoverSite { site });
                    }
                }
                NemesisEvent::Partition { groups, .. } => {
                    let parts: Vec<SiteSet> = groups
                        .iter()
                        .map(|group| {
                            let mut set = SiteSet::EMPTY;
                            for &s in group.iter().filter(|&&s| site_ok(s)) {
                                set.insert(SiteId::new(s));
                            }
                            set
                        })
                        .filter(|set| !set.is_empty())
                        .collect();
                    if !parts.is_empty() {
                        self.schedule(at, Event::ImposePartition { parts });
                        self.schedule(end, Event::HealLinks);
                    }
                }
                NemesisEvent::OneWay { from, to, .. } => {
                    if site_ok(*from) && site_ok(*to) && from != to {
                        let (from, to) = (SiteId::new(*from), SiteId::new(*to));
                        self.schedule(at, Event::FailOneWay { from, to });
                        self.schedule(end, Event::RepairOneWay { from, to });
                    }
                }
                NemesisEvent::Lossy { p, .. } => {
                    let p = p.clamp(0.0, 1.0);
                    self.schedule(at, Event::SetLoss { p });
                    self.schedule(end, Event::SetLoss { p: 0.0 });
                }
                NemesisEvent::Duplicate { p, .. } => {
                    let p = p.clamp(0.0, 1.0);
                    self.schedule(at, Event::SetDuplication { p });
                    self.schedule(end, Event::SetDuplication { p: 0.0 });
                }
                NemesisEvent::Reorder { extra, .. } => {
                    let extra = extra.max(0.0);
                    self.schedule(at, Event::SetReorder { extra });
                    self.schedule(end, Event::SetReorder { extra: 0.0 });
                }
            }
        }
    }

    /// Schedule fault processes matching the paper's stochastic model:
    /// each site independently alternates `Exp(λ = 1)` up-times and
    /// `Exp(μ = ratio)` down-times, for `duration` time units from now
    /// (all sites start up). Combined with Poisson update arrivals this
    /// lets the *message-level protocol's* empirical availability
    /// (commits / submissions) be compared against the analytic model —
    /// see `tests/empirical_availability.rs`.
    pub fn schedule_model_faults(&mut self, ratio: f64, duration: f64) {
        assert!(ratio > 0.0 && duration > 0.0);
        for i in 0..self.config.n {
            let site = SiteId::new(i);
            let mut t = 0.0;
            let mut up = true;
            loop {
                let rate = if up { 1.0 } else { ratio };
                let u: f64 = self.rng.gen();
                t += -(1.0 - u).ln() / rate;
                if t > duration {
                    break;
                }
                let event = if up {
                    Event::CrashSite { site }
                } else {
                    Event::RecoverSite { site }
                };
                self.schedule(t, event);
                up = !up;
            }
        }
    }

    /// Verify the end-to-end consistency invariants (Theorem 1's
    /// observable consequences). Returns every violation found.
    #[must_use]
    pub fn check_invariants(&self) -> Vec<ConsistencyViolation> {
        let mut violations = self.violations.clone();
        // The global chain must be gapless: versions 1..=max all
        // committed.
        for (i, slot) in self.ledger.iter().enumerate() {
            if slot.is_none() {
                violations.push(ConsistencyViolation::VersionGap {
                    missing: (i + 1) as u64,
                });
            }
        }
        // Every site's log must be a gapless prefix matching the chain,
        // and its metadata version must equal its log length.
        for site in &self.sites {
            for (i, entry) in site.log().iter().enumerate() {
                let expected_version = (i + 1) as u64;
                let chain = self.ledger.get(i).copied().flatten();
                if entry.version != expected_version
                    || chain.map_or(true, |c| c.payload != entry.payload)
                {
                    violations.push(ConsistencyViolation::LogMismatch {
                        site: site.id(),
                        version: expected_version,
                    });
                    break;
                }
            }
            if site.meta().version != site.log().last().map_or(0, LogEntry::version_of) {
                violations.push(ConsistencyViolation::MetaLogSkew { site: site.id() });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: usize) -> Simulation {
        Simulation::new(SimConfig {
            n,
            ..SimConfig::default()
        })
    }

    #[test]
    fn single_update_commits_everywhere() {
        let mut s = sim(5);
        assert!(s.submit_update(SiteId(0)));
        s.quiesce();
        assert_eq!(s.stats().commits, 1);
        for i in 0..5 {
            assert_eq!(s.site(SiteId(i)).meta().version, 1, "site {i}");
            assert_eq!(s.site(SiteId(i)).log().len(), 1);
        }
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn sequential_updates_build_a_chain() {
        let mut s = sim(5);
        for i in 0..10u8 {
            s.submit_update(SiteId(i % 5));
            s.quiesce();
        }
        assert_eq!(s.stats().commits, 10);
        assert_eq!(s.ledger().len(), 10);
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut s = sim(5);
        s.submit_update(SiteId(0));
        s.quiesce();
        s.impose_partitions(&[
            SiteSet::parse("AB").unwrap(),
            SiteSet::parse("CDE").unwrap(),
        ]);
        s.submit_update(SiteId(0)); // in the AB minority
        s.quiesce();
        assert_eq!(s.stats().commits, 1);
        assert_eq!(s.stats().rejected, 1);
        // The majority partition still commits.
        s.submit_update(SiteId(3));
        s.quiesce();
        assert_eq!(s.stats().commits, 2);
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn crashed_site_catches_up_on_recovery() {
        let mut s = sim(5);
        s.submit_update(SiteId(0));
        s.quiesce();
        s.crash_site(SiteId(4));
        s.submit_update(SiteId(0));
        s.quiesce();
        assert_eq!(s.site(SiteId(4)).meta().version, 1, "missed the update");
        s.recover_site(SiteId(4));
        s.quiesce();
        // Make_Current commits a no-op version that brings E current
        // (booked as restart traffic, not a workload commit).
        assert_eq!(s.stats().commits, 2);
        assert_eq!(s.stats().restarts_committed, 1);
        assert_eq!(s.site(SiteId(4)).meta().version, 3);
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn concurrent_updates_serialize() {
        let mut s = sim(5);
        // Two coordinators race; locks and votes serialize them (one may
        // be rejected for lock-busy or lack of quorum, or both commit in
        // sequence depending on timing).
        s.submit_update(SiteId(0));
        s.submit_update(SiteId(3));
        s.quiesce();
        assert!(s.check_invariants().is_empty());
        assert!(s.stats().commits >= 1);
    }

    #[test]
    fn coordinator_crash_mid_protocol_is_safe() {
        let mut s = sim(5);
        s.submit_update(SiteId(0));
        // Crash the coordinator before any message is delivered.
        s.crash_site(SiteId(0));
        s.run_until(5.0);
        // Subordinates are prepared and blocked; no commit can happen
        // from this transaction, and the update is lost (presumed
        // abort once the coordinator answers status queries).
        s.recover_site(SiteId(0));
        s.quiesce();
        assert!(s.check_invariants().is_empty());
        // After recovery, Make_Current runs; subordinates get released
        // via the termination protocol, so a fresh update must succeed.
        s.submit_update(SiteId(1));
        s.quiesce();
        assert!(s.stats().commits >= 1);
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn fig1_scenario_end_to_end() {
        // Drive the message-level protocol through the Fig. 1 partition
        // graph and check the hybrid's distinguished partitions.
        let mut s = sim(5);
        s.submit_update(SiteId(0));
        s.quiesce();

        for step in dynvote_core::fig1_partition_graph() {
            s.impose_partitions(&step.partitions);
            for p in &step.partitions {
                let coordinator = p.first().unwrap();
                s.submit_update(coordinator);
                s.quiesce();
            }
        }
        // Hybrid accepts at: t1 (ABC), t2 (AB), t4 (BC) — plus the
        // initial update: 4 commits.
        assert_eq!(s.stats().commits, 4);
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn config_backoff_matches_the_shared_policy() {
        let config = SimConfig {
            initial_backoff: 0.25,
            max_backoff: 2.0,
            jitter: 0.3,
            ..SimConfig::default()
        };
        let policy = config.backoff();
        assert_eq!(
            policy,
            BackoffPolicy::new(0.25, 2.0).with_jitter(0.3),
            "the engine arms PreparedRetry timers from the shared policy"
        );
        assert_eq!(policy.base_delay(0), 0.25);
        assert_eq!(policy.base_delay(3), 2.0);
        assert_eq!(policy.base_delay(40), 2.0);
    }

    #[test]
    fn validate_rejects_out_of_range_fields() {
        let ok = SimConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        let cases: Vec<(SimConfig, ConfigError)> = vec![
            (
                SimConfig { n: 0, ..ok.clone() },
                ConfigError::SiteCount { n: 0 },
            ),
            (
                SimConfig { n: 1, ..ok.clone() },
                ConfigError::SiteCount { n: 1 },
            ),
            (
                SimConfig {
                    latency: 0.0,
                    ..ok.clone()
                },
                ConfigError::NotPositive {
                    field: "latency",
                    value: 0.0,
                },
            ),
            (
                SimConfig {
                    vote_timeout: -1.0,
                    ..ok.clone()
                },
                ConfigError::NotPositive {
                    field: "vote_timeout",
                    value: -1.0,
                },
            ),
            (
                SimConfig {
                    drop_probability: 1.5,
                    ..ok.clone()
                },
                ConfigError::NotProbability {
                    field: "drop_probability",
                    value: 1.5,
                },
            ),
            (
                SimConfig {
                    duplicate_probability: -0.1,
                    ..ok.clone()
                },
                ConfigError::NotProbability {
                    field: "duplicate_probability",
                    value: -0.1,
                },
            ),
            (
                SimConfig {
                    latency_jitter: f64::NAN,
                    ..ok.clone()
                },
                ConfigError::Negative {
                    field: "latency_jitter",
                    value: f64::NAN,
                },
            ),
            (
                SimConfig {
                    initial_backoff: 0.5,
                    max_backoff: 0.25,
                    ..ok.clone()
                },
                ConfigError::BackoffRange {
                    initial: 0.5,
                    max: 0.25,
                },
            ),
            (
                SimConfig {
                    jitter: 1.0,
                    ..ok.clone()
                },
                ConfigError::NotProbability {
                    field: "jitter",
                    value: 1.0,
                },
            ),
        ];
        for (config, expected) in cases {
            let got = config.validate().unwrap_err();
            // NaN != NaN, so compare the rendered error for that case.
            assert_eq!(format!("{got}"), format!("{expected}"));
        }
    }

    #[test]
    #[should_panic(expected = "invalid SimConfig")]
    fn new_refuses_invalid_config() {
        let _ = Simulation::new(SimConfig {
            drop_probability: 2.0,
            ..SimConfig::default()
        });
    }

    #[test]
    fn exponential_backoff_thins_retry_storms() {
        // Coordinator crashes mid-vote; subordinates stay blocked for 60
        // time units. Exponential backoff must cut the termination-
        // protocol traffic by far more than half vs. flat retries.
        let run = |max_backoff: f64| {
            let mut s = Simulation::new(SimConfig {
                initial_backoff: 0.25,
                max_backoff,
                ..SimConfig::default()
            });
            s.submit_update(SiteId(0));
            s.run_until(0.015);
            s.crash_site(SiteId(0));
            s.run_until(60.0);
            s.stats().messages_sent
        };
        let flat = run(0.25);
        let exponential = run(8.0);
        assert!(
            exponential < flat / 2,
            "flat retries sent {flat}, exponential sent {exponential}"
        );
    }

    #[test]
    fn timer_jitter_keeps_the_protocol_live_and_safe() {
        let mut s = Simulation::new(SimConfig {
            jitter: 0.3,
            latency_jitter: 0.002,
            ..SimConfig::default()
        });
        for i in 0..10u8 {
            s.submit_update(SiteId(i % 5));
            s.quiesce();
        }
        assert_eq!(s.stats().commits, 10);
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn lossy_network_preserves_safety() {
        let mut s = Simulation::new(SimConfig {
            n: 5,
            drop_probability: 0.2,
            ..SimConfig::default()
        });
        s.schedule_poisson_arrivals(5.0, 50.0);
        s.run_until(60.0);
        s.quiesce();
        assert!(
            s.check_invariants().is_empty(),
            "{:?}",
            s.check_invariants()
        );
        assert!(s.stats().commits > 0);
    }
}
