//! Network topology: site liveness, link liveness, partitions.
//!
//! Site or communication-link failures "may separate the sites into more
//! than one connected component of communicating sites. We call each
//! connected component a *partition*" (Section II). The topology tracks
//! both failure kinds; a message is deliverable iff its endpoints are up
//! and connected through up sites and up links.

use dynvote_core::{SiteId, SiteSet, MAX_SITES};

/// The mutable network state of a simulation.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    up: SiteSet,
    /// `links[a][b]`: the (bidirectional) link between `a` and `b` is up.
    links: Vec<Vec<bool>>,
}

impl Topology {
    /// A fully connected network of `n` up sites.
    #[must_use]
    pub fn fully_connected(n: usize) -> Self {
        assert!((2..=MAX_SITES).contains(&n));
        Topology {
            n,
            up: SiteSet::all(n),
            links: vec![vec![true; n]; n],
        }
    }

    /// Number of sites.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The set of up sites.
    #[must_use]
    pub fn up_sites(&self) -> SiteSet {
        self.up
    }

    /// True if `site` is up.
    #[must_use]
    pub fn is_up(&self, site: SiteId) -> bool {
        self.up.contains(site)
    }

    /// Crash a site.
    pub fn crash(&mut self, site: SiteId) {
        self.up.remove(site);
    }

    /// Recover a site.
    pub fn recover(&mut self, site: SiteId) {
        assert!(site.index() < self.n);
        self.up.insert(site);
    }

    /// Fail the link between `a` and `b`.
    pub fn fail_link(&mut self, a: SiteId, b: SiteId) {
        assert_ne!(a, b);
        self.links[a.index()][b.index()] = false;
        self.links[b.index()][a.index()] = false;
    }

    /// Repair the link between `a` and `b`.
    pub fn repair_link(&mut self, a: SiteId, b: SiteId) {
        assert_ne!(a, b);
        self.links[a.index()][b.index()] = true;
        self.links[b.index()][a.index()] = true;
    }

    /// True if the direct link between `a` and `b` is up.
    #[must_use]
    pub fn link_up(&self, a: SiteId, b: SiteId) -> bool {
        self.links[a.index()][b.index()]
    }

    /// The partition (connected component of up sites over up links)
    /// containing `site`; empty if the site is down.
    #[must_use]
    pub fn partition_of(&self, site: SiteId) -> SiteSet {
        if !self.is_up(site) {
            return SiteSet::EMPTY;
        }
        let mut component = SiteSet::singleton(site);
        let mut frontier = vec![site];
        while let Some(current) = frontier.pop() {
            for next in self.up.iter() {
                if !component.contains(next) && self.link_up(current, next) {
                    component.insert(next);
                    frontier.push(next);
                }
            }
        }
        component
    }

    /// True if `a` can exchange messages with `b` right now.
    #[must_use]
    pub fn connected(&self, a: SiteId, b: SiteId) -> bool {
        if a == b {
            return self.is_up(a);
        }
        self.is_up(a) && self.is_up(b) && self.partition_of(a).contains(b)
    }

    /// Every partition, as a list of disjoint site sets covering the up
    /// sites.
    #[must_use]
    pub fn partitions(&self) -> Vec<SiteSet> {
        let mut seen = SiteSet::EMPTY;
        let mut result = Vec::new();
        for site in self.up.iter() {
            if !seen.contains(site) {
                let part = self.partition_of(site);
                seen = seen.union(part);
                result.push(part);
            }
        }
        result
    }

    /// Impose an explicit partition layout: all links inside each given
    /// set are repaired, all links across sets are failed. Sets must be
    /// disjoint; sites not mentioned keep their liveness but lose links
    /// to everyone else.
    pub fn impose_partitions(&mut self, parts: &[SiteSet]) {
        for i in 0..self.n {
            for j in i + 1..self.n {
                let (a, b) = (SiteId::new(i), SiteId::new(j));
                let same = parts.iter().any(|p| p.contains(a) && p.contains(b));
                if same {
                    self.repair_link(a, b);
                } else {
                    self.fail_link(a, b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> SiteSet {
        SiteSet::parse(s).unwrap()
    }

    #[test]
    fn fully_connected_is_one_partition() {
        let topo = Topology::fully_connected(5);
        assert_eq!(topo.partitions(), vec![SiteSet::all(5)]);
        assert!(topo.connected(SiteId(0), SiteId(4)));
    }

    #[test]
    fn crash_removes_site_from_partitions() {
        let mut topo = Topology::fully_connected(3);
        topo.crash(SiteId(1));
        assert_eq!(topo.partitions(), vec![set("AC")]);
        assert!(!topo.connected(SiteId(0), SiteId(1)));
        assert!(topo.connected(SiteId(0), SiteId(2)));
        topo.recover(SiteId(1));
        assert!(topo.connected(SiteId(0), SiteId(1)));
    }

    #[test]
    fn link_failures_split_partitions() {
        let mut topo = Topology::fully_connected(4);
        // Cut AB|CD.
        topo.impose_partitions(&[set("AB"), set("CD")]);
        let mut parts = topo.partitions();
        parts.sort();
        assert_eq!(parts, vec![set("AB"), set("CD")]);
        assert!(!topo.connected(SiteId(0), SiteId(2)));
        assert!(topo.connected(SiteId(0), SiteId(1)));
    }

    #[test]
    fn transitive_connectivity_through_relay() {
        let mut topo = Topology::fully_connected(3);
        // Only links A-B and B-C are up: A reaches C through B.
        topo.fail_link(SiteId(0), SiteId(2));
        assert!(topo.connected(SiteId(0), SiteId(2)));
        // If B crashes, the relay disappears.
        topo.crash(SiteId(1));
        assert!(!topo.connected(SiteId(0), SiteId(2)));
    }

    #[test]
    fn down_site_has_empty_partition() {
        let mut topo = Topology::fully_connected(3);
        topo.crash(SiteId(0));
        assert_eq!(topo.partition_of(SiteId(0)), SiteSet::EMPTY);
        assert!(!topo.connected(SiteId(0), SiteId(0)));
        assert!(topo.connected(SiteId(1), SiteId(1)));
    }

    #[test]
    fn fig1_partition_sequence() {
        let mut topo = Topology::fully_connected(5);
        for step in dynvote_core::fig1_partition_graph() {
            topo.impose_partitions(&step.partitions);
            let mut got = topo.partitions();
            got.sort();
            let mut want = step.partitions.clone();
            want.sort();
            assert_eq!(got, want, "{}", step.label);
        }
    }
}
