//! Network topology: site liveness, link liveness, partitions.
//!
//! Site or communication-link failures "may separate the sites into more
//! than one connected component of communicating sites. We call each
//! connected component a *partition*" (Section II). The topology tracks
//! both failure kinds; a message is deliverable iff its endpoints are up
//! and connected through up sites and up links.
//!
//! Links are stored *per direction*: the ordinary [`Topology::fail_link`]
//! / [`Topology::repair_link`] pair acts on both directions at once (the
//! paper's symmetric link failures), while
//! [`Topology::fail_link_one_way`] models the asymmetric failures real
//! networks exhibit — `a` hears `b` but not vice versa. With asymmetric
//! failures "partition" means *strongly connected component*: the set of
//! sites that can each reach the other; with symmetric links this
//! coincides with the paper's connected components.

use dynvote_core::{SiteId, SiteSet, MAX_SITES};

/// The mutable network state of a simulation.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    up: SiteSet,
    /// `links[a][b]`: the `a → b` direction of the link is up.
    links: Vec<Vec<bool>>,
}

impl Topology {
    /// A fully connected network of `n` up sites.
    #[must_use]
    pub fn fully_connected(n: usize) -> Self {
        assert!((2..=MAX_SITES).contains(&n));
        Topology {
            n,
            up: SiteSet::all(n),
            links: vec![vec![true; n]; n],
        }
    }

    /// Number of sites.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The set of up sites.
    #[must_use]
    pub fn up_sites(&self) -> SiteSet {
        self.up
    }

    /// True if `site` is up.
    #[must_use]
    pub fn is_up(&self, site: SiteId) -> bool {
        self.up.contains(site)
    }

    /// Crash a site.
    pub fn crash(&mut self, site: SiteId) {
        self.up.remove(site);
    }

    /// Recover a site.
    pub fn recover(&mut self, site: SiteId) {
        assert!(site.index() < self.n);
        self.up.insert(site);
    }

    /// Fail the link between `a` and `b` (both directions).
    pub fn fail_link(&mut self, a: SiteId, b: SiteId) {
        assert_ne!(a, b);
        self.links[a.index()][b.index()] = false;
        self.links[b.index()][a.index()] = false;
    }

    /// Repair the link between `a` and `b` (both directions).
    pub fn repair_link(&mut self, a: SiteId, b: SiteId) {
        assert_ne!(a, b);
        self.links[a.index()][b.index()] = true;
        self.links[b.index()][a.index()] = true;
    }

    /// Fail only the `from → to` direction of a link: `to` still reaches
    /// `from` directly, but not vice versa (asymmetric failure).
    pub fn fail_link_one_way(&mut self, from: SiteId, to: SiteId) {
        assert_ne!(from, to);
        self.links[from.index()][to.index()] = false;
    }

    /// Repair only the `from → to` direction of a link.
    pub fn repair_link_one_way(&mut self, from: SiteId, to: SiteId) {
        assert_ne!(from, to);
        self.links[from.index()][to.index()] = true;
    }

    /// True if the `a → b` direction of the direct link is up.
    #[must_use]
    pub fn link_up(&self, a: SiteId, b: SiteId) -> bool {
        self.links[a.index()][b.index()]
    }

    /// Up sites reachable from `site` following links in the given
    /// direction (`forward`: edges out of the frontier; `!forward`:
    /// edges into it).
    fn reach(&self, site: SiteId, forward: bool) -> SiteSet {
        let mut seen = SiteSet::singleton(site);
        let mut frontier = vec![site];
        while let Some(current) = frontier.pop() {
            for next in self.up.iter() {
                let edge = if forward {
                    self.link_up(current, next)
                } else {
                    self.link_up(next, current)
                };
                if !seen.contains(next) && edge {
                    seen.insert(next);
                    frontier.push(next);
                }
            }
        }
        seen
    }

    /// The partition containing `site`: the up sites it can reach *and*
    /// that can reach it (a strongly connected component; with symmetric
    /// links, the plain connected component). Empty if the site is down.
    #[must_use]
    pub fn partition_of(&self, site: SiteId) -> SiteSet {
        if !self.is_up(site) {
            return SiteSet::EMPTY;
        }
        let forward = self.reach(site, true);
        let backward = self.reach(site, false);
        let mut component = SiteSet::EMPTY;
        for s in forward.iter() {
            if backward.contains(s) {
                component.insert(s);
            }
        }
        component
    }

    /// True if a message sent by `a` can reach `b` right now (through up
    /// sites and up link directions). Asymmetric link failures make this
    /// relation asymmetric: `connected(a, b)` may hold while
    /// `connected(b, a)` does not.
    #[must_use]
    pub fn connected(&self, a: SiteId, b: SiteId) -> bool {
        if a == b {
            return self.is_up(a);
        }
        self.is_up(a) && self.is_up(b) && self.reach(a, true).contains(b)
    }

    /// Every partition, as a list of disjoint site sets covering the up
    /// sites.
    #[must_use]
    pub fn partitions(&self) -> Vec<SiteSet> {
        let mut seen = SiteSet::EMPTY;
        let mut result = Vec::new();
        for site in self.up.iter() {
            if !seen.contains(site) {
                let part = self.partition_of(site);
                seen = seen.union(part);
                result.push(part);
            }
        }
        result
    }

    /// Repair every link in both directions (sites keep their liveness).
    pub fn heal_links(&mut self) {
        for row in &mut self.links {
            for cell in row.iter_mut() {
                *cell = true;
            }
        }
    }

    /// Impose an explicit partition layout: all links inside each given
    /// set are repaired, all links across sets are failed. Sets must be
    /// disjoint; sites not mentioned keep their liveness but lose links
    /// to everyone else.
    pub fn impose_partitions(&mut self, parts: &[SiteSet]) {
        for i in 0..self.n {
            for j in i + 1..self.n {
                let (a, b) = (SiteId::new(i), SiteId::new(j));
                let same = parts.iter().any(|p| p.contains(a) && p.contains(b));
                if same {
                    self.repair_link(a, b);
                } else {
                    self.fail_link(a, b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> SiteSet {
        SiteSet::parse(s).unwrap()
    }

    #[test]
    fn fully_connected_is_one_partition() {
        let topo = Topology::fully_connected(5);
        assert_eq!(topo.partitions(), vec![SiteSet::all(5)]);
        assert!(topo.connected(SiteId(0), SiteId(4)));
    }

    #[test]
    fn crash_removes_site_from_partitions() {
        let mut topo = Topology::fully_connected(3);
        topo.crash(SiteId(1));
        assert_eq!(topo.partitions(), vec![set("AC")]);
        assert!(!topo.connected(SiteId(0), SiteId(1)));
        assert!(topo.connected(SiteId(0), SiteId(2)));
        topo.recover(SiteId(1));
        assert!(topo.connected(SiteId(0), SiteId(1)));
    }

    #[test]
    fn link_failures_split_partitions() {
        let mut topo = Topology::fully_connected(4);
        // Cut AB|CD.
        topo.impose_partitions(&[set("AB"), set("CD")]);
        let mut parts = topo.partitions();
        parts.sort();
        assert_eq!(parts, vec![set("AB"), set("CD")]);
        assert!(!topo.connected(SiteId(0), SiteId(2)));
        assert!(topo.connected(SiteId(0), SiteId(1)));
    }

    #[test]
    fn transitive_connectivity_through_relay() {
        let mut topo = Topology::fully_connected(3);
        // Only links A-B and B-C are up: A reaches C through B.
        topo.fail_link(SiteId(0), SiteId(2));
        assert!(topo.connected(SiteId(0), SiteId(2)));
        // If B crashes, the relay disappears.
        topo.crash(SiteId(1));
        assert!(!topo.connected(SiteId(0), SiteId(2)));
    }

    #[test]
    fn down_site_has_empty_partition() {
        let mut topo = Topology::fully_connected(3);
        topo.crash(SiteId(0));
        assert_eq!(topo.partition_of(SiteId(0)), SiteSet::EMPTY);
        assert!(!topo.connected(SiteId(0), SiteId(0)));
        assert!(topo.connected(SiteId(1), SiteId(1)));
    }

    #[test]
    fn one_way_failures_are_asymmetric() {
        let mut topo = Topology::fully_connected(2);
        topo.fail_link_one_way(SiteId(0), SiteId(1));
        assert!(!topo.connected(SiteId(0), SiteId(1)));
        assert!(topo.connected(SiteId(1), SiteId(0)));
        // Mutual reachability is gone, so they are separate partitions.
        assert_eq!(topo.partition_of(SiteId(0)), set("A"));
        assert_eq!(topo.partition_of(SiteId(1)), set("B"));
        topo.repair_link_one_way(SiteId(0), SiteId(1));
        assert!(topo.connected(SiteId(0), SiteId(1)));
        assert_eq!(topo.partition_of(SiteId(0)), set("AB"));
    }

    #[test]
    fn one_way_routing_uses_directed_paths() {
        let mut topo = Topology::fully_connected(3);
        // Cut A→C directly; A still reaches C through B.
        topo.fail_link_one_way(SiteId(0), SiteId(2));
        assert!(topo.connected(SiteId(0), SiteId(2)));
        // Cut the relay direction too: now only C→A survives.
        topo.fail_link_one_way(SiteId(1), SiteId(2));
        assert!(!topo.connected(SiteId(0), SiteId(2)));
        assert!(topo.connected(SiteId(2), SiteId(0)));
    }

    #[test]
    fn heal_links_restores_full_connectivity() {
        let mut topo = Topology::fully_connected(4);
        topo.impose_partitions(&[set("AB"), set("CD")]);
        topo.fail_link_one_way(SiteId(0), SiteId(1));
        topo.heal_links();
        assert_eq!(topo.partitions(), vec![SiteSet::all(4)]);
    }

    #[test]
    fn fig1_partition_sequence() {
        let mut topo = Topology::fully_connected(5);
        for step in dynvote_core::fig1_partition_graph() {
            topo.impose_partitions(&step.partitions);
            let mut got = topo.partitions();
            got.sort();
            let mut want = step.partitions.clone();
            want.sort();
            assert_eq!(got, want, "{}", step.label);
        }
    }
}
