//! Multi-file transactions at the message level — footnote 2, executed.
//!
//! "Any such transaction T will require a distinguished partition for
//! every file in its read and write set." A cross-file update must be
//! **atomic**: either every touched file commits its new version or
//! none does, even if the coordinator crashes between per-file commits.
//!
//! The engine runs one [`SiteActor`] per *(file, site)* pair — each file
//! keeps its own metadata, locks, quorums and per-file protocol — plus a
//! per-site **transaction manager** gluing the legs together:
//!
//! 1. every file leg runs the normal voting (and catch-up) phases, then
//!    parks with [`Action::DecisionReady`];
//! 2. when all legs have decided, the manager force-writes a durable
//!    **group commit record** (files, payload, per-leg participant
//!    views) and only then finalizes each leg — this is the classic
//!    distributed-commit discipline: the single durable write *is* the
//!    atomic commit point;
//! 3. a coordinator that crashes mid-finalization **redoes** the
//!    remaining legs from the group record on recovery (idempotently);
//!    a crash before the record means presumed abort for every leg,
//!    resolved by each file's ordinary termination protocol.
//!
//! The engine's invariant checker verifies, beyond each file's one-copy
//! serializability, cross-file **atomicity**: every durably committed
//! group has all of its legs in the corresponding file ledgers.

use crate::engine::{ConsistencyViolation, LedgerEntry};
use crate::topology::Topology;
use dynvote_core::{
    check_positive, check_probability, check_site_count, AlgorithmKind, ConfigError, CopyMeta,
    SiteId, SiteSet, TimerWheel, VirtualInstant,
};
use dynvote_protocol::{Action, Message, SiteActor, TimerKind, TxnId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Identifies a file in a [`MultiFileSimulation`].
pub type FileIdx = usize;

/// A cross-file transaction group id: coordinator site plus a
/// per-site durable sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId {
    /// Coordinating site.
    pub site: SiteId,
    /// Durable per-site sequence.
    pub seq: u64,
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "G{}#{}", self.site, self.seq)
    }
}

/// Configuration of a multi-file simulation.
#[derive(Debug, Clone)]
pub struct MultiConfig {
    /// Number of sites (every file is replicated at all of them).
    pub n: usize,
    /// One replica control algorithm per file.
    pub files: Vec<AlgorithmKind>,
    /// One-way message latency.
    pub latency: f64,
    /// Per-file vote-collection deadline.
    pub vote_timeout: f64,
    /// Per-file catch-up deadline.
    pub catchup_timeout: f64,
    /// Prepared subordinate's termination-protocol retry interval.
    pub prepared_retry: f64,
    /// Probability an individual message is lost.
    pub drop_probability: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig {
            n: 5,
            files: vec![AlgorithmKind::Hybrid, AlgorithmKind::Voting],
            latency: 0.01,
            vote_timeout: 0.05,
            catchup_timeout: 0.05,
            prepared_retry: 0.25,
            drop_probability: 0.0,
            seed: 7,
        }
    }
}

impl MultiConfig {
    /// Validate every field; [`MultiFileSimulation::new`] refuses
    /// (panics on) a configuration this rejects, so callers accepting
    /// untrusted parameters should call it first and surface the error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_site_count(self.n)?;
        if self.files.is_empty() {
            return Err(ConfigError::NoFiles);
        }
        check_positive("latency", self.latency)?;
        check_positive("vote_timeout", self.vote_timeout)?;
        check_positive("catchup_timeout", self.catchup_timeout)?;
        check_positive("prepared_retry", self.prepared_retry)?;
        check_probability("drop_probability", self.drop_probability)?;
        Ok(())
    }
}

/// Aggregate statistics of a multi-file run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiStats {
    /// Groups submitted.
    pub submitted: u64,
    /// Groups committed (all legs).
    pub group_commits: u64,
    /// Groups aborted because some file lacked a distinguished
    /// partition.
    pub group_rejected: u64,
    /// Groups refused because some copy was locked.
    pub lock_busy: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages lost.
    pub messages_dropped: u64,
}

/// Durable group commit record (the atomic commit point).
#[derive(Debug, Clone)]
struct GroupRecord {
    files: Vec<FileIdx>,
    txns: Vec<TxnId>,
    payload: u64,
    members: Vec<Vec<(SiteId, CopyMeta)>>,
}

/// Volatile per-group progress at the coordinator.
#[derive(Debug, Clone)]
struct PendingGroup {
    files: Vec<FileIdx>,
    txns: Vec<TxnId>,
    payload: u64,
    decisions: Vec<Option<bool>>,
}

/// Per-site transaction-manager state.
#[derive(Debug, Default)]
struct SiteManager {
    /// Durable: next group sequence number.
    next_seq: u64,
    /// Durable: committed group records (the redo log).
    committed: HashMap<GroupId, GroupRecord>,
    /// Volatile: groups awaiting decisions.
    pending: HashMap<GroupId, PendingGroup>,
}

#[derive(Debug, Clone, PartialEq)]
enum MEvent {
    Deliver {
        file: FileIdx,
        from: SiteId,
        to: SiteId,
        msg: Message,
    },
    Timer {
        file: FileIdx,
        site: SiteId,
        txn: TxnId,
        kind: TimerKind,
    },
}

/// A discrete-event simulation of several replicated files with atomic
/// cross-file transactions.
pub struct MultiFileSimulation {
    config: MultiConfig,
    topology: Topology,
    /// `actors[file][site]`.
    actors: Vec<Vec<SiteActor>>,
    managers: Vec<SiteManager>,
    timers: TimerWheel<VirtualInstant, MEvent>,
    clock: f64,
    rng: StdRng,
    next_payload: u64,
    /// Per-file omniscient ledgers.
    ledgers: Vec<Vec<Option<LedgerEntry>>>,
    violations: Vec<ConsistencyViolation>,
    /// Which (file, txn) legs the engine saw commit — for the
    /// atomicity audit. (Txn ids are only unique per file: each file's
    /// actor numbers its own transactions.)
    leg_commits: HashMap<(FileIdx, TxnId), u64>,
    stats: MultiStats,
}

impl std::fmt::Debug for MultiFileSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiFileSimulation")
            .field("clock", &self.clock)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MultiFileSimulation {
    /// Build a simulation with all sites up.
    ///
    /// # Panics
    ///
    /// If [`MultiConfig::validate`] rejects the configuration.
    #[must_use]
    pub fn new(config: MultiConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid MultiConfig: {e}");
        }
        let actors = config
            .files
            .iter()
            .map(|&kind| {
                (0..config.n)
                    .map(|i| SiteActor::new(SiteId::new(i), config.n, kind.instantiate(config.n)))
                    .collect()
            })
            .collect();
        MultiFileSimulation {
            topology: Topology::fully_connected(config.n),
            actors,
            managers: (0..config.n).map(|_| SiteManager::default()).collect(),
            timers: TimerWheel::new(),
            clock: 0.0,
            rng: StdRng::seed_from_u64(config.seed),
            next_payload: 0,
            ledgers: vec![Vec::new(); config.files.len()],
            violations: Vec::new(),
            leg_commits: HashMap::new(),
            stats: MultiStats::default(),
            config,
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &MultiStats {
        &self.stats
    }

    /// Current simulated time.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// A file's actor at a site (inspection).
    #[must_use]
    pub fn actor(&self, file: FileIdx, site: SiteId) -> &SiteActor {
        &self.actors[file][site.index()]
    }

    /// Impose an explicit partition layout.
    pub fn impose_partitions(&mut self, parts: &[SiteSet]) {
        self.topology.impose_partitions(parts);
    }

    fn schedule(&mut self, delay: f64, event: MEvent) {
        self.timers
            .schedule(VirtualInstant(self.clock + delay), event);
    }

    fn send(&mut self, file: FileIdx, from: SiteId, to: SiteId, msg: Message) {
        self.stats.messages_sent += 1;
        if self.config.drop_probability > 0.0
            && self.rng.gen::<f64>() < self.config.drop_probability
        {
            self.stats.messages_dropped += 1;
            return;
        }
        self.schedule(
            self.config.latency,
            MEvent::Deliver {
                file,
                from,
                to,
                msg,
            },
        );
    }

    /// Submit an atomic update to `files` at `site`. Returns the group
    /// id, or `None` if the site is down.
    pub fn submit_group(&mut self, site: SiteId, files: &[FileIdx]) -> Option<GroupId> {
        assert!(!files.is_empty());
        assert!(files.iter().all(|&f| f < self.config.files.len()));
        if !self.topology.is_up(site) {
            return None;
        }
        self.stats.submitted += 1;
        self.next_payload += 1;
        let payload = self.next_payload;
        self.managers[site.index()].next_seq += 1;
        let group = GroupId {
            site,
            seq: self.managers[site.index()].next_seq,
        };

        // Start every leg; if any copy is locked, abort the ones
        // already started (all-or-nothing from the first instant).
        let mut txns = Vec::with_capacity(files.len());
        let mut staged: Vec<(FileIdx, Vec<Action>)> = Vec::new();
        let mut busy = false;
        for &file in files {
            let mut actions = Vec::new();
            match self.actors[file][site.index()].start_group_update(payload, &mut actions) {
                Some(txn) => {
                    txns.push(txn);
                    staged.push((file, actions));
                }
                None => {
                    busy = true;
                    break;
                }
            }
        }
        if busy {
            for (&file, &txn) in files.iter().zip(&txns) {
                let mut actions = Vec::new();
                self.actors[file][site.index()].finalize_group(txn, false, &mut actions);
                self.apply_actions(file, site, actions);
            }
            self.stats.lock_busy += 1;
            return Some(group);
        }
        self.managers[site.index()].pending.insert(
            group,
            PendingGroup {
                files: files.to_vec(),
                txns,
                payload,
                decisions: vec![None; files.len()],
            },
        );
        for (file, actions) in staged {
            self.apply_actions(file, site, actions);
        }
        Some(group)
    }

    fn apply_actions(&mut self, file: FileIdx, site: SiteId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.send(file, site, to, msg),
                Action::Broadcast { msg } => {
                    for i in 0..self.config.n {
                        let to = SiteId::new(i);
                        if to != site {
                            self.send(file, site, to, msg.clone());
                        }
                    }
                }
                Action::SetTimer { txn, kind } => {
                    let delay = match kind {
                        TimerKind::VoteDeadline => self.config.vote_timeout,
                        TimerKind::CatchUpDeadline => self.config.catchup_timeout,
                        TimerKind::PreparedRetry => self.config.prepared_retry,
                    };
                    self.schedule(
                        delay,
                        MEvent::Timer {
                            file,
                            site,
                            txn,
                            kind,
                        },
                    );
                }
                Action::DecisionReady { txn, distinguished } => {
                    self.on_decision(site, file, txn, distinguished);
                }
                Action::CommitRecorded {
                    version,
                    payload,
                    txn,
                } => {
                    self.leg_commits.insert((file, txn), version);
                    let idx = (version - 1) as usize;
                    let ledger = &mut self.ledgers[file];
                    if idx >= ledger.len() {
                        ledger.resize(idx + 1, None);
                    }
                    let entry = LedgerEntry { payload, txn };
                    match ledger[idx] {
                        Some(existing) => {
                            self.violations.push(ConsistencyViolation::DivergentCommit {
                                version,
                                first: existing,
                                second: entry,
                            });
                        }
                        None => ledger[idx] = Some(entry),
                    }
                }
                Action::Resolved { .. } => {}
            }
        }
    }

    /// A leg finished its voting/catch-up phases.
    ///
    /// Legs are identified by their *file* (txn ids repeat across files
    /// — each file's actor numbers its own transactions).
    fn on_decision(&mut self, site: SiteId, file: FileIdx, txn: TxnId, distinguished: bool) {
        let manager = &mut self.managers[site.index()];
        let Some((&group, _)) = manager.pending.iter().find(|(_, p)| {
            p.files
                .iter()
                .zip(&p.txns)
                .any(|(&f, &t)| f == file && t == txn)
        }) else {
            // The group was already resolved (e.g. aborted at
            // submission); release the straggler leg.
            let mut actions = Vec::new();
            self.actors[file][site.index()].finalize_group(txn, false, &mut actions);
            self.apply_actions(file, site, actions);
            return;
        };
        let pending = manager.pending.get_mut(&group).expect("found above");
        let leg = pending
            .files
            .iter()
            .zip(&pending.txns)
            .position(|(&f, &t)| f == file && t == txn)
            .expect("leg belongs to group");
        pending.decisions[leg] = Some(distinguished);
        if pending.decisions.iter().any(Option::is_none) {
            return;
        }
        // Every leg decided: the global verdict.
        let pending = manager.pending.remove(&group).expect("present");
        let commit = pending.decisions.iter().all(|d| d == &Some(true));
        if commit {
            // Gather each leg's participant view and force-write the
            // group record — THE atomic commit point — before touching
            // any leg.
            let members: Vec<Vec<(SiteId, CopyMeta)>> = pending
                .files
                .iter()
                .zip(&pending.txns)
                .map(|(&f, &t)| {
                    self.actors[f][site.index()]
                        .decided_members(t)
                        .expect("decided legs carry members")
                        .to_vec()
                })
                .collect();
            self.managers[site.index()].committed.insert(
                group,
                GroupRecord {
                    files: pending.files.clone(),
                    txns: pending.txns.clone(),
                    payload: pending.payload,
                    members,
                },
            );
            self.stats.group_commits += 1;
            for (&f, &t) in pending.files.iter().zip(&pending.txns) {
                let mut actions = Vec::new();
                self.actors[f][site.index()].finalize_group(t, true, &mut actions);
                self.apply_actions(f, site, actions);
            }
        } else {
            self.stats.group_rejected += 1;
            for (&f, &t) in pending.files.iter().zip(&pending.txns) {
                let mut actions = Vec::new();
                self.actors[f][site.index()].finalize_group(t, false, &mut actions);
                self.apply_actions(f, site, actions);
            }
        }
    }

    /// Crash a site: every file's volatile state and the manager's
    /// pending groups are lost; durable group records survive.
    pub fn crash_site(&mut self, site: SiteId) {
        if self.topology.is_up(site) {
            self.topology.crash(site);
            for file in 0..self.config.files.len() {
                self.actors[file][site.index()].crash();
            }
            self.managers[site.index()].pending.clear();
        }
    }

    /// Recover a site: redo any durably committed group whose legs did
    /// not all finish, then run each file's ordinary restart protocol.
    pub fn recover_site(&mut self, site: SiteId) {
        if self.topology.is_up(site) {
            return;
        }
        self.topology.recover(site);
        // REDO pass, before any new work: finish every durably
        // committed group (idempotent per leg).
        let records: Vec<(GroupId, GroupRecord)> = self.managers[site.index()]
            .committed
            .iter()
            .map(|(g, r)| (*g, r.clone()))
            .collect();
        for (_, record) in records {
            for ((&file, &txn), members) in
                record.files.iter().zip(&record.txns).zip(&record.members)
            {
                let mut actions = Vec::new();
                self.actors[file][site.index()].commit_from_record(
                    txn,
                    record.payload,
                    members,
                    &mut actions,
                );
                self.apply_actions(file, site, actions);
            }
        }
        // Ordinary per-file restart (prepared-lock restoration or
        // Make_Current).
        for file in 0..self.config.files.len() {
            self.next_payload += 1;
            let payload = self.next_payload;
            let mut actions = Vec::new();
            self.actors[file][site.index()].recover(payload, &mut actions);
            self.apply_actions(file, site, actions);
        }
    }

    /// Process one event; false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((when, event)) = self.timers.pop_next() else {
            return false;
        };
        self.clock = when.0;
        match event {
            MEvent::Deliver {
                file,
                from,
                to,
                msg,
            } => {
                if self.topology.connected(from, to) {
                    let mut actions = Vec::new();
                    self.actors[file][to.index()].handle_message(from, msg, &mut actions);
                    self.apply_actions(file, to, actions);
                } else {
                    self.stats.messages_dropped += 1;
                }
            }
            MEvent::Timer {
                file,
                site,
                txn,
                kind,
            } => {
                if self.topology.is_up(site) {
                    let mut actions = Vec::new();
                    self.actors[file][site.index()].timer_fired(txn, kind, &mut actions);
                    self.apply_actions(file, site, actions);
                }
            }
        }
        true
    }

    /// Drain pending events (bounded, like [`crate::Simulation::quiesce`]).
    pub fn quiesce(&mut self) {
        let deadline = self.clock + 10_000.0 * self.config.prepared_retry;
        let mut guard = 0u64;
        while let Some(&VirtualInstant(t)) = self.timers.next_deadline() {
            if t > deadline || guard > 10_000_000 {
                break;
            }
            guard += 1;
            self.step();
        }
    }

    /// Verify per-file consistency plus cross-file atomicity.
    #[must_use]
    pub fn check_invariants(&self) -> Vec<ConsistencyViolation> {
        let mut violations = self.violations.clone();
        for (file, ledger) in self.ledgers.iter().enumerate() {
            for (i, slot) in ledger.iter().enumerate() {
                if slot.is_none() {
                    violations.push(ConsistencyViolation::VersionGap {
                        missing: (i + 1) as u64,
                    });
                }
            }
            for actor in &self.actors[file] {
                for (i, entry) in actor.log().iter().enumerate() {
                    let expected = (i + 1) as u64;
                    let chain = ledger.get(i).copied().flatten();
                    if entry.version != expected
                        || chain.map_or(true, |c| c.payload != entry.payload)
                    {
                        violations.push(ConsistencyViolation::LogMismatch {
                            site: actor.id(),
                            version: expected,
                        });
                        break;
                    }
                }
                if actor.meta().version != actor.log().last().map_or(0, |e| e.version) {
                    violations.push(ConsistencyViolation::MetaLogSkew { site: actor.id() });
                }
            }
        }
        violations
    }

    /// Cross-file atomicity audit: every durably committed group must
    /// have *all* of its legs committed in the file ledgers. Returns
    /// the offending group ids (empty = atomic).
    #[must_use]
    pub fn check_atomicity(&self) -> Vec<GroupId> {
        let mut bad = Vec::new();
        for manager in &self.managers {
            for (&group, record) in &manager.committed {
                let all_legs = record
                    .txns
                    .iter()
                    .zip(&record.files)
                    .all(|(&txn, &file)| self.leg_commits.contains_key(&(file, txn)));
                if !all_legs {
                    bad.push(group);
                }
            }
        }
        bad.sort();
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> SiteSet {
        SiteSet::parse(s).unwrap()
    }

    fn sim() -> MultiFileSimulation {
        MultiFileSimulation::new(MultiConfig::default())
    }

    #[test]
    fn healthy_group_commits_both_files() {
        let mut s = sim();
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.quiesce();
        assert_eq!(s.stats().group_commits, 1);
        for file in 0..2 {
            for i in 0..5 {
                assert_eq!(
                    s.actor(file, SiteId(i)).meta().version,
                    1,
                    "file {file} site {i}"
                );
            }
        }
        assert!(s.check_invariants().is_empty());
        assert!(s.check_atomicity().is_empty());
    }

    #[test]
    fn one_starved_file_aborts_the_whole_group() {
        let mut s = sim();
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.quiesce();
        // Partition so the hybrid file (0) has a quorum at AB (its
        // cardinality shrank? no — one commit happened with all 5, so
        // file 0 needs 3 of 5) and voting file (1) needs 3 of 5 too:
        // give AB only — both legs refuse. Then ABC — both accept.
        s.impose_partitions(&[set("AB"), set("CDE")]);
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.quiesce();
        assert_eq!(s.stats().group_rejected, 1);
        assert_eq!(s.stats().group_commits, 1);
        // Now shrink file 0's quorum alone (single-leg group on file 0
        // via ABC), then ask for a cross-file group from AB: file 0
        // says yes (2 of 3), file 1 says no (2 of 5) -> atomic abort.
        s.impose_partitions(&[set("ABC"), set("DE")]);
        s.submit_group(SiteId(0), &[0]).unwrap();
        s.quiesce();
        assert_eq!(s.stats().group_commits, 2);
        s.impose_partitions(&[set("AB"), set("CDE")]);
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.quiesce();
        assert_eq!(s.stats().group_rejected, 2);
        // File 0's version must NOT have advanced (atomicity).
        assert_eq!(s.actor(0, SiteId(0)).meta().version, 2);
        assert!(s.check_invariants().is_empty());
        assert!(s.check_atomicity().is_empty());
    }

    #[test]
    fn coordinator_crash_after_group_record_redoes_on_recovery() {
        let mut s = sim();
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.quiesce();
        // Start a group and run *just* past the decision point: with
        // latency 0.01 the votes return by ~0.02 and both legs decide
        // (all replies in), writing the group record and sending the
        // COMMIT messages; crash A before those deliver.
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.run_past_decisions();
        let committed_before = s.stats().group_commits;
        s.crash_site(SiteId(0));
        s.quiesce();
        if committed_before == 2 {
            // The group record is durable: recovery must redo both legs
            // and the subordinates must converge.
            s.recover_site(SiteId(0));
            s.quiesce();
            for file in 0..2 {
                for i in 0..5 {
                    assert!(
                        s.actor(file, SiteId(i)).meta().version >= 2,
                        "file {file} site {i} missed the redone commit"
                    );
                }
            }
            assert!(s.check_atomicity().is_empty());
            assert!(s.check_invariants().is_empty());
        }
    }

    #[test]
    fn lock_busy_group_aborts_cleanly() {
        let mut s = sim();
        // Two groups race at the same coordinator: the second finds the
        // locks held and aborts without touching anything.
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.quiesce();
        assert_eq!(s.stats().lock_busy, 1);
        assert_eq!(s.stats().group_commits, 1);
        assert!(s.check_invariants().is_empty());
        assert!(s.check_atomicity().is_empty());
    }

    #[test]
    fn per_file_quorums_evolve_independently() {
        let mut s = sim();
        s.submit_group(SiteId(0), &[0, 1]).unwrap();
        s.quiesce();
        // Shrink the hybrid file's quorum to ABC via single-file groups.
        s.impose_partitions(&[set("ABC"), set("DE")]);
        s.submit_group(SiteId(0), &[0]).unwrap();
        s.quiesce();
        // AB: file 0 (hybrid, quorum base 3) accepts; file 1 (static
        // voting) refuses.
        s.impose_partitions(&[set("AB"), set("CDE")]);
        s.submit_group(SiteId(0), &[0]).unwrap();
        s.quiesce();
        assert_eq!(s.stats().group_commits, 3);
        s.submit_group(SiteId(0), &[1]).unwrap();
        s.quiesce();
        assert_eq!(s.stats().group_rejected, 1);
        assert!(s.check_invariants().is_empty());
    }

    impl MultiFileSimulation {
        /// Test helper: run until just past the decision/commit point of
        /// an in-flight group (two latency hops plus a hair), without
        /// delivering the outgoing COMMIT messages.
        fn run_past_decisions(&mut self) {
            let deadline = self.clock + 2.0 * self.config.latency + 1e-6;
            while let Some(&VirtualInstant(t)) = self.timers.next_deadline() {
                if t > deadline {
                    break;
                }
                self.step();
            }
            self.clock = self.clock.max(deadline);
        }
    }

    #[test]
    fn random_chaos_preserves_atomicity() {
        for seed in 0..3 {
            let mut s = MultiFileSimulation::new(MultiConfig {
                drop_probability: 0.1,
                seed,
                ..MultiConfig::default()
            });
            s.submit_group(SiteId(0), &[0, 1]).unwrap();
            s.quiesce();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            for round in 0..60u64 {
                let site = SiteId::new(rng.gen_range(0..5));
                match round % 6 {
                    0 => {
                        s.crash_site(site);
                    }
                    1 => {
                        for i in 0..5 {
                            s.recover_site(SiteId::new(i));
                        }
                    }
                    _ => {
                        let files: &[FileIdx] = if rng.gen_bool(0.5) {
                            &[0, 1]
                        } else {
                            &[rng.gen_range(0..2)]
                        };
                        s.submit_group(site, files);
                    }
                }
                s.quiesce();
            }
            for i in 0..5 {
                s.recover_site(SiteId::new(i));
            }
            s.quiesce();
            assert!(
                s.check_invariants().is_empty(),
                "seed {seed}: {:?}",
                s.check_invariants()
            );
            assert!(
                s.check_atomicity().is_empty(),
                "seed {seed}: partial groups {:?}",
                s.check_atomicity()
            );
            assert!(s.stats().group_commits > 0, "seed {seed}");
        }
    }
}
