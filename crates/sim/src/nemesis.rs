//! Nemesis fault orchestration: serializable schedules of composable
//! fault behaviors, plus automatic minimization of failing schedules.
//!
//! The paper's correctness claim (Theorem 1) is universally quantified:
//! *no* interleaving of site crashes, partitions, message losses,
//! duplications or reorderings may ever commit two different updates at
//! the same version. Ad-hoc random fault injection exercises that claim
//! but leaves two gaps this module closes:
//!
//! 1. **Reproducibility.** A [`FaultSchedule`] is a plain data value —
//!    a list of time-stamped, windowed behaviors — that serializes to
//!    JSON via `serde`. A failing run can be saved, attached to a bug
//!    report, and replayed bit-for-bit: the engine consumes the
//!    schedule through [`crate::Simulation::apply_schedule`], and with
//!    the same seed and workload the replay reproduces the original
//!    event stream exactly.
//! 2. **Debuggability.** When a schedule does trigger an invariant
//!    violation, [`minimize`] delta-debugs it: drop events, then shrink
//!    the surviving windows, until the schedule is 1-minimal — removing
//!    any single remaining event makes the failure disappear. What is
//!    left is usually a two-or-three-event reproducer a human can
//!    actually reason about.
//!
//! The vocabulary is deliberately broader than the paper's fault model:
//! besides crashes and (rolling) partitions it includes *asymmetric*
//! one-way link failures, lossy bursts, duplication windows, and
//! reordering via randomized per-message latency — the Section II
//! assumption "messages may be lost or delivered out of order" made
//! mechanically checkable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One time-stamped, windowed nemesis behavior.
///
/// `at` is the onset and `duration` the window length, both in
/// simulation time units relative to the moment the schedule is applied
/// ([`crate::Simulation::apply_schedule`]). Every behavior cleans up
/// after itself when its window closes: crashed sites restart,
/// partitions heal, severed directions repair, channel knobs reset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NemesisEvent {
    /// Crash `site` at `at`; restart it `duration` later (the restart
    /// protocol of Section V-C runs on recovery).
    Crash {
        /// Index of the site to crash.
        site: usize,
        /// Onset time.
        at: f64,
        /// Downtime before the automatic restart.
        duration: f64,
    },
    /// Impose an explicit partition layout at `at`; heal all links
    /// `duration` later. A sequence of these with shifting `groups`
    /// forms a rolling partition (see
    /// [`FaultSchedule::rolling_partition`]).
    Partition {
        /// The partition classes, each a list of site indices.
        groups: Vec<Vec<usize>>,
        /// Onset time.
        at: f64,
        /// How long the layout stays imposed.
        duration: f64,
    },
    /// Sever only the `from → to` direction of a link: `to` keeps
    /// reaching `from` while the reverse messages vanish — the
    /// asymmetric failure mode symmetric fault injectors cannot
    /// express.
    OneWay {
        /// Sending side of the severed direction.
        from: usize,
        /// Receiving side of the severed direction.
        to: usize,
        /// Onset time.
        at: f64,
        /// How long the direction stays severed.
        duration: f64,
    },
    /// Raise the message-drop probability to `p` for the window (lossy
    /// burst). Combines with the configured baseline by `max`.
    Lossy {
        /// Drop probability during the window.
        p: f64,
        /// Onset time.
        at: f64,
        /// Window length.
        duration: f64,
    },
    /// Deliver each message twice with probability `p` during the
    /// window; the copy takes an independent transit time, so it also
    /// arrives out of order.
    Duplicate {
        /// Duplication probability during the window.
        p: f64,
        /// Onset time.
        at: f64,
        /// Window length.
        duration: f64,
    },
    /// Add a uniform random extra latency in `[0, extra)` to every
    /// message sent during the window. Extra beyond one base latency
    /// lets later messages overtake earlier ones (reordering).
    Reorder {
        /// Upper bound on the per-message extra latency.
        extra: f64,
        /// Onset time.
        at: f64,
        /// Window length.
        duration: f64,
    },
}

impl NemesisEvent {
    /// The behavior's onset time.
    #[must_use]
    pub fn at(&self) -> f64 {
        match self {
            NemesisEvent::Crash { at, .. }
            | NemesisEvent::Partition { at, .. }
            | NemesisEvent::OneWay { at, .. }
            | NemesisEvent::Lossy { at, .. }
            | NemesisEvent::Duplicate { at, .. }
            | NemesisEvent::Reorder { at, .. } => *at,
        }
    }

    /// The behavior's window length.
    #[must_use]
    pub fn duration(&self) -> f64 {
        match self {
            NemesisEvent::Crash { duration, .. }
            | NemesisEvent::Partition { duration, .. }
            | NemesisEvent::OneWay { duration, .. }
            | NemesisEvent::Lossy { duration, .. }
            | NemesisEvent::Duplicate { duration, .. }
            | NemesisEvent::Reorder { duration, .. } => *duration,
        }
    }

    /// The same behavior with a different window length (used by the
    /// minimizer's window-shrinking pass).
    #[must_use]
    pub fn with_duration(&self, new: f64) -> Self {
        let mut event = self.clone();
        match &mut event {
            NemesisEvent::Crash { duration, .. }
            | NemesisEvent::Partition { duration, .. }
            | NemesisEvent::OneWay { duration, .. }
            | NemesisEvent::Lossy { duration, .. }
            | NemesisEvent::Duplicate { duration, .. }
            | NemesisEvent::Reorder { duration, .. } => *duration = new,
        }
        event
    }

    /// When the behavior's window closes.
    #[must_use]
    pub fn end(&self) -> f64 {
        self.at() + self.duration()
    }
}

/// Intensity knobs for [`FaultSchedule::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NemesisProfile {
    /// Number of crash/restart events.
    pub crashes: usize,
    /// Number of imposed-partition windows.
    pub partitions: usize,
    /// Number of one-way link severances.
    pub one_way: usize,
    /// Number of lossy bursts.
    pub lossy: usize,
    /// Number of duplication windows.
    pub duplicate: usize,
    /// Number of reordering windows.
    pub reorder: usize,
    /// Upper bound on a lossy burst's drop probability.
    pub max_loss: f64,
    /// Upper bound on a duplication window's probability.
    pub max_duplicate: f64,
    /// Upper bound on a reordering window's extra latency.
    pub max_extra_latency: f64,
}

impl Default for NemesisProfile {
    fn default() -> Self {
        NemesisProfile {
            crashes: 6,
            partitions: 3,
            one_way: 4,
            lossy: 2,
            duplicate: 2,
            reorder: 2,
            max_loss: 0.3,
            max_duplicate: 0.3,
            // Five times the default base latency: ample reordering.
            max_extra_latency: 0.05,
        }
    }
}

/// A serializable, replayable schedule of nemesis behaviors.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The behaviors, in no particular order (the engine sorts by time
    /// when expanding them into its event queue).
    pub events: Vec<NemesisEvent>,
}

impl FaultSchedule {
    /// A schedule over the given behaviors.
    #[must_use]
    pub fn new(events: Vec<NemesisEvent>) -> Self {
        FaultSchedule { events }
    }

    /// Number of behaviors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the schedule has no behaviors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// When the last window closes (0 for an empty schedule).
    #[must_use]
    pub fn end_time(&self) -> f64 {
        self.events
            .iter()
            .map(NemesisEvent::end)
            .fold(0.0, f64::max)
    }

    /// Serialize to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schedules always serialize")
    }

    /// Parse a schedule back from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid fault schedule: {e}"))
    }

    /// A randomized schedule for an `n`-site cluster over `[0,
    /// horizon)`: the event mix comes from `profile`, the placement from
    /// a dedicated PRNG seeded with `seed` — independent from the
    /// engine's seed, so the same schedule can be replayed under
    /// different engine seeds and vice versa.
    #[must_use]
    pub fn generate(n: usize, horizon: f64, seed: u64, profile: &NemesisProfile) -> Self {
        assert!(n >= 2 && horizon > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        // Windows span 2%..20% of the horizon so faults overlap but
        // none smothers the whole run.
        let window = |rng: &mut StdRng| -> (f64, f64) {
            let at = rng.gen::<f64>() * horizon * 0.9;
            let duration = horizon * (0.02 + 0.18 * rng.gen::<f64>());
            (at, duration)
        };
        for _ in 0..profile.crashes {
            let (at, duration) = window(&mut rng);
            events.push(NemesisEvent::Crash {
                site: rng.gen_range(0..n),
                at,
                duration,
            });
        }
        for _ in 0..profile.partitions {
            let (at, duration) = window(&mut rng);
            // A random two-way split with both sides non-empty.
            let pivot = rng.gen_range(0..n);
            let mut left = vec![pivot];
            let mut right: Vec<usize> = Vec::new();
            for site in (0..n).filter(|&s| s != pivot) {
                if right.is_empty() || rng.gen_bool(0.5) {
                    right.push(site);
                } else {
                    left.push(site);
                }
            }
            events.push(NemesisEvent::Partition {
                groups: vec![left, right],
                at,
                duration,
            });
        }
        for _ in 0..profile.one_way {
            let (at, duration) = window(&mut rng);
            let from = rng.gen_range(0..n);
            let mut to = rng.gen_range(0..n - 1);
            if to >= from {
                to += 1;
            }
            events.push(NemesisEvent::OneWay {
                from,
                to,
                at,
                duration,
            });
        }
        for _ in 0..profile.lossy {
            let (at, duration) = window(&mut rng);
            events.push(NemesisEvent::Lossy {
                p: profile.max_loss * rng.gen::<f64>(),
                at,
                duration,
            });
        }
        for _ in 0..profile.duplicate {
            let (at, duration) = window(&mut rng);
            events.push(NemesisEvent::Duplicate {
                p: profile.max_duplicate * rng.gen::<f64>(),
                at,
                duration,
            });
        }
        for _ in 0..profile.reorder {
            let (at, duration) = window(&mut rng);
            events.push(NemesisEvent::Reorder {
                extra: profile.max_extra_latency * (0.2 + 0.8 * rng.gen::<f64>()),
                at,
                duration,
            });
        }
        FaultSchedule { events }
    }

    /// A rolling partition: `rounds` successive two-way splits starting
    /// at `start`, each `period` long, isolating a minority window that
    /// rotates around the ring — every site gets its turn on the wrong
    /// side of the cut, no quorum ever rests.
    #[must_use]
    pub fn rolling_partition(n: usize, start: f64, period: f64, rounds: usize) -> Self {
        assert!(n >= 2 && period > 0.0);
        let minority = (n - 1) / 2;
        let events = (0..rounds)
            .map(|round| {
                let isolated: Vec<usize> = (0..minority.max(1)).map(|k| (round + k) % n).collect();
                let rest: Vec<usize> = (0..n).filter(|s| !isolated.contains(s)).collect();
                NemesisEvent::Partition {
                    groups: vec![isolated, rest],
                    at: start + round as f64 * period,
                    // A hair under the period so each layout heals
                    // before the next is imposed.
                    duration: period * 0.95,
                }
            })
            .collect();
        FaultSchedule { events }
    }
}

/// Delta-debug a failing schedule down to a locally minimal reproducer.
///
/// `failing` is the oracle: it must return `true` when running the
/// given schedule still exhibits the failure under investigation
/// (typically: build a fresh [`crate::Simulation`] with the *same* seed
/// and workload, apply the candidate, run, and check
/// [`crate::Simulation::check_invariants`]). Determinism of the engine
/// under a fixed seed is what makes the oracle meaningful.
///
/// Two passes run to a fixed point:
///
/// 1. **ddmin over events** (Zeller's algorithm): try chunks and chunk
///    complements at increasing granularity, keeping any smaller
///    schedule that still fails, until the event list is 1-minimal.
/// 2. **Window shrinking**: repeatedly halve each surviving event's
///    `duration` while the failure persists, stopping at millisecond
///    scale.
///
/// If the input schedule does not fail the oracle it is returned
/// unchanged — there is nothing to minimize.
pub fn minimize<F>(schedule: &FaultSchedule, mut failing: F) -> FaultSchedule
where
    F: FnMut(&FaultSchedule) -> bool,
{
    if schedule.is_empty() || !failing(schedule) {
        return schedule.clone();
    }
    let mut events = schedule.events.clone();
    let mut granularity = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            // Try the chunk alone, then its complement — the classic
            // ddmin probe order (subset first converges faster when a
            // single event is responsible).
            let subset: Vec<NemesisEvent> = events[start..end].to_vec();
            if subset.len() < events.len() && failing(&FaultSchedule::new(subset.clone())) {
                events = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            let complement: Vec<NemesisEvent> = events[..start]
                .iter()
                .chain(&events[end..])
                .cloned()
                .collect();
            if !complement.is_empty()
                && complement.len() < events.len()
                && failing(&FaultSchedule::new(complement.clone()))
            {
                events = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= events.len() {
                break;
            }
            granularity = (granularity * 2).min(events.len());
        }
    }
    // Window shrinking: halve durations while the failure persists.
    for i in 0..events.len() {
        loop {
            let duration = events[i].duration();
            if duration <= 1e-3 {
                break;
            }
            let mut candidate = events.clone();
            candidate[i] = events[i].with_duration(duration / 2.0);
            if failing(&FaultSchedule::new(candidate.clone())) {
                events = candidate;
            } else {
                break;
            }
        }
    }
    FaultSchedule { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(site: usize, at: f64) -> NemesisEvent {
        NemesisEvent::Crash {
            site,
            at,
            duration: 4.0,
        }
    }

    #[test]
    fn json_round_trip_preserves_every_variant() {
        let schedule = FaultSchedule::new(vec![
            crash(3, 1.0),
            NemesisEvent::Partition {
                groups: vec![vec![0, 1], vec![2, 3, 4]],
                at: 2.0,
                duration: 5.0,
            },
            NemesisEvent::OneWay {
                from: 2,
                to: 0,
                at: 3.0,
                duration: 1.5,
            },
            NemesisEvent::Lossy {
                p: 0.25,
                at: 4.0,
                duration: 2.0,
            },
            NemesisEvent::Duplicate {
                p: 0.1,
                at: 5.0,
                duration: 2.0,
            },
            NemesisEvent::Reorder {
                extra: 0.05,
                at: 6.0,
                duration: 2.0,
            },
        ]);
        let json = schedule.to_json();
        let back = FaultSchedule::from_json(&json).unwrap();
        assert_eq!(schedule, back);
        assert_eq!(back.end_time(), 8.0);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(FaultSchedule::from_json("not json").is_err());
        assert!(FaultSchedule::from_json(r#"{"events": [{"Explode": {}}]}"#).is_err());
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let profile = NemesisProfile::default();
        let a = FaultSchedule::generate(5, 60.0, 11, &profile);
        let b = FaultSchedule::generate(5, 60.0, 11, &profile);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(5, 60.0, 12, &profile);
        assert_ne!(a, c, "different seeds give different schedules");
        let expected = profile.crashes
            + profile.partitions
            + profile.one_way
            + profile.lossy
            + profile.duplicate
            + profile.reorder;
        assert_eq!(a.len(), expected);
        for event in &a.events {
            assert!(event.at() >= 0.0 && event.end() <= 60.0 * 1.2);
        }
    }

    #[test]
    fn rolling_partition_rotates_the_minority() {
        let schedule = FaultSchedule::rolling_partition(5, 10.0, 8.0, 5);
        assert_eq!(schedule.len(), 5);
        let mut isolated_seen = std::collections::HashSet::new();
        for event in &schedule.events {
            let NemesisEvent::Partition { groups, .. } = event else {
                panic!("rolling partitions are Partition events");
            };
            assert_eq!(groups.len(), 2);
            assert_eq!(groups[0].len() + groups[1].len(), 5);
            isolated_seen.extend(groups[0].iter().copied());
        }
        assert_eq!(isolated_seen.len(), 5, "every site takes a turn isolated");
    }

    #[test]
    fn minimize_isolates_the_guilty_event() {
        let profile = NemesisProfile::default();
        let schedule = FaultSchedule::generate(5, 60.0, 3, &profile);
        assert!(schedule.len() > 10);
        // The failure is "any crash of site 0 is present".
        let guilty = |s: &FaultSchedule| {
            s.events
                .iter()
                .any(|e| matches!(e, NemesisEvent::Crash { site: 0, .. }))
        };
        assert!(
            guilty(&schedule),
            "seed 3 must produce a crash of site 0 for this test"
        );
        let minimal = minimize(&schedule, |s| guilty(s));
        assert_eq!(minimal.len(), 1, "1-minimal: exactly the guilty event");
        assert!(guilty(&minimal));
    }

    #[test]
    fn minimize_shrinks_windows() {
        // Failure: some lossy window still covers t = 10.
        let schedule = FaultSchedule::new(vec![
            NemesisEvent::Lossy {
                p: 0.5,
                at: 2.0,
                duration: 40.0,
            },
            crash(1, 5.0),
        ]);
        let covers = |s: &FaultSchedule| {
            s.events.iter().any(|e| {
                matches!(e, NemesisEvent::Lossy { .. }) && e.at() <= 10.0 && e.end() >= 10.0
            })
        };
        let minimal = minimize(&schedule, |s| covers(s));
        assert_eq!(minimal.len(), 1, "the crash is dropped");
        let window = &minimal.events[0];
        assert!(covers(&minimal));
        assert!(
            window.duration() <= 10.0,
            "duration shrank from 40 toward the minimum that still covers t=10, got {}",
            window.duration()
        );
    }

    #[test]
    fn minimize_returns_non_failing_input_unchanged() {
        let schedule = FaultSchedule::new(vec![crash(2, 1.0)]);
        let out = minimize(&schedule, |_| false);
        assert_eq!(out, schedule);
    }
}
