//! Multi-configuration experiment sweeps on the parallel engine.
//!
//! One protocol-level simulation answers one question about one
//! `(algorithm, seed)` point; the experiments people actually run are
//! *grids* — every algorithm × several replications under an identical
//! fault regime, compared side by side. [`ExperimentPlan`] describes
//! such a grid once and [`ExperimentPlan::execute`] runs it through
//! [`dynvote_core::par::run`], one task per cell.
//!
//! Seed discipline matches the rest of the repository: cell `i` (the
//! flattened `algorithm × replication` index) simulates with
//! `seed_for(master_seed, i)`, so every cell's trajectory is a pure
//! function of the plan — the result table, and its CSV rendering, are
//! byte-identical for any worker count.

use crate::{SimConfig, SimStats, Simulation};
use dynvote_core::{check_non_negative, check_positive, par, AlgorithmKind, ConfigError, SiteId};

/// A grid of protocol-simulation experiments: every algorithm ×
/// `replications` seeds, all under the same workload and fault regime.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPlan {
    /// Algorithms to compare (one row group per algorithm).
    pub algorithms: Vec<AlgorithmKind>,
    /// Replications per algorithm (distinct derived seeds).
    pub replications: usize,
    /// Number of replica sites.
    pub n: usize,
    /// Workload/fault horizon in simulated seconds.
    pub duration: f64,
    /// Poisson update-arrival rate (events per simulated second).
    pub update_rate: f64,
    /// Site crash/recovery churn rate (0 disables).
    pub fault_rate: f64,
    /// Link cut/repair churn rate (0 disables).
    pub link_fault_rate: f64,
    /// Message drop probability.
    pub drop_probability: f64,
    /// Master seed; cell `i` runs with `seed_for(master_seed, i)`.
    pub master_seed: u64,
}

impl Default for ExperimentPlan {
    fn default() -> Self {
        ExperimentPlan {
            algorithms: AlgorithmKind::ALL.to_vec(),
            replications: 3,
            n: 5,
            duration: 100.0,
            update_rate: 3.0,
            fault_rate: 0.3,
            link_fault_rate: 0.3,
            drop_probability: 0.0,
            master_seed: 7,
        }
    }
}

/// The outcome of one grid cell: one full simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The algorithm this cell ran.
    pub algorithm: AlgorithmKind,
    /// Replication index within the algorithm (`0..replications`).
    pub replication: usize,
    /// The derived seed the cell actually simulated with.
    pub seed: u64,
    /// Final workload statistics (after healing and quiescing).
    pub stats: SimStats,
    /// Committed-chain length at the end of the run.
    pub chain_length: usize,
    /// Consistency violations found by the invariant checker (always 0
    /// for a correct kernel; recorded rather than panicking so a sweep
    /// surfaces the failing cell instead of dying mid-grid).
    pub violations: usize,
}

impl ExperimentResult {
    /// Commit ratio: commits over submitted updates (0 if none).
    #[must_use]
    pub fn commit_ratio(&self) -> f64 {
        if self.stats.submitted == 0 {
            0.0
        } else {
            self.stats.commits as f64 / self.stats.submitted as f64
        }
    }
}

impl ExperimentPlan {
    /// Total number of grid cells (`algorithms × replications`).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.algorithms.len() * self.replications
    }

    /// Validate every knob with the shared typed errors.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.algorithms.is_empty() {
            return Err(ConfigError::NoFiles);
        }
        if self.replications == 0 {
            return Err(ConfigError::OutOfRange {
                field: "replications",
                value: 0,
                lo: 1,
                hi: 10_000,
            });
        }
        dynvote_core::check_site_count(self.n)?;
        check_positive("duration", self.duration)?;
        check_positive("update_rate", self.update_rate)?;
        check_non_negative("fault_rate", self.fault_rate)?;
        check_non_negative("link_fault_rate", self.link_fault_rate)?;
        dynvote_core::check_probability("drop_probability", self.drop_probability)?;
        Ok(())
    }

    /// The `SimConfig` and derived seed of grid cell `index`.
    ///
    /// Cells are laid out algorithm-major: cell `index` runs algorithm
    /// `index / replications`, replication `index % replications`.
    #[must_use]
    pub fn cell_config(&self, index: usize) -> SimConfig {
        SimConfig {
            n: self.n,
            algorithm: self.algorithms[index / self.replications],
            drop_probability: self.drop_probability,
            seed: par::seed_for(self.master_seed, index as u64),
            ..SimConfig::default()
        }
    }

    /// Run the whole grid on `jobs` worker threads; results come back
    /// in cell order regardless of scheduling.
    ///
    /// # Panics
    ///
    /// If the plan fails [`ExperimentPlan::validate`].
    #[must_use]
    pub fn execute(&self, jobs: usize) -> Vec<ExperimentResult> {
        self.execute_with_progress(jobs, |_| {})
    }

    /// [`ExperimentPlan::execute`] with a per-cell completion callback,
    /// invoked from worker threads as cells finish (completion *order*
    /// varies with scheduling; the returned results never do).
    ///
    /// # Panics
    ///
    /// If the plan fails [`ExperimentPlan::validate`].
    #[must_use]
    pub fn execute_with_progress<P>(&self, jobs: usize, progress: P) -> Vec<ExperimentResult>
    where
        P: Fn(&ExperimentResult) + Sync,
    {
        self.validate().expect("invalid ExperimentPlan");
        par::run(jobs, self.cells(), |i| {
            let result = self.run_cell(i);
            progress(&result);
            result
        })
    }

    /// Run a single grid cell to completion: healthy prologue, Poisson
    /// workload plus fault churn, heal, quiesce, verify.
    #[must_use]
    fn run_cell(&self, index: usize) -> ExperimentResult {
        let config = self.cell_config(index);
        let seed = config.seed;
        let mut sim = Simulation::new(config);
        sim.submit_update(SiteId(0));
        sim.quiesce();
        sim.schedule_poisson_arrivals(self.update_rate, self.duration);
        if self.fault_rate > 0.0 || self.link_fault_rate > 0.0 {
            sim.schedule_random_faults(self.fault_rate, self.link_fault_rate, self.duration);
        }
        sim.run_until(self.duration * 1.1);
        sim.heal();
        sim.quiesce();
        ExperimentResult {
            algorithm: self.algorithms[index / self.replications],
            replication: index % self.replications,
            seed,
            violations: sim.check_invariants().len(),
            chain_length: sim.ledger().len(),
            stats: sim.stats().clone(),
        }
    }
}

/// Render experiment results as CSV, one row per cell, in cell order —
/// the byte-exact artifact the determinism tests compare across worker
/// counts.
#[must_use]
pub fn results_to_csv(results: &[ExperimentResult]) -> String {
    let mut out = String::from(
        "algorithm,replication,seed,submitted,commits,rejected,timeouts,\
         messages_sent,chain_length,commit_ratio,violations\n",
    );
    for r in results {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{:.6},{}\n",
            r.algorithm.id(),
            r.replication,
            r.seed,
            r.stats.submitted,
            r.stats.commits,
            r.stats.rejected,
            r.stats.timeouts,
            r.stats.messages_sent,
            r.chain_length,
            r.commit_ratio(),
            r.violations,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick() -> ExperimentPlan {
        ExperimentPlan {
            algorithms: vec![AlgorithmKind::Hybrid, AlgorithmKind::DynamicVoting],
            replications: 2,
            duration: 30.0,
            ..ExperimentPlan::default()
        }
    }

    #[test]
    fn grid_is_byte_identical_across_worker_counts() {
        let serial = quick().execute(1);
        for jobs in [2, 8] {
            let parallel = quick().execute(jobs);
            assert_eq!(serial, parallel, "jobs = {jobs}");
            assert_eq!(
                results_to_csv(&serial),
                results_to_csv(&parallel),
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn cells_are_laid_out_algorithm_major_with_derived_seeds() {
        let plan = quick();
        let results = plan.execute(2);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.algorithm, plan.algorithms[i / 2]);
            assert_eq!(r.replication, i % 2);
            assert_eq!(r.seed, par::seed_for(plan.master_seed, i as u64));
            assert_eq!(r.violations, 0);
            assert!(r.stats.submitted > 0);
        }
        // Distinct seeds give distinct trajectories.
        assert_ne!(results[0].stats, results[1].stats);
    }

    #[test]
    fn progress_fires_once_per_cell() {
        let done = AtomicUsize::new(0);
        let results = quick().execute_with_progress(4, |r| {
            assert_eq!(r.violations, 0);
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), results.len());
    }

    #[test]
    fn validate_rejects_each_bad_knob() {
        assert_eq!(ExperimentPlan::default().validate(), Ok(()));
        let bad = |f: fn(&mut ExperimentPlan)| {
            let mut p = ExperimentPlan::default();
            f(&mut p);
            p.validate()
        };
        assert_eq!(bad(|p| p.algorithms = vec![]), Err(ConfigError::NoFiles));
        assert!(bad(|p| p.replications = 0).is_err());
        assert!(bad(|p| p.n = 1).is_err());
        assert!(bad(|p| p.duration = 0.0).is_err());
        assert!(bad(|p| p.update_rate = -1.0).is_err());
        assert!(bad(|p| p.fault_rate = -0.1).is_err());
        assert!(bad(|p| p.drop_probability = 1.5).is_err());
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let plan = quick();
        let csv = results_to_csv(&plan.execute(1));
        assert_eq!(csv.lines().count(), 1 + plan.cells());
        assert!(csv.starts_with("algorithm,replication,seed,"));
    }
}
