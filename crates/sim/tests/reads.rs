//! Read-only transactions (paper footnote 5): served exactly where
//! updates are, with no metadata movement.

use dynvote_core::{AlgorithmKind, SiteId, SiteSet};
use dynvote_sim::{SimConfig, Simulation};

fn set(s: &str) -> SiteSet {
    SiteSet::parse(s).unwrap()
}

#[test]
fn reads_are_served_in_the_distinguished_partition() {
    let mut sim = Simulation::new(SimConfig::default());
    sim.submit_update(SiteId(0));
    sim.quiesce();
    assert!(sim.submit_read(SiteId(1)));
    sim.quiesce();
    assert_eq!(sim.stats().reads_served, 1);
    assert_eq!(sim.stats().commits, 1, "reads commit nothing");
    // No metadata moved anywhere.
    for i in 0..5 {
        assert_eq!(sim.site(SiteId(i)).meta().version, 1);
    }
    assert!(sim.check_invariants().is_empty());
}

#[test]
fn reads_are_refused_in_minority_partitions() {
    let mut sim = Simulation::new(SimConfig::default());
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.impose_partitions(&[set("AB"), set("CDE")]);
    sim.submit_read(SiteId(0)); // in the AB minority
    sim.quiesce();
    assert_eq!(sim.stats().reads_served, 0);
    assert_eq!(sim.stats().rejected, 1);
    // The majority side still reads.
    sim.submit_read(SiteId(3));
    sim.quiesce();
    assert_eq!(sim.stats().reads_served, 1);
}

#[test]
fn stale_reader_serves_without_catching_up() {
    // A reader whose local copy is stale fetches the value remotely but
    // must NOT promote its own copy into the current-version holder set
    // (that would inflate the holder set past SC — the E4 bug class).
    let mut sim = Simulation::new(SimConfig::default());
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.impose_partitions(&[set("ABC"), set("DE")]);
    sim.submit_update(SiteId(0)); // v2 at ABC only
    sim.quiesce();
    sim.impose_partitions(&[set("ABCDE")]);
    assert_eq!(sim.site(SiteId(3)).meta().version, 1);
    sim.submit_read(SiteId(3)); // stale coordinator
    sim.quiesce();
    assert_eq!(sim.stats().reads_served, 1);
    assert_eq!(
        sim.site(SiteId(3)).meta().version,
        1,
        "the read must not move D's metadata"
    );
    assert_eq!(sim.site(SiteId(3)).log().len(), 1);
    assert!(sim.check_invariants().is_empty());
}

#[test]
fn reads_release_all_locks() {
    let mut sim = Simulation::new(SimConfig::default());
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.submit_read(SiteId(2));
    sim.quiesce();
    for i in 0..5 {
        assert!(!sim.site(SiteId(i)).is_locked(), "site {i}");
        assert!(!sim.site(SiteId(i)).is_in_doubt(), "site {i}");
    }
    // And the system still writes afterwards.
    sim.submit_update(SiteId(4));
    sim.quiesce();
    assert_eq!(sim.stats().commits, 2);
}

#[test]
fn interleaved_reads_and_writes_under_faults_stay_safe() {
    for kind in [AlgorithmKind::Hybrid, AlgorithmKind::DynamicLinear] {
        let mut sim = Simulation::new(SimConfig {
            algorithm: kind,
            drop_probability: 0.1,
            seed: 77,
            ..SimConfig::default()
        });
        sim.submit_update(SiteId(0));
        sim.quiesce();
        for round in 0..40u64 {
            let site = SiteId::new((round % 5) as usize);
            if round % 3 == 0 {
                sim.submit_read(site);
            } else {
                sim.submit_update(site);
            }
            if round % 7 == 0 {
                sim.crash_site(SiteId::new(((round / 7) % 5) as usize));
            }
            if round % 11 == 0 {
                for i in 0..5 {
                    sim.recover_site(SiteId::new(i));
                }
            }
            sim.quiesce();
        }
        for i in 0..5 {
            sim.recover_site(SiteId::new(i));
        }
        sim.quiesce();
        assert!(
            sim.check_invariants().is_empty(),
            "{kind}: {:?}",
            sim.check_invariants()
        );
        assert!(sim.stats().reads_served > 0, "{kind}");
        assert!(sim.stats().commits > 0, "{kind}");
    }
}
