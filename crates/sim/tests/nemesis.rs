//! End-to-end nemesis-layer tests: schedule replay through the engine
//! and automatic minimization of failing schedules.

use dynvote_core::{AlgorithmKind, SiteId};
use dynvote_sim::{minimize, FaultSchedule, NemesisEvent, NemesisProfile, SimConfig, Simulation};

/// The minimizer, driven by a real simulation oracle. A test-only
/// divergence trap turns "site X crashes" into a consistency violation,
/// so the oracle is deterministic without needing a protocol bug; the
/// minimizer must strip the generated schedule down to exactly the
/// crash events of the trapped site, then shrink their windows.
#[test]
fn minimizer_reduces_a_failing_schedule_to_the_guilty_crash() {
    let schedule = FaultSchedule::generate(5, 40.0, 7, &NemesisProfile::default());
    let trap = schedule
        .events
        .iter()
        .find_map(|e| match e {
            NemesisEvent::Crash { site, .. } => Some(*site),
            _ => None,
        })
        .expect("generated schedules contain crashes");
    let mut failing = |candidate: &FaultSchedule| {
        let mut sim = Simulation::new(SimConfig {
            n: 5,
            algorithm: AlgorithmKind::Hybrid,
            seed: 3,
            ..SimConfig::default()
        });
        sim.set_divergence_trap(SiteId::new(trap));
        sim.submit_update(SiteId(0));
        sim.quiesce();
        sim.apply_schedule(candidate);
        sim.schedule_poisson_arrivals(2.0, 40.0);
        sim.run_until(50.0);
        sim.heal();
        sim.quiesce();
        !sim.check_invariants().is_empty()
    };
    assert!(
        failing(&schedule),
        "the full schedule must trigger the trap"
    );

    let minimal = minimize(&schedule, &mut failing);

    assert!(
        minimal.len() < schedule.len(),
        "minimizer must return a strictly smaller schedule ({} vs {})",
        minimal.len(),
        schedule.len()
    );
    assert!(failing(&minimal), "the reproducer still fails");
    assert!(
        minimal
            .events
            .iter()
            .all(|e| matches!(e, NemesisEvent::Crash { site, .. } if *site == trap)),
        "only crashes of the trapped site survive: {minimal:?}"
    );
    assert_eq!(minimal.len(), 1, "1-minimal: a single guilty event");
    let original_crash_duration = schedule
        .events
        .iter()
        .find_map(|e| match e {
            NemesisEvent::Crash { site, duration, .. } if *site == trap => Some(*duration),
            _ => None,
        })
        .unwrap();
    assert!(
        minimal.events[0].duration() < original_crash_duration,
        "the surviving window was shrunk"
    );
}

/// A minimized schedule serializes, replays from JSON, and still fails.
#[test]
fn minimized_schedule_replays_from_json() {
    let original = FaultSchedule::new(vec![
        NemesisEvent::Crash {
            site: 1,
            at: 2.0,
            duration: 6.0,
        },
        NemesisEvent::Lossy {
            p: 0.2,
            at: 0.0,
            duration: 10.0,
        },
        NemesisEvent::Reorder {
            extra: 0.05,
            at: 0.0,
            duration: 10.0,
        },
    ]);
    let mut failing = |candidate: &FaultSchedule| {
        let mut sim = Simulation::new(SimConfig::default());
        sim.set_divergence_trap(SiteId(1));
        sim.apply_schedule(candidate);
        sim.run_until(15.0);
        !sim.check_invariants().is_empty()
    };
    let minimal = minimize(&original, &mut failing);
    assert_eq!(minimal.len(), 1);

    let replayed = FaultSchedule::from_json(&minimal.to_json()).unwrap();
    assert_eq!(replayed, minimal);
    assert!(failing(&replayed), "the JSON round-trip still reproduces");
}

/// A nemesis schedule that triggers no violation minimizes to itself
/// (nothing to shrink) — the API contract for a green run.
#[test]
fn healthy_runs_do_not_minimize() {
    let schedule = FaultSchedule::generate(5, 30.0, 5, &NemesisProfile::default());
    let mut failing = |candidate: &FaultSchedule| {
        let mut sim = Simulation::new(SimConfig {
            seed: 5,
            ..SimConfig::default()
        });
        sim.submit_update(SiteId(0));
        sim.quiesce();
        sim.apply_schedule(candidate);
        sim.schedule_poisson_arrivals(2.0, 30.0);
        sim.run_until(40.0);
        sim.heal();
        sim.quiesce();
        !sim.check_invariants().is_empty()
    };
    assert!(!failing(&schedule), "the protocol survives this schedule");
    let out = minimize(&schedule, &mut failing);
    assert_eq!(out, schedule);
}

/// Applying a schedule twice (or one with out-of-range sites) must not
/// wedge the engine — hand-edited JSON is part of the threat model.
#[test]
fn hostile_schedules_do_not_wedge_the_engine() {
    let schedule = FaultSchedule::new(vec![
        NemesisEvent::Crash {
            site: 99,
            at: 1.0,
            duration: 5.0,
        },
        NemesisEvent::OneWay {
            from: 0,
            to: 0,
            at: 1.0,
            duration: 5.0,
        },
        NemesisEvent::Partition {
            groups: vec![vec![0, 1, 2, 3, 4, 77], vec![]],
            at: -3.0,
            duration: 5.0,
        },
        NemesisEvent::Lossy {
            p: 7.5,
            at: 2.0,
            duration: -4.0,
        },
    ]);
    let mut sim = Simulation::new(SimConfig::default());
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.apply_schedule(&schedule);
    sim.apply_schedule(&schedule);
    sim.schedule_poisson_arrivals(2.0, 10.0);
    sim.run_until(20.0);
    sim.heal();
    sim.quiesce();
    assert!(sim.check_invariants().is_empty());
    assert!(sim.stats().commits > 0);
}
