//! End-to-end validation the paper never had: the *message-level
//! protocol's* empirical availability under model-matched fault
//! processes approaches the analytic steady-state availability.
//!
//! Setup: sites alternate `Exp(1)` up-times and `Exp(ratio)` down-times
//! (the paper's model); updates arrive Poisson at uniformly random
//! sites, fast relative to the fault timescale (the "frequent updates"
//! assumption); message latency and timeouts are two orders of
//! magnitude below the fault timescale (the paper's fourth assumption:
//! "communication delays are several orders of magnitude less than the
//! typical time between failures or repairs").
//!
//! Empirical availability = workload commits / (workload commits +
//! quorum-rejections + arrivals at down sites). `Make_Current` restart
//! traffic is booked separately by the engine; lock-busy refusals and
//! transactions lost to a mid-flight coordinator crash are protocol
//! congestion artefacts the instantaneous model has no counterpart
//! for, and are excluded. The residual gap (a point or two low) is the
//! genuine price of two-phase commit blocking and of updates arriving
//! at a finite rate rather than "instantaneously after every event".
//!
//! The analytic reference values come from `dynvote-markov`; they are
//! hard-coded here to keep the crates' test suites independent (the
//! root `tests/` crate re-derives them live).

use dynvote_core::{AlgorithmKind, SiteId};
use dynvote_sim::{SimConfig, Simulation};

/// Run the protocol under model-matched faults; return empirical
/// availability.
fn empirical(kind: AlgorithmKind, ratio: f64, seed: u64, duration: f64) -> f64 {
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        algorithm: kind,
        latency: 0.0008,
        vote_timeout: 0.003,
        catchup_timeout: 0.003,
        // Flat retries (max == initial) keep the run timing-identical
        // to the pre-backoff baseline this test was calibrated on.
        initial_backoff: 0.02,
        max_backoff: 0.02,
        drop_probability: 0.0,
        seed,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();
    let base = sim.stats().clone();

    sim.schedule_poisson_arrivals(12.0, duration);
    sim.schedule_model_faults(ratio, duration);
    sim.run_until(duration + 5.0);
    for i in 0..5 {
        sim.recover_site(SiteId::new(i));
    }
    sim.quiesce();
    assert!(
        sim.check_invariants().is_empty(),
        "{kind}: {:?}",
        sim.check_invariants()
    );

    let s = sim.stats();
    let commits = (s.commits - base.commits) as f64;
    let rejected = (s.rejected - base.rejected) as f64;
    let down = (s.refused_down - base.refused_down) as f64;
    commits / (commits + rejected + down)
}

#[test]
fn protocol_availability_tracks_the_markov_model() {
    // Analytic site availabilities at n = 5, ratio = 2 (from
    // dynvote-markov, asserted live in tests/cross_validation.rs).
    let cases = [
        (AlgorithmKind::Voting, 0.5926),
        (AlgorithmKind::DynamicVoting, 0.6045),
        (AlgorithmKind::DynamicLinear, 0.6362),
        (AlgorithmKind::Hybrid, 0.6425),
    ];
    for (kind, analytic) in cases {
        let measured = empirical(kind, 2.0, 99, 1200.0);
        assert!(
            (measured - analytic).abs() < 0.04,
            "{kind}: protocol {measured:.4} vs model {analytic:.4}"
        );
    }
}

#[test]
fn protocol_preserves_the_algorithm_ranking() {
    // Same seed → same fault script: a paired comparison. The ordering
    // voting < dynamic-linear < hybrid must survive the move from the
    // instantaneous model to real messages.
    let voting = empirical(AlgorithmKind::Voting, 2.0, 7, 800.0);
    let linear = empirical(AlgorithmKind::DynamicLinear, 2.0, 7, 800.0);
    let hybrid = empirical(AlgorithmKind::Hybrid, 2.0, 7, 800.0);
    assert!(
        voting < linear && linear <= hybrid + 0.01,
        "ranking violated: voting {voting:.4}, linear {linear:.4}, hybrid {hybrid:.4}"
    );
}

#[test]
fn low_ratio_reverses_hybrid_and_linear() {
    // Below the 0.63 crossover dynamic-linear should win even at the
    // protocol level (ratio 0.25 is far enough out to beat the noise).
    let linear = empirical(AlgorithmKind::DynamicLinear, 0.25, 13, 1000.0);
    let hybrid = empirical(AlgorithmKind::Hybrid, 0.25, 13, 1000.0);
    assert!(
        linear > hybrid,
        "below the crossover: linear {linear:.4} vs hybrid {hybrid:.4}"
    );
}
