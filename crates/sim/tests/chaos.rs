//! Chaos testing: Theorem 1 under fire.
//!
//! The correctness claim of a pessimistic replica control algorithm is
//! that *no* interleaving of failures, recoveries, partitions, message
//! losses and racing coordinators can ever commit two different updates
//! at the same version, skip a version, or leave a copy whose log
//! disagrees with the global chain. These tests hammer the
//! message-level protocol with randomized fault scripts for every
//! algorithm and assert exactly that, via the engine's omniscient
//! ledger.

use dynvote_core::{AlgorithmKind, SiteId};
use dynvote_sim::{SimConfig, Simulation};

fn chaos_run(kind: AlgorithmKind, n: usize, seed: u64, drop: f64) -> Simulation {
    let mut sim = Simulation::new(SimConfig {
        n,
        algorithm: kind,
        drop_probability: drop,
        seed,
        ..SimConfig::default()
    });
    // A healthy prologue so the chain exists before the chaos starts.
    sim.submit_update(SiteId(0));
    sim.quiesce();

    sim.schedule_poisson_arrivals(3.0, 80.0);
    sim.schedule_random_faults(0.5, 0.8, 80.0);
    sim.run_until(90.0);

    // Heal the network and let every in-doubt transaction resolve.
    for i in 0..n {
        sim.recover_site(SiteId::new(i));
    }
    for i in 0..n {
        for j in i + 1..n {
            sim.repair_link(SiteId::new(i), SiteId::new(j));
        }
    }
    sim.quiesce();
    sim
}

#[test]
fn no_algorithm_ever_diverges_under_chaos() {
    for kind in AlgorithmKind::ALL {
        for seed in 0..4 {
            let sim = chaos_run(kind, 5, seed, 0.0);
            let violations = sim.check_invariants();
            assert!(
                violations.is_empty(),
                "{kind} seed {seed}: {violations:?}"
            );
            assert!(sim.stats().commits > 0, "{kind} seed {seed}: nothing committed");
        }
    }
}

#[test]
fn chaos_with_message_loss_is_still_safe() {
    for kind in [
        AlgorithmKind::Hybrid,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::ModifiedHybrid,
    ] {
        for seed in 10..13 {
            let sim = chaos_run(kind, 5, seed, 0.15);
            let violations = sim.check_invariants();
            assert!(violations.is_empty(), "{kind} seed {seed}: {violations:?}");
        }
    }
}

#[test]
fn small_and_large_networks_survive_chaos() {
    for n in [3usize, 4, 8] {
        let sim = chaos_run(AlgorithmKind::Hybrid, n, 99, 0.05);
        let violations = sim.check_invariants();
        assert!(violations.is_empty(), "n={n}: {violations:?}");
    }
}

#[test]
fn after_healing_every_site_converges() {
    let sim = chaos_run(AlgorithmKind::Hybrid, 5, 1234, 0.0);
    // After healing, a final update brings everyone to the same version.
    let mut sim = sim;
    sim.submit_update(SiteId(2));
    sim.quiesce();
    let versions: Vec<u64> = (0..5).map(|i| sim.site(SiteId(i)).meta().version).collect();
    assert!(
        versions.iter().all(|&v| v == versions[0]),
        "sites disagree after healing: {versions:?}"
    );
    assert!(sim.check_invariants().is_empty());
}

#[test]
fn blocked_transactions_resolve_after_coordinator_recovery() {
    // A focused regression for the 2PC blocking window: coordinator
    // crashes right after starting; subordinates stay blocked (their
    // prepare records pin the lock) until the coordinator returns and
    // answers status queries with presumed abort.
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        algorithm: AlgorithmKind::Hybrid,
        seed: 5,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.submit_update(SiteId(0));
    // Vote requests are delivered at +latency (0.01) and the granted
    // votes are still in flight back to the coordinator; crash it now,
    // before it can decide.
    sim.run_until(sim.clock() + 0.015);
    sim.crash_site(SiteId(0));
    sim.run_until(sim.clock() + 2.0);
    // Subordinates are blocked: an update elsewhere cannot gather votes.
    sim.submit_update(SiteId(1));
    sim.run_until(sim.clock() + 1.0);
    let blocked_commits = sim.stats().commits;
    assert_eq!(blocked_commits, 1, "no commit possible while in doubt");
    sim.recover_site(SiteId(0));
    sim.quiesce();
    sim.submit_update(SiteId(1));
    sim.quiesce();
    assert!(sim.stats().commits >= 2, "service resumed after recovery");
    assert!(sim.check_invariants().is_empty());
}
