//! Chaos testing: Theorem 1 under fire.
//!
//! The correctness claim of a pessimistic replica control algorithm is
//! that *no* interleaving of failures, recoveries, partitions, message
//! losses, duplications and reorderings can ever commit two different
//! updates at the same version, skip a version, or leave a copy whose
//! log disagrees with the global chain. These tests hammer the
//! message-level protocol with nemesis fault schedules for every
//! algorithm and assert exactly that, via the engine's omniscient
//! ledger.

use dynvote_core::{AlgorithmKind, SiteId};
use dynvote_sim::{FaultSchedule, NemesisEvent, NemesisProfile, SimConfig, Simulation};

/// Run `kind` under a generated nemesis schedule (crashes, rolling and
/// one-way partitions, lossy bursts, duplication, reordering) plus a
/// Poisson workload, then heal and let every blocked transaction
/// resolve.
fn chaos_run(kind: AlgorithmKind, n: usize, seed: u64, drop: f64) -> Simulation {
    let mut sim = Simulation::new(SimConfig {
        n,
        algorithm: kind,
        drop_probability: drop,
        seed,
        ..SimConfig::default()
    });
    // A healthy prologue so the chain exists before the chaos starts.
    sim.submit_update(SiteId(0));
    sim.quiesce();

    let schedule = FaultSchedule::generate(n, 80.0, seed, &NemesisProfile::default());
    sim.apply_schedule(&schedule);
    sim.schedule_poisson_arrivals(3.0, 80.0);
    sim.run_until(100.0);

    // Heal the world and let every in-doubt transaction resolve.
    sim.heal();
    sim.quiesce();
    sim
}

#[test]
fn no_algorithm_ever_diverges_under_chaos() {
    for kind in AlgorithmKind::ALL {
        for seed in 0..4 {
            let sim = chaos_run(kind, 5, seed, 0.0);
            let violations = sim.check_invariants();
            assert!(violations.is_empty(), "{kind} seed {seed}: {violations:?}");
            assert!(
                sim.stats().commits > 0,
                "{kind} seed {seed}: nothing committed"
            );
        }
    }
}

#[test]
fn chaos_with_message_loss_is_still_safe() {
    for kind in [
        AlgorithmKind::Hybrid,
        AlgorithmKind::DynamicLinear,
        AlgorithmKind::ModifiedHybrid,
    ] {
        for seed in 10..13 {
            let sim = chaos_run(kind, 5, seed, 0.15);
            let violations = sim.check_invariants();
            assert!(violations.is_empty(), "{kind} seed {seed}: {violations:?}");
        }
    }
}

#[test]
fn small_and_large_networks_survive_chaos() {
    for n in [3usize, 4, 8] {
        let sim = chaos_run(AlgorithmKind::Hybrid, n, 99, 0.05);
        let violations = sim.check_invariants();
        assert!(violations.is_empty(), "n={n}: {violations:?}");
    }
}

#[test]
fn after_healing_every_site_converges() {
    let sim = chaos_run(AlgorithmKind::Hybrid, 5, 1234, 0.0);
    // After healing, a final update brings everyone to the same version.
    let mut sim = sim;
    sim.submit_update(SiteId(2));
    sim.quiesce();
    let versions: Vec<u64> = (0..5).map(|i| sim.site(SiteId(i)).meta().version).collect();
    assert!(
        versions.iter().all(|&v| v == versions[0]),
        "sites disagree after healing: {versions:?}"
    );
    assert!(sim.check_invariants().is_empty());
}

/// Every algorithm, with every *channel* adversary at once: heavy
/// duplication, reordering windows wider than the base latency, and
/// asymmetric one-way link failures — while sites crash and restart.
#[test]
fn duplication_reordering_and_asymmetry_for_every_algorithm() {
    let schedule = FaultSchedule::new(vec![
        NemesisEvent::Duplicate {
            p: 0.35,
            at: 0.0,
            duration: 60.0,
        },
        NemesisEvent::Reorder {
            extra: 0.08, // 8× base latency: rampant reordering
            at: 0.0,
            duration: 60.0,
        },
        NemesisEvent::OneWay {
            from: 1,
            to: 0,
            at: 5.0,
            duration: 20.0,
        },
        NemesisEvent::OneWay {
            from: 3,
            to: 4,
            at: 15.0,
            duration: 25.0,
        },
        NemesisEvent::Crash {
            site: 2,
            at: 10.0,
            duration: 12.0,
        },
        NemesisEvent::Crash {
            site: 4,
            at: 30.0,
            duration: 10.0,
        },
    ]);
    for kind in AlgorithmKind::ALL {
        let mut sim = Simulation::new(SimConfig {
            n: 5,
            algorithm: kind,
            seed: 21,
            ..SimConfig::default()
        });
        sim.submit_update(SiteId(0));
        sim.quiesce();
        sim.apply_schedule(&schedule);
        sim.schedule_poisson_arrivals(3.0, 60.0);
        sim.run_until(70.0);
        sim.heal();
        sim.quiesce();
        let violations = sim.check_invariants();
        assert!(violations.is_empty(), "{kind}: {violations:?}");
        assert!(sim.stats().commits > 0, "{kind}: nothing committed");
        assert!(
            sim.stats().messages_duplicated > 0,
            "{kind}: duplication window never fired"
        );
    }
}

/// Same seed + same schedule ⇒ byte-identical ledger and statistics,
/// even with duplication and randomized reordering in play. This is the
/// property that makes serialized schedules replayable and the
/// minimizer's oracle meaningful.
#[test]
fn replay_with_same_seed_and_schedule_is_deterministic() {
    let schedule = FaultSchedule::generate(5, 60.0, 42, &NemesisProfile::default());
    let run = |schedule: &FaultSchedule| {
        let mut sim = Simulation::new(SimConfig {
            n: 5,
            algorithm: AlgorithmKind::Hybrid,
            drop_probability: 0.05,
            seed: 9,
            ..SimConfig::default()
        });
        sim.submit_update(SiteId(0));
        sim.quiesce();
        sim.apply_schedule(schedule);
        sim.schedule_poisson_arrivals(3.0, 60.0);
        sim.run_until(75.0);
        sim.heal();
        sim.quiesce();
        (format!("{:?}", sim.ledger()), sim.stats().clone())
    };
    // One run from the in-memory schedule, one from its JSON round-trip.
    let replayed = FaultSchedule::from_json(&schedule.to_json()).unwrap();
    let (ledger_a, stats_a) = run(&schedule);
    let (ledger_b, stats_b) = run(&replayed);
    assert_eq!(ledger_a, ledger_b, "ledgers diverged on replay");
    assert_eq!(stats_a, stats_b, "statistics diverged on replay");
}

#[test]
fn blocked_transactions_resolve_after_coordinator_recovery() {
    // A focused regression for the 2PC blocking window: coordinator
    // crashes right after starting; subordinates stay blocked (their
    // prepare records pin the lock) until the coordinator returns and
    // answers status queries with presumed abort.
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        algorithm: AlgorithmKind::Hybrid,
        seed: 5,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();
    sim.submit_update(SiteId(0));
    // Vote requests are delivered at +latency (0.01) and the granted
    // votes are still in flight back to the coordinator; crash it now,
    // before it can decide.
    sim.run_until(sim.clock() + 0.015);
    sim.crash_site(SiteId(0));
    sim.run_until(sim.clock() + 2.0);
    // Subordinates are blocked: an update elsewhere cannot gather votes.
    sim.submit_update(SiteId(1));
    sim.run_until(sim.clock() + 1.0);
    let blocked_commits = sim.stats().commits;
    assert_eq!(blocked_commits, 1, "no commit possible while in doubt");
    sim.recover_site(SiteId(0));
    sim.quiesce();
    sim.submit_update(SiteId(1));
    sim.quiesce();
    assert!(sim.stats().commits >= 2, "service resumed after recovery");
    assert!(sim.check_invariants().is_empty());
}

/// Regression for the uncounted-participant termination path (see the
/// `StatusOutcome` docs): site C grants its vote, but an asymmetric
/// outbound failure loses the `VoteGranted`; the coordinator decides
/// with {A,B,D,E}, so C is *not* among the counted participants. When
/// the network heals, C's status queries must come back `Aborted` — C
/// is released and stays stale; handing it the new version would
/// inflate the holder set beyond the recorded cardinality SC.
#[test]
fn uncounted_late_voter_is_released_without_the_commit() {
    let c = SiteId(2);
    let mut sim = Simulation::new(SimConfig {
        n: 5,
        algorithm: AlgorithmKind::Hybrid,
        seed: 1,
        ..SimConfig::default()
    });
    sim.submit_update(SiteId(0));
    sim.quiesce();
    // Sever every outbound direction from C: it hears the vote request,
    // grants and prepares, but its vote (and its status queries) vanish.
    for i in 0..5 {
        if SiteId(i) != c {
            sim.fail_link_one_way(c, SiteId(i));
        }
    }
    sim.submit_update(SiteId(0));
    sim.run_until(sim.clock() + 1.0);
    assert!(
        sim.site(c).is_in_doubt(),
        "C granted its vote and must hold a prepare record"
    );
    assert_eq!(sim.ledger().len(), 2, "quorum {{A,B,D,E}} committed v2");
    assert_eq!(sim.site(c).meta().version, 1, "C was not counted");
    // Heal the asymmetry; C's next termination round reaches the others,
    // whose commit records do not list C as a participant.
    for i in 0..5 {
        if SiteId(i) != c {
            sim.repair_link_one_way(c, SiteId(i));
        }
    }
    sim.quiesce();
    assert!(
        !sim.site(c).is_in_doubt(),
        "C released by the Aborted reply"
    );
    assert!(!sim.site(c).is_locked(), "C's lock freed");
    assert_eq!(
        sim.site(c).meta().version,
        1,
        "C stays stale — it must NOT receive the commit it was not counted in"
    );
    let violations = sim.check_invariants();
    assert!(violations.is_empty(), "{violations:?}");
    // The stale copy rejoins the next quorum and catches up normally.
    sim.submit_update(SiteId(0));
    sim.quiesce();
    assert!(sim.check_invariants().is_empty());
    assert_eq!(sim.ledger().len(), 3);
}
