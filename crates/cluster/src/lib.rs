//! # dynvote-cluster — a live multi-threaded dynamic-voting cluster
//!
//! The simulator in `dynvote-sim` drives the protocol kernel
//! ([`dynvote_protocol::SiteActor`]) under a virtual clock and an
//! omniscient in-memory network. This crate runs the *same kernel*
//! against wall clocks and real byte streams: one OS thread per site, a
//! pluggable [`Transport`] for inter-site messages, and a closed-loop
//! [`LoadGen`] that measures throughput and latency percentiles of the
//! resulting system.
//!
//! The layering is strictly sans-IO:
//!
//! ```text
//! dynvote-core      PartitionView / ReplicaControl   (pure decision rules)
//! dynvote-protocol  SiteActor: Message -> Vec<Action> (pure protocol kernel)
//! dynvote-net       epoll reactor primitives + incremental frame/HTTP decode
//! this crate        Node: Action -> transport sends + wall-clock timers
//!                   Transport: in-process channels, or the per-node epoll
//!                   reactor multiplexing peer links, binary clients, and
//!                   the HTTP front door (`/v1/op`, `/metrics`, `/status`)
//!                   Cluster / LoadGen / OpenLoop: boot, faults, measurement
//! ```
//!
//! Because the kernel is shared, a scripted scenario executed on the
//! simulator, on the channel transport, and on the TCP transport must
//! reach byte-identical per-site `(VN, SC, DS)` metadata — the
//! conformance suite in `tests/conformance.rs` pins exactly that for
//! all six algorithms.
//!
//! ## Quickstart
//!
//! ```
//! use dynvote_cluster::{Cluster, ClusterConfig, TransportKind};
//! use dynvote_core::AlgorithmKind;
//!
//! let config = ClusterConfig::new(5, AlgorithmKind::Hybrid);
//! let cluster = Cluster::boot(&config).unwrap();
//! let mut client = cluster.client(dynvote_core::SiteId(0));
//! let reply = client.update().unwrap();
//! assert!(matches!(reply, dynvote_cluster::ClientReply::Committed { version: 1 }));
//! cluster.shutdown();
//! # let _ = TransportKind::Channel;
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod cluster;
mod frontdoor;
mod loadgen;
mod node;
mod openloop;
mod reactor;
pub mod scenario;
mod transport;
pub mod wire;

pub use cluster::{
    BootError, Cluster, ClusterConfig, DurabilityMode, LocalClient, RequestError, TcpClient,
    TransportKind, MAX_BATCH, MAX_OBJECTS, MAX_SHARD_THREADS,
};
pub use frontdoor::FrontDoorConfig;
pub use loadgen::{
    EventCountEntry, Histogram, KeyDist, LoadGen, LoadGenConfig, LoadReport, NetCounterEntry,
    ShardCounterEntry, WorkloadTarget,
};
pub use node::{
    AuditOutcome, ClusterLedger, Node, NodeConfig, NodeDurability, NodeEvent, ReplySink,
    ShardStats, DEFAULT_MAX_BATCH,
};
pub use openloop::{OpenLoop, OpenLoopConfig, OpenLoopReport};
pub use reactor::ReactorTransport;
pub use transport::{ChannelTransport, NetStats, Transport, TransportError};
pub use wire::{ClientOp, ClientReply, WireError};
