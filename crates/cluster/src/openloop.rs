//! Open-loop HTTP load generation against the front door.
//!
//! The closed-loop generator ([`crate::LoadGen`]) self-paces: each
//! worker waits for a reply before offering the next request, so
//! offered load collapses to whatever the cluster sustains and queueing
//! delay hides from the latency numbers (coordinated omission). This
//! driver is the complement: arrivals are scheduled on a fixed clock
//! (`rate` per second, round-robin across the target nodes) regardless
//! of how the cluster is doing, each arrival opens its **own**
//! connection (thousands concurrently), and latency is measured from
//! the *intended* arrival instant — a stalled cluster shows up as
//! latency, not as politely reduced load.
//!
//! The driver is a single thread multiplexing every in-flight
//! connection on one [`Poller`] — the same readiness machinery the
//! server side runs, exercised from the client side. When the number of
//! concurrently open connections reaches `connections`, further
//! arrivals are *shed* and counted (`shed`), not silently skipped and
//! not allowed to queue without bound.

use crate::loadgen::{sample_key, zipf_cdf, Histogram, KeyDist, LatencyStats};
use dynvote_core::ConfigError;
use dynvote_net::{sys, Event, Events, Interest, Poller, ResponseParser, Token};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Cap on the `connections` knob (and so on driver memory).
pub const MAX_OPEN_CONNS: usize = 16 * 1024;

/// How long after the offered-load window the driver keeps draining
/// in-flight connections before abandoning them.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Open-loop driver parameters.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Target arrival rate, ops per second, paced on a fixed clock.
    pub rate: f64,
    /// How long to keep offering arrivals.
    pub duration: Duration,
    /// Concurrent-connection bound; arrivals beyond it are shed (and
    /// counted).
    pub connections: usize,
    /// Fraction of arrivals that are read-only (`0..=1`).
    pub read_fraction: f64,
    /// Number of distinct objects the workload targets (`>= 1`); each
    /// arrival carries a key in `0..keys`.
    pub keys: u32,
    /// How keys are drawn.
    pub key_dist: KeyDist,
    /// Seed for the operation-mix RNG.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rate: 500.0,
            duration: Duration::from_secs(5),
            connections: 2048,
            read_fraction: 0.1,
            keys: 1,
            key_dist: KeyDist::Uniform,
            seed: 7,
        }
    }
}

impl OpenLoopConfig {
    /// Reject absurd parameters through the shared typed error path.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.rate.is_finite() || self.rate <= 0.0 {
            return Err(ConfigError::NotPositive {
                field: "rate",
                value: self.rate,
            });
        }
        if self.connections == 0 || self.connections > MAX_OPEN_CONNS {
            return Err(ConfigError::OutOfRange {
                field: "connections",
                value: self.connections as u64,
                lo: 1,
                hi: MAX_OPEN_CONNS as u64,
            });
        }
        if !(0.0..=1.0).contains(&self.read_fraction) || !self.read_fraction.is_finite() {
            return Err(ConfigError::NotProbability {
                field: "read_fraction",
                value: self.read_fraction,
            });
        }
        if self.duration.is_zero() {
            return Err(ConfigError::NotPositive {
                field: "duration",
                value: 0.0,
            });
        }
        if self.keys == 0 {
            return Err(ConfigError::OutOfRange {
                field: "keys",
                value: 0,
                lo: 1,
                hi: u64::from(u32::MAX),
            });
        }
        Ok(())
    }
}

/// Machine-readable summary of one open-loop run.
#[derive(Debug, Clone, Serialize)]
pub struct OpenLoopReport {
    /// Replica-control algorithm under test (caller-supplied context).
    pub algorithm: String,
    /// Cluster size (caller-supplied context).
    pub sites: usize,
    /// Configured arrival rate, ops per second.
    pub target_rate: f64,
    /// Wall-clock measurement window in seconds (offered-load window
    /// only; the drain grace is excluded).
    pub duration_secs: f64,
    /// Arrivals the clock scheduled.
    pub offered: u64,
    /// Arrivals shed at the concurrency bound.
    pub shed: u64,
    /// Connections that failed to establish or died mid-exchange.
    pub connect_errors: u64,
    /// In-flight exchanges abandoned when the drain grace expired.
    pub abandoned: u64,
    /// Updates that committed (HTTP 200, committed outcome).
    pub committed: u64,
    /// Reads served (HTTP 200, read_served outcome).
    pub reads_served: u64,
    /// Refused: partition not distinguished (409 rejected).
    pub rejected: u64,
    /// Refused: copy locked (409 busy).
    pub busy: u64,
    /// Aborted: protocol deadline expired (504).
    pub timed_out: u64,
    /// Refused: site crashed (503).
    pub down: u64,
    /// Refused at admission: 429 with Retry-After.
    pub rejected_429: u64,
    /// Any other HTTP outcome (4xx/5xx the classifier does not know).
    pub http_errors: u64,
    /// Number of distinct keys the workload targeted.
    pub keys: u32,
    /// How keys were drawn (`"uniform"` or `"zipf"`).
    pub key_dist: String,
    /// Committed updates per shard, indexed by key; sums to
    /// [`OpenLoopReport::committed`] (the aggregate).
    pub per_shard_commits: Vec<u64>,
    /// Committed updates per second of offered-load window.
    pub throughput_per_sec: f64,
    /// Commit-latency percentiles, measured from the intended arrival
    /// instant (coordinated-omission-free).
    pub update_latency: LatencyStats,
    /// The underlying commit-latency histogram.
    pub histogram: Histogram,
    /// Peak concurrently open connections observed.
    pub peak_open: u64,
}

impl OpenLoopReport {
    /// Serialize as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

struct OpenConn {
    stream: TcpStream,
    parser: ResponseParser,
    out: Vec<u8>,
    connected: bool,
    /// The instant the arrival *should* have happened — the latency
    /// origin.
    intended: Instant,
    is_update: bool,
    key: u32,
}

#[derive(Default)]
struct Tally {
    per_shard_commits: Vec<u64>,
    shed: u64,
    connect_errors: u64,
    abandoned: u64,
    committed: u64,
    reads_served: u64,
    rejected: u64,
    busy: u64,
    timed_out: u64,
    down: u64,
    rejected_429: u64,
    http_errors: u64,
    latency: Histogram,
    peak_open: u64,
}

/// The open-loop driver. Stateless: [`OpenLoop::run`] does everything.
pub struct OpenLoop;

impl OpenLoop {
    /// Offer `config.rate` arrivals per second against `targets`
    /// (round-robin) for `config.duration`, then drain. Context fields
    /// of the returned report (`algorithm`, `sites`) are left for the
    /// caller to fill.
    pub fn run(config: &OpenLoopConfig, targets: &[SocketAddr]) -> io::Result<OpenLoopReport> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        if targets.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "open-loop run needs at least one target address",
            ));
        }
        let poller = Poller::new()?;
        let mut events = Events::with_capacity(1024);
        let mut conns: Vec<Option<OpenConn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut open = 0usize;
        let mut tally = Tally {
            per_shard_commits: vec![0; config.keys as usize],
            ..Tally::default()
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let cdf = match config.key_dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf => Some(zipf_cdf(config.keys)),
        };

        let start = Instant::now();
        let end = start + config.duration;
        let interval = Duration::from_secs_f64(1.0 / config.rate);
        let mut offered = 0u64;

        loop {
            let now = Instant::now();
            // Schedule every arrival whose intended instant has passed.
            while now >= start + interval.mul_f64(offered as f64) {
                let intended = start + interval.mul_f64(offered as f64);
                if intended >= end {
                    break;
                }
                offered += 1;
                if open >= config.connections {
                    tally.shed += 1;
                    continue;
                }
                let target = targets[(offered as usize - 1) % targets.len()];
                let key = sample_key(&mut rng, config.keys, cdf.as_deref());
                let is_update = !(config.read_fraction > 0.0 && rng.gen_bool(config.read_fraction));
                match start_request(
                    &poller, &mut conns, &mut free, target, intended, is_update, key,
                ) {
                    Ok(()) => {
                        open += 1;
                        tally.peak_open = tally.peak_open.max(open as u64);
                    }
                    Err(_) => tally.connect_errors += 1,
                }
            }

            let now = Instant::now();
            let offering = now < end;
            if !offering && open == 0 {
                break;
            }
            if !offering && now >= end + DRAIN_GRACE {
                tally.abandoned += open as u64;
                break;
            }
            let next_arrival = start + interval.mul_f64(offered as f64);
            let wake = if offering {
                next_arrival.min(end + DRAIN_GRACE)
            } else {
                end + DRAIN_GRACE
            };
            let timeout = wake
                .saturating_duration_since(now)
                .max(Duration::from_micros(100));
            poller.wait(&mut events, Some(timeout))?;
            for ev in events.iter() {
                let Token(slot) = ev.token();
                if let Some(done) = step_conn(&poller, &mut conns, slot, &ev, &mut tally) {
                    if done {
                        conns[slot] = None;
                        free.push(slot);
                        open -= 1;
                    }
                }
            }
        }

        let window = config.duration.as_secs_f64();
        Ok(OpenLoopReport {
            algorithm: String::new(),
            sites: 0,
            target_rate: config.rate,
            duration_secs: window,
            offered,
            shed: tally.shed,
            connect_errors: tally.connect_errors,
            abandoned: tally.abandoned,
            committed: tally.committed,
            reads_served: tally.reads_served,
            rejected: tally.rejected,
            busy: tally.busy,
            timed_out: tally.timed_out,
            down: tally.down,
            rejected_429: tally.rejected_429,
            http_errors: tally.http_errors,
            keys: config.keys,
            key_dist: config.key_dist.to_string(),
            per_shard_commits: tally.per_shard_commits,
            throughput_per_sec: tally.committed as f64 / window.max(f64::EPSILON),
            update_latency: LatencyStats {
                p50_ms: tally.latency.quantile_ms(0.50),
                p95_ms: tally.latency.quantile_ms(0.95),
                p99_ms: tally.latency.quantile_ms(0.99),
                max_ms: tally.latency.max_ms(),
            },
            histogram: tally.latency,
            peak_open: tally.peak_open,
        })
    }
}

/// Open a nonblocking connection and stage one `POST /v1/op`. A zero
/// key keeps the body keyless — byte-identical to the single-object
/// wire format.
fn start_request(
    poller: &Poller,
    conns: &mut Vec<Option<OpenConn>>,
    free: &mut Vec<usize>,
    target: SocketAddr,
    intended: Instant,
    is_update: bool,
    key: u32,
) -> io::Result<()> {
    let (fd, connected) = sys::connect_nonblocking(&target)?;
    let stream = TcpStream::from(fd);
    let _ = stream.set_nodelay(true);
    let verb = if is_update { "update" } else { "read" };
    let body = if key == 0 {
        format!("{{\"op\":\"{verb}\"}}")
    } else {
        format!("{{\"op\":\"{verb}\",\"key\":{key}}}")
    };
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(b"POST /v1/op HTTP/1.1\r\nhost: dynvote\r\ncontent-length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\nconnection: close\r\n\r\n");
    out.extend_from_slice(body.as_bytes());
    let conn = OpenConn {
        stream,
        parser: ResponseParser::new(),
        out,
        connected,
        intended,
        is_update,
        key,
    };
    let slot = match free.pop() {
        Some(slot) => {
            conns[slot] = Some(conn);
            slot
        }
        None => {
            conns.push(Some(conn));
            conns.len() - 1
        }
    };
    let conn = conns[slot].as_ref().expect("just stored");
    // Until connected, completion surfaces as writability; afterwards
    // we want both directions (write the request, read the response).
    poller.register(&conn.stream, Token(slot), Interest::BOTH)?;
    Ok(())
}

/// Advance one connection on readiness. `Some(true)` means the
/// exchange finished (or died) and the slot must be reclaimed; `None`
/// means the slot was already empty.
fn step_conn(
    _poller: &Poller,
    conns: &mut [Option<OpenConn>],
    slot: usize,
    ev: &Event,
    tally: &mut Tally,
) -> Option<bool> {
    let conn = conns.get_mut(slot)?.as_mut()?;
    if !conn.connected {
        if !ev.is_writable() && !ev.is_error() {
            return Some(false);
        }
        match conn.stream.take_error() {
            Ok(None) => conn.connected = true,
            _ => {
                tally.connect_errors += 1;
                return Some(true);
            }
        }
    }
    // Write whatever is left of the request.
    while !conn.out.is_empty() {
        match conn.stream.write(&conn.out) {
            Ok(0) => {
                tally.connect_errors += 1;
                return Some(true);
            }
            Ok(n) => {
                conn.out.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                tally.connect_errors += 1;
                return Some(true);
            }
        }
    }
    // Read until the response parses, the peer hangs up, or WouldBlock.
    let mut buf = [0u8; 4096];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                // EOF before a complete response.
                tally.connect_errors += 1;
                return Some(true);
            }
            Ok(n) => {
                conn.parser.extend(&buf[..n]);
                match conn.parser.next_response() {
                    Ok(Some(response)) => {
                        classify(response.status, &response.body, conn, tally);
                        return Some(true);
                    }
                    Ok(None) => continue,
                    Err(_) => {
                        tally.http_errors += 1;
                        return Some(true);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Some(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                tally.connect_errors += 1;
                return Some(true);
            }
        }
    }
}

fn classify(status: u16, body: &[u8], conn: &OpenConn, tally: &mut Tally) {
    match status {
        200 => {
            if conn.is_update {
                tally.committed += 1;
                if let Some(shard) = tally.per_shard_commits.get_mut(conn.key as usize) {
                    *shard += 1;
                }
                let ns = u64::try_from(conn.intended.elapsed().as_nanos()).unwrap_or(u64::MAX);
                tally.latency.record(ns);
            } else {
                tally.reads_served += 1;
            }
        }
        409 => {
            if body.windows(4).any(|w| w == b"busy") {
                tally.busy += 1;
            } else {
                tally.rejected += 1;
            }
        }
        429 => tally.rejected_429 += 1,
        503 => tally.down += 1,
        504 => tally.timed_out += 1,
        _ => tally.http_errors += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_rejects_absurd_values() {
        let bad_rate = OpenLoopConfig {
            rate: 0.0,
            ..OpenLoopConfig::default()
        };
        assert!(matches!(
            bad_rate.validate(),
            Err(ConfigError::NotPositive { field: "rate", .. })
        ));
        let bad_conns = OpenLoopConfig {
            connections: 0,
            ..OpenLoopConfig::default()
        };
        assert!(matches!(
            bad_conns.validate(),
            Err(ConfigError::OutOfRange {
                field: "connections",
                ..
            })
        ));
        let bad_frac = OpenLoopConfig {
            read_fraction: 2.0,
            ..OpenLoopConfig::default()
        };
        assert!(matches!(
            bad_frac.validate(),
            Err(ConfigError::NotProbability { .. })
        ));
        assert!(OpenLoopConfig::default().validate().is_ok());
    }

    #[test]
    fn run_requires_targets() {
        let err = OpenLoop::run(&OpenLoopConfig::default(), &[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
