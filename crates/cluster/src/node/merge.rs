//! The merge barrier: the point where N workers' independent batches
//! become one node-wide step.
//!
//! Order matters and is fixed:
//!
//! 1. **Drain** — wait until every worker has processed everything
//!    dispatched to it ([`ShardPool::wait_idle`]), then lock every
//!    group. From here the kernels are quiescent.
//! 2. **Collect** — move every worker's staged actions into the reusable
//!    merge buffer (worker order, so the result is deterministic for a
//!    fixed dispatch history), park started client requests on their
//!    transactions, and fold restart tags in.
//! 3. **WAL barrier** — ingest every worker's staging buffer into the
//!    shared [`dynvote_storage::NodeStore`] (again worker order) and
//!    seal the lot as **one** checksummed group-commit record behind
//!    one fsync. Only after this may anything be announced: the
//!    force-write discipline survives parallel execution because
//!    nothing leaves the node before this point.
//! 4. **Ledger** — record commits in the cluster ledger before the
//!    fan-out can trigger a dependent commit on another node.
//! 5. **Dispatch** — sends and broadcasts go to the transport's batch
//!    encoder, `SetTimer` arms the wall-clock wheel, `Resolved`
//!    completes parked clients.

use super::worker::ShardPool;
use super::{Node, PendingClient};
use crate::wire::ClientReply;
use dynvote_core::SiteId;
use dynvote_protocol::{Action, ResolveReason, SiteActor, TxnId};
use std::collections::HashMap;

impl Node {
    /// Run one merge barrier over `pool`. Idempotent: with nothing
    /// staged it costs one no-op barrier check.
    pub(super) fn merge(&mut self, pool: &mut ShardPool) {
        pool.wait_idle();
        let mut groups = pool.lock_groups();

        // Collect, in worker order: staged actions into the reusable
        // merge buffer, started requests onto their transactions,
        // restart transactions into the exclusion set.
        let mut batch = std::mem::take(&mut self.merge_buf);
        for group in groups.iter_mut() {
            batch.append(&mut group.scratch);
            for txn in group.restarts.drain(..) {
                self.restart_txns.insert(txn);
            }
            for (txn, clients) in group.starts.drain(..) {
                match txn {
                    // Park every op the round carries, in payload order
                    // — the commit fan-out below acks each at its own
                    // version.
                    Some(txn) => self.pending.entry(txn).or_default().extend(
                        clients
                            .into_iter()
                            .map(|(id, reply)| PendingClient { id, reply }),
                    ),
                    // The kernel refused to start anything — busy.
                    None => {
                        for (id, reply) in clients {
                            reply.send(id, ClientReply::Busy);
                        }
                    }
                }
            }
            // Ops refused at the per-object queue bound: the typed
            // overload reply, distinct from a protocol-level refusal.
            for (id, reply) in group.overflows.drain(..) {
                reply.send(id, ClientReply::Overloaded);
            }
        }

        // Group-commit barrier: every WAL op any worker staged this
        // batch is sealed as one record and fsynced (per the fsync
        // policy) before any send or client reply below announces it.
        // One fsync covers every object and every worker the batch
        // touched. With one worker the stage list is empty — the
        // shards' direct handles already appended into the store's
        // pending record — and only the seal runs.
        if let Some(core) = &self.store {
            let mut core = core.lock().expect("store poisoned");
            for stage in &self.stages {
                core.ingest(&mut stage.lock().expect("stage poisoned"));
            }
            core.barrier().expect("WAL barrier");
        }

        // Ledger bookkeeping before the fan-out: a commit must be
        // globally recorded before the Commit broadcast below can
        // trigger a dependent commit (version + 1) on another thread,
        // or the ledger would flag a spurious gap.
        // A batched round commits k entries — one CommitRecorded per
        // entry, in version (= payload) order — so a transaction maps
        // to the ordered version list its client ops landed at.
        let mut committed: HashMap<TxnId, Vec<u64>> = HashMap::new();
        for action in &batch {
            if let Action::CommitRecorded {
                version,
                payload,
                txn,
            } = action
            {
                self.ledger.record(self.id, txn.object, *version, *payload);
                committed.entry(*txn).or_default().push(*version);
                if !self.restart_txns.contains(txn) {
                    self.commits += 1;
                }
            }
        }

        for action in batch.drain(..) {
            match action {
                Action::Send { to, msg } => self.send(to, msg),
                Action::Broadcast { msg } => {
                    for i in 0..self.n {
                        let to = SiteId(i as u8);
                        if to != self.id {
                            self.send(to, msg.clone());
                        }
                    }
                }
                Action::SetTimer { txn, kind } => {
                    // The backoff schedule needs the shard's current
                    // termination-round count; the group locks are
                    // still held, so read it through the owner's
                    // partition.
                    let rounds = groups[txn.object.index() % groups.len()]
                        .part
                        .shard(txn.object)
                        .map_or(0, SiteActor::prepared_rounds);
                    self.arm_timer(txn, kind, rounds);
                }
                Action::Resolved { txn, reason } => {
                    self.restart_txns.remove(&txn);
                    if let Some(clients) = self.pending.remove(&txn) {
                        // One Resolved covers every op of the round:
                        // fan the completion out, acking each parked
                        // client exactly once. On commit, client i
                        // (payload order) landed at the round's i-th
                        // recorded version.
                        let versions = committed.get(&txn);
                        let fallback = || {
                            groups[txn.object.index() % groups.len()]
                                .part
                                .shard(txn.object)
                                .map_or(0, |s| s.meta().version)
                        };
                        for (i, client) in clients.into_iter().enumerate() {
                            let reply = match reason {
                                ResolveReason::Committed => ClientReply::Committed {
                                    version: versions
                                        .and_then(|v| v.get(i).copied())
                                        .unwrap_or_else(fallback),
                                },
                                ResolveReason::ReadServed => ClientReply::ReadServed,
                                ResolveReason::NotDistinguished => ClientReply::Rejected,
                                ResolveReason::LockBusy => ClientReply::Busy,
                                ResolveReason::Timeout => ClientReply::TimedOut,
                            };
                            client.reply.send(client.id, reply);
                        }
                    }
                }
                // Group mode is a multi-file transaction-manager hook;
                // the live cluster runs single-file updates only.
                Action::DecisionReady { .. } => {}
                Action::CommitRecorded { .. } => {} // handled above
            }
        }
        self.merge_buf = batch;
    }
}
