//! The per-site node runtime: a scheduler thread plus N shard-affine
//! workers driving a [`ShardedSite`] — many independent per-object
//! protocol kernels behind one static ownership map.
//!
//! A node owns the protocol kernels for its site and translates their
//! [`Action`]s into the outside world: sends go to the `Transport`,
//! `SetTimer` becomes an entry in a wall-clock timer heap, and
//! `Resolved` completes the client request that started the
//! transaction. Everything arrives through one `mpsc` inbox
//! ([`NodeEvent`]) — peer frames, client requests, and shutdown.
//!
//! The runtime is split into three pieces, one file each:
//!
//! * **scheduler** ([`Node::run`], `node/scheduler.rs`) — the inbox
//!   thread. It classifies each event by `ObjectId` and hands it to the
//!   worker owning that shard (static partition `object % N`), fires
//!   wall-clock timers, and paces the merge barrier.
//! * **workers** (`node/worker.rs`) — N threads (none when
//!   `--shard-threads 1`, the default: the scheduler then runs kernels
//!   inline), each exclusively owning a [`ShardPartition`] of the
//!   site's objects. Kernels stay single-threaded and lock-free: the
//!   partition *is* the synchronization.
//! * **merge** (`node/merge.rs`) — the barrier that waits for every
//!   worker's queue to drain, seals every worker's staged WAL ops as
//!   **one** [`NodeStore`] group-commit record behind one fsync, and
//!   only then dispatches the staged sends and client replies through
//!   the transport's batch encoder. The force-write discipline is
//!   intact — nothing announced is ever lost — but the fsync is
//!   amortized across every object and every worker the batch touched.
//!
//! Transactions on different objects never contend: each shard has its
//! own lock, commit chain, and prepare record, and per-object event
//! order is preserved because one worker owns the object for the
//! node's lifetime. That is why per-object results are byte-identical
//! for any `--shard-threads` — pinned by the conformance suite.
//!
//! Fault injection mirrors the simulator's model exactly:
//!
//! * **crash** wipes the kernels' volatile state (durable
//!   prepare/commit records survive), cancels pending wall-clock timers
//!   (they guard volatile transactions) and fails parked clients with
//!   [`ClientReply::Down`]. The threads stay up so control traffic
//!   keeps working.
//! * **recover** runs the Section V-C restart protocol
//!   (`Make_Current`); its transactions are tagged so a resulting
//!   commit is booked as restart traffic, not workload.
//! * **partitions** are emulated at the node boundary by a
//!   [`SiteSet`] of reachable sites, filtering both inbound and
//!   outbound messages — transport-agnostic, and equivalent to the
//!   simulator's link topology once in-flight traffic has drained.

mod merge;
mod scheduler;
mod worker;

pub use worker::ShardStats;

use crate::frontdoor::HttpTx;
use crate::reactor::ConnTx;
use crate::transport::{NetStats, Transport};
use crate::wire::{ClientOp, ClientReply};
use dynvote_core::{AlgorithmKind, BackoffPolicy, SiteId, SiteSet, TimerWheel};
use dynvote_protocol::{
    Action, CountingSink, DurableState, EventSink, FanoutSink, LogEntry, Message, ObjectId,
    RenderSink, ShardedSite, TimerKind, TxnId,
};
use dynvote_storage::{
    NodeStore, RecoveryReport, ShardHandle, StagedHandle, StorageError, StoreConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default bound on how many queued client updates one quorum round
/// seals (see [`crate::ClusterConfig::max_batch`]). Adaptive batching
/// means this is a cap, not a target: an idle object still commits a
/// lone op immediately.
pub const DEFAULT_MAX_BATCH: usize = 32;

/// Where a client reply should go.
#[derive(Debug, Clone)]
pub enum ReplySink {
    /// In-process client: replies land on an `mpsc` channel as
    /// `(correlation id, reply)` pairs.
    Channel(Sender<(u64, ClientReply)>),
    /// Remote binary client: the reply is framed and staged on its
    /// reactor-owned connection; the reactor writes it out.
    Conn(ConnTx),
    /// HTTP front-door client: the reply is rendered to an HTTP
    /// response, staged on the connection, and the admission slot is
    /// released (see [`crate::frontdoor`]).
    Http(HttpTx),
    /// Discard the reply (fire-and-forget control operations).
    Null,
}

impl ReplySink {
    /// Deliver a reply, best-effort — a vanished client is not an
    /// error.
    pub fn send(&self, id: u64, reply: ClientReply) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send((id, reply));
            }
            ReplySink::Conn(tx) => tx.send_reply(id, &reply),
            ReplySink::Http(tx) => tx.deliver(&reply),
            ReplySink::Null => {}
        }
    }
}

/// Everything that can arrive on a node's inbox.
#[derive(Debug)]
pub enum NodeEvent {
    /// A protocol message from another site.
    Peer {
        /// The sending site.
        from: SiteId,
        /// The message.
        msg: Message,
    },
    /// A client request with a correlation id and a reply path.
    Client {
        /// Client-chosen correlation id, echoed in the reply.
        id: u64,
        /// The requested operation.
        op: ClientOp,
        /// Where the reply goes.
        reply: ReplySink,
    },
    /// Stop the node thread (parked clients are failed with `Down`).
    Shutdown,
}

/// Wall-clock protocol deadlines for one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Coordinator: how long to wait for votes before deciding with
    /// whatever arrived. Only ever waited out when sites are down or
    /// partitioned away — with all peers reachable the coordinator
    /// decides on the last reply.
    pub vote_deadline: Duration,
    /// Coordinator: how long to wait for a catch-up reply before
    /// aborting.
    pub catchup_deadline: Duration,
    /// Prepared-subordinate retry schedule, in **milliseconds** (shared
    /// with the simulator via [`BackoffPolicy`]).
    pub backoff: BackoffPolicy,
    /// Seed for the jitter RNG (combined with the site id, so nodes
    /// jitter independently).
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            vote_deadline: Duration::from_millis(25),
            catchup_deadline: Duration::from_millis(50),
            backoff: BackoffPolicy::new(5.0, 80.0).with_jitter(0.1),
            seed: 0x00D1_5C0D,
        }
    }
}

/// The cluster-wide omniscient commit ledger: every coordinator records
/// its commits here, and divergence (two different payloads claiming
/// the same version number of the same object) or version gaps are
/// flagged immediately. One independent chain per object — commits on
/// different shards never order against each other. This is the
/// live-cluster analogue of the simulator's ledger — a checking device,
/// not part of the protocol.
#[derive(Debug)]
pub struct ClusterLedger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    /// Per-object payload chains; `chains[o][v - 1]` holds the payload
    /// committed at version `v` of object `o`.
    chains: Vec<Vec<u64>>,
    violations: Vec<String>,
}

impl ClusterLedger {
    /// A fresh, empty ledger tracking `objects` independent chains.
    #[must_use]
    pub fn new(objects: usize) -> Self {
        ClusterLedger {
            inner: Mutex::new(LedgerInner {
                chains: vec![Vec::new(); objects.max(1)],
                violations: Vec::new(),
            }),
        }
    }

    fn record(&self, site: SiteId, object: ObjectId, version: u64, payload: u64) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        let o = object.index();
        if o >= inner.chains.len() {
            inner
                .violations
                .push(format!("site {site} committed on unknown object {object}"));
            return;
        }
        let next = inner.chains[o].len() as u64 + 1;
        match version.cmp(&next) {
            Ordering::Equal => inner.chains[o].push(payload),
            Ordering::Less => {
                let existing = inner.chains[o][(version - 1) as usize];
                inner.violations.push(format!(
                    "site {site} re-committed {object} version {version} \
                     (payload {payload:#x}, chain has {existing:#x})"
                ));
            }
            Ordering::Greater => {
                inner.violations.push(format!(
                    "site {site} committed {object} version {version} but \
                     the chain only reaches {}",
                    next - 1
                ));
            }
        }
    }

    /// Number of versions committed cluster-wide, summed over every
    /// object's chain (including `Make_Current` restart commits).
    #[must_use]
    pub fn chain_len(&self) -> u64 {
        let inner = self.inner.lock().expect("ledger poisoned");
        inner.chains.iter().map(|c| c.len() as u64).sum()
    }

    /// Length of one object's chain (0 for an unknown object).
    #[must_use]
    pub fn chain_len_of(&self, object: ObjectId) -> u64 {
        let inner = self.inner.lock().expect("ledger poisoned");
        inner
            .chains
            .get(object.index())
            .map_or(0, |c| c.len() as u64)
    }

    /// All violations flagged so far (empty on a correct run).
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("ledger poisoned")
            .violations
            .clone()
    }

    /// Seed one object's chain from a recovered site's durable log, so
    /// a durable cluster rebooted from disk audits against the history
    /// its disks already hold rather than flagging the first
    /// post-reboot commit as a gap. Entries extend the chain exactly
    /// where they continue it; anything already covered is left for
    /// [`Self::check_log`] and [`Self::record`] to cross-check. Priming
    /// with every site's logs in any order converges on the longest
    /// recovered prefix per object.
    pub fn prime(&self, object: ObjectId, log: &[LogEntry]) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        let o = object.index();
        if o >= inner.chains.len() {
            return;
        }
        for entry in log {
            if entry.version == inner.chains[o].len() as u64 + 1 {
                inner.chains[o].push(entry.payload);
            }
        }
    }

    /// True if `log` is a gapless prefix of `object`'s global chain and
    /// `meta_version` matches its length — the paper's invariant for
    /// every copy.
    #[must_use]
    pub fn check_log(&self, object: ObjectId, log: &[LogEntry], meta_version: u64) -> bool {
        let inner = self.inner.lock().expect("ledger poisoned");
        let Some(chain) = inner.chains.get(object.index()) else {
            return false;
        };
        meta_version == log.len() as u64
            && log
                .iter()
                .enumerate()
                .all(|(i, e)| e.version == (i + 1) as u64 && chain.get(i) == Some(&e.payload))
    }
}

/// The verdict of a cluster-wide audit (see [`crate::Cluster::audit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Workload updates committed, summed over all coordinators
    /// (`Make_Current` restart commits excluded).
    pub commits: u64,
    /// Length of the global version chain (restart commits included).
    pub chain_len: u64,
    /// True if every site's durable log is a gapless prefix of the
    /// chain and no ledger violation was flagged.
    pub consistent: bool,
    /// Human-readable ledger violations (empty on a correct run).
    pub violations: Vec<String>,
}

/// Where (and how) one node keeps its durable state on disk.
#[derive(Debug, Clone)]
pub struct NodeDurability {
    /// This site's data directory (each site owns its own).
    pub dir: PathBuf,
    /// WAL fsync discipline and rotation threshold.
    pub store: StoreConfig,
}

pub(crate) struct PendingClient {
    pub(crate) id: u64,
    pub(crate) reply: ReplySink,
}

/// A live protocol site: the sharded kernels plus their wall-clock
/// surroundings. Consume with [`Node::run`] on a dedicated thread.
pub struct Node {
    pub(crate) id: SiteId,
    pub(crate) n: usize,
    pub(crate) objects: usize,
    pub(crate) algorithm: AlgorithmKind,
    /// The assembled shard map. `Some` until [`Node::run`] splits it
    /// into the worker pool's partitions (and transiently during a disk
    /// reboot, between restore and re-install).
    pub(crate) site: Option<ShardedSite>,
    /// `Some` when this node owns a data directory: every boot and
    /// every [`ClientOp::Recover`] reloads the kernels' durable state
    /// from disk instead of trusting process memory.
    pub(crate) durability: Option<NodeDurability>,
    /// The shared multi-object store behind every shard's persistence
    /// hook, kept so the merge barrier can issue the group-commit
    /// record and drive WAL rotation. `None` for amnesiac nodes.
    pub(crate) store: Option<Arc<Mutex<NodeStore>>>,
    /// The installed event sink, kept so a disk reboot can re-install
    /// it on the freshly restored kernel.
    pub(crate) sink: Option<Arc<dyn EventSink>>,
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) rx: Receiver<NodeEvent>,
    pub(crate) config: NodeConfig,
    pub(crate) ledger: Arc<ClusterLedger>,
    pub(crate) down: bool,
    pub(crate) reachable: SiteSet,
    /// Wall-clock protocol deadlines, in the shared [`TimerWheel`] (the
    /// simulator arms the same wheel under a virtual clock). Its epoch
    /// is bumped on every crash so timers armed before the crash are
    /// recognizably stale (volatile state they guard is gone).
    pub(crate) timers: TimerWheel<Instant, (TxnId, TimerKind)>,
    /// The cluster-shared counting sink, kept to answer
    /// [`ClientOp::Events`] with this site's tally row.
    pub(crate) events: Option<Arc<CountingSink>>,
    /// This node's reactor counters, kept to answer
    /// [`ClientOp::NetStats`]. `None` under the channel transport.
    pub(crate) net: Option<Arc<NetStats>>,
    /// How many shard-affine workers [`Node::run`] launches (1 = run
    /// kernels inline on the scheduler thread).
    pub(crate) shard_threads: usize,
    /// Most queued client updates one quorum round may seal as
    /// consecutive log entries (commit pipelining); `1` disables
    /// multi-op rounds entirely.
    pub(crate) max_batch: usize,
    /// The pool's observability counters, answering
    /// [`ClientOp::ShardStats`] and shared with the front door.
    pub(crate) shard_stats: Arc<ShardStats>,
    /// Per-worker WAL staging buffers (durable pools of more than one
    /// worker): each worker's persistence hooks encode keyed ops into
    /// its own stage, and the merge barrier drains them into the store
    /// in worker order — one record, one fsync, no store contention
    /// while kernels run.
    pub(crate) stages: Vec<Arc<Mutex<Vec<u8>>>>,
    /// Clients parked on in-flight transactions. A pipelined round
    /// carries many client ops, so one transaction parks a payload-
    /// ordered list; every entry is resolved (exactly once) when the
    /// transaction resolves.
    pub(crate) pending: HashMap<TxnId, Vec<PendingClient>>,
    pub(crate) restart_txns: HashSet<TxnId>,
    pub(crate) payload_seq: u64,
    pub(crate) commits: u64,
    pub(crate) rng: StdRng,
    /// Reusable merge buffer: every barrier collects the workers'
    /// staged actions here and dispatches them, so the steady-state
    /// loop allocates no per-batch `Vec<Action>`.
    pub(crate) merge_buf: Vec<Action>,
}

impl Node {
    /// Build the runtime for site `id` of an `n`-site cluster hosting
    /// `objects` independent replicated objects under `algorithm`,
    /// reading events from `rx` and sending through `transport`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: SiteId,
        n: usize,
        objects: usize,
        algorithm: AlgorithmKind,
        config: NodeConfig,
        transport: Box<dyn Transport>,
        rx: Receiver<NodeEvent>,
        ledger: Arc<ClusterLedger>,
    ) -> Self {
        let site = ShardedSite::new(id, n, objects, || algorithm.instantiate(n));
        let rng = StdRng::seed_from_u64(config.seed ^ (0x9E37 + u64::from(id.0)));
        Node {
            id,
            n,
            objects,
            algorithm,
            site: Some(site),
            durability: None,
            store: None,
            sink: None,
            transport,
            rx,
            config,
            ledger,
            down: false,
            reachable: SiteSet::all(n),
            timers: TimerWheel::new(),
            events: None,
            net: None,
            shard_threads: 1,
            max_batch: DEFAULT_MAX_BATCH,
            shard_stats: Arc::new(ShardStats::new(1)),
            stages: Vec::new(),
            pending: HashMap::new(),
            restart_txns: HashSet::new(),
            payload_seq: 0,
            commits: 0,
            rng,
            merge_buf: Vec::new(),
        }
    }

    /// Size the shard worker pool: `threads` workers (clamped to
    /// `1..=objects`), each exclusively owning the objects with
    /// `object % threads == worker`. One worker — the default — runs
    /// kernels inline on the scheduler thread, spawning no pool threads
    /// at all. Call before [`Node::run`]; if durability is already
    /// enabled the persistence hooks are re-installed so each shard
    /// stages WAL ops into its owner's buffer.
    pub fn set_shard_threads(&mut self, threads: usize) {
        let workers = threads.clamp(1, self.objects.max(1));
        self.shard_threads = workers;
        self.shard_stats = Arc::new(ShardStats::new(workers));
        self.stages = if workers > 1 {
            (0..workers)
                .map(|_| Arc::new(Mutex::new(Vec::new())))
                .collect()
        } else {
            Vec::new()
        };
        if self.store.is_some() {
            self.install_persistence();
        }
    }

    /// The worker pool's observability counters (shared with the front
    /// door for `/metrics`).
    #[must_use]
    pub fn shard_stats(&self) -> Arc<ShardStats> {
        Arc::clone(&self.shard_stats)
    }

    /// Cap how many queued client updates one quorum round may seal
    /// (clamped to at least 1). Call before [`Node::run`].
    pub fn set_max_batch(&mut self, max_batch: usize) {
        self.max_batch = max_batch.max(1);
    }

    /// Give this node a data directory: recover every hosted object's
    /// durable state from it (snapshot + keyed WAL replay) and install
    /// per-shard handles onto the shared [`NodeStore`] as each kernel's
    /// [`dynvote_protocol::Persistence`] hook, so every durable-write
    /// point (prepare records, commit records, log appends, metadata
    /// installs) reaches the WAL before the action that announced it
    /// leaves the node.
    ///
    /// Call before [`Node::run`]. Returns what recovery found.
    pub fn enable_durability(
        &mut self,
        durability: NodeDurability,
    ) -> Result<RecoveryReport, StorageError> {
        self.durability = Some(durability);
        self.reload_site_from_disk()
    }

    /// (Re)build the sharded kernel from the data directory: recover
    /// every object's durable state (snapshot + keyed WAL replay),
    /// swap the fresh site in, and hook persistence and the event sink
    /// back up. The in-process stand-in for a machine reboot.
    pub(crate) fn reload_site_from_disk(&mut self) -> Result<RecoveryReport, StorageError> {
        let durability = self.durability.clone().expect("durability configured");
        let (store, states, report) = NodeStore::open(
            &durability.dir,
            durability.store,
            self.objects,
            DurableState::initial(self.n),
        )?;
        let mut site = ShardedSite::restore(self.id, self.n, states, || {
            self.algorithm.instantiate(self.n)
        });
        if let Some(sink) = &self.sink {
            site.set_sink(Arc::clone(sink));
        }
        self.site = Some(site);
        self.store = Some(Arc::new(Mutex::new(store)));
        self.install_persistence();
        Ok(report)
    }

    /// Hook every shard's persistence up to the store: direct
    /// [`ShardHandle`]s with one worker (ops land straight in the
    /// store's pending record), per-worker [`StagedHandle`]s otherwise
    /// (ops land in the owning worker's stage, drained at the merge
    /// barrier). Both preserve the single checksummed record per
    /// barrier.
    fn install_persistence(&mut self) {
        let Some(core) = self.store.clone() else {
            return;
        };
        let stages = self.stages.clone();
        let Some(site) = self.site.as_mut() else {
            return;
        };
        if stages.is_empty() {
            site.set_persistence(|object| Box::new(ShardHandle::new(Arc::clone(&core), object)));
        } else {
            site.set_persistence(|object| {
                let stage = Arc::clone(&stages[object.index() % stages.len()]);
                Box::new(StagedHandle::new(stage, Arc::clone(&core), object))
            });
        }
    }

    /// True when this node reloads state from a data directory.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// One object's durable committed log (what recovery
    /// reconstructed, for a freshly booted durable node). Used to prime
    /// the cluster ledger's per-object chains before the first
    /// post-reboot commit. Empty for unhosted objects.
    #[must_use]
    pub fn recovered_log(&self, object: ObjectId) -> &[LogEntry] {
        self.site
            .as_ref()
            .and_then(|site| site.shard(object))
            .map_or(&[], |shard| &shard.durable().log)
    }

    /// Install the cluster-shared event sink: every protocol event the
    /// kernel emits is counted per site (and, with `trace`, rendered to
    /// stderr as it happens). Must be called before [`Node::run`].
    pub fn set_event_sink(&mut self, counting: Arc<CountingSink>, trace: bool) {
        let sink: Arc<dyn EventSink> = if trace {
            Arc::new(FanoutSink::new(vec![
                counting.clone() as Arc<dyn EventSink>,
                Arc::new(RenderSink),
            ]))
        } else {
            counting.clone()
        };
        if let Some(site) = self.site.as_mut() {
            site.set_sink(Arc::clone(&sink));
        }
        self.sink = Some(sink);
        self.events = Some(counting);
    }

    /// Share the node's reactor counters so [`ClientOp::NetStats`] can
    /// report them. Called by cluster boot under the TCP transport.
    pub fn set_net_stats(&mut self, stats: Arc<NetStats>) {
        self.net = Some(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accepts_the_chain_and_flags_divergence() {
        let ledger = ClusterLedger::new(1);
        let o = ObjectId::ZERO;
        ledger.record(SiteId(0), o, 1, 0x10);
        ledger.record(SiteId(1), o, 2, 0x20);
        assert_eq!(ledger.chain_len(), 2);
        assert!(ledger.violations().is_empty());

        ledger.record(SiteId(2), o, 2, 0x99); // divergent re-commit
        ledger.record(SiteId(3), o, 9, 0x30); // gap
        let violations = ledger.violations();
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("version 2"));
        assert!(violations[1].contains("version 9"));
    }

    #[test]
    fn ledger_checks_logs_as_gapless_prefixes() {
        let ledger = ClusterLedger::new(1);
        let o = ObjectId::ZERO;
        ledger.record(SiteId(0), o, 1, 0x10);
        ledger.record(SiteId(0), o, 2, 0x20);
        let full = [
            LogEntry {
                version: 1,
                payload: 0x10,
            },
            LogEntry {
                version: 2,
                payload: 0x20,
            },
        ];
        assert!(ledger.check_log(o, &full, 2));
        assert!(ledger.check_log(o, &full[..1], 1)); // stale prefix is fine
        assert!(!ledger.check_log(o, &full, 1)); // meta out of step
        let diverged = [LogEntry {
            version: 1,
            payload: 0x99,
        }];
        assert!(!ledger.check_log(o, &diverged, 1));
    }

    #[test]
    fn ledger_chains_are_independent_per_object() {
        let ledger = ClusterLedger::new(3);
        // Version 1 of three different objects: three independent
        // chains, no gaps, no divergence.
        ledger.record(SiteId(0), ObjectId(0), 1, 0xA0);
        ledger.record(SiteId(1), ObjectId(1), 1, 0xB0);
        ledger.record(SiteId(2), ObjectId(2), 1, 0xC0);
        assert!(ledger.violations().is_empty());
        assert_eq!(ledger.chain_len(), 3);
        assert_eq!(ledger.chain_len_of(ObjectId(1)), 1);

        // Same payload at the same version of two objects is fine —
        // but a second version-1 commit on object 1 diverges.
        ledger.record(SiteId(0), ObjectId(1), 1, 0xB1);
        assert_eq!(ledger.violations().len(), 1);

        // A commit on an object the ledger does not track is flagged.
        ledger.record(SiteId(0), ObjectId(9), 1, 0xD0);
        assert_eq!(ledger.violations().len(), 2);

        // check_log keys by object: object 0's log does not validate
        // against object 1's chain.
        let log = [LogEntry {
            version: 1,
            payload: 0xA0,
        }];
        assert!(ledger.check_log(ObjectId(0), &log, 1));
        assert!(!ledger.check_log(ObjectId(1), &log, 1));
    }

    #[test]
    fn ledger_primes_per_object() {
        let ledger = ClusterLedger::new(2);
        let log0 = [
            LogEntry {
                version: 1,
                payload: 0x10,
            },
            LogEntry {
                version: 2,
                payload: 0x20,
            },
        ];
        let log1 = [LogEntry {
            version: 1,
            payload: 0x99,
        }];
        ledger.prime(ObjectId(0), &log0);
        ledger.prime(ObjectId(1), &log1);
        assert_eq!(ledger.chain_len_of(ObjectId(0)), 2);
        assert_eq!(ledger.chain_len_of(ObjectId(1)), 1);
        // Post-prime commits continue each chain where its log left off.
        ledger.record(SiteId(0), ObjectId(0), 3, 0x30);
        ledger.record(SiteId(1), ObjectId(1), 2, 0xAA);
        assert!(ledger.violations().is_empty());
    }
}
