//! The shard-affine worker pool: N workers, each exclusively owning the
//! objects with `object % N == worker`, plus the counters that make the
//! pool observable.
//!
//! Ownership is the synchronization: an object's `SiteActor` lives
//! inside exactly one worker's [`WorkerGroup`], so every kernel stays
//! single-threaded and lock-free exactly as in the one-thread runtime.
//! The scheduler classifies each inbox event by `ObjectId`
//! ([`WorkItem::object`]) and enqueues it on the owning worker; workers
//! drain their queues and run the kernels into their own scratch
//! `ActionSink`s; the merge barrier (`node/merge.rs`) waits for every
//! queue to drain, locks every group, and combines the staged results
//! behind one WAL record and one transport flush.
//!
//! With one worker the pool spawns no threads at all: [`ShardPool::dispatch`]
//! runs the kernel inline under an uncontended mutex, so the default
//! configuration keeps the original single-threaded runtime's costs.

use crate::node::ReplySink;
use dynvote_core::SiteId;
use dynvote_protocol::{Action, Message, ObjectId, ShardPartition, ShardedSite, TimerKind, TxnId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Worker-pool counters in the style of [`crate::NetStats`]: relaxed
/// atomics bumped on the hot path, snapshotted wholesale for loadgen
/// reports and the front door's `/metrics`.
#[derive(Debug)]
pub struct ShardStats {
    /// Work items handed to each worker since launch.
    dispatched: Vec<AtomicU64>,
    /// High-water mark of each worker's queue depth (always 0 with one
    /// worker: dispatch runs inline, nothing ever queues).
    queue_peak: Vec<AtomicU64>,
    /// Merge barriers executed.
    merge_barriers: AtomicU64,
    /// Total nanoseconds the scheduler spent in `wait_idle` blocking on
    /// workers at merge barriers.
    merge_wait_ns: AtomicU64,
    /// High-water mark of any single object's pending-op queue inside
    /// each worker (the commit-pipelining FIFO, not the work-item
    /// queue above).
    pipeline_queue_peak: Vec<AtomicU64>,
    /// Histogram of quorum-round batch sizes: how many client updates
    /// each `start_update_batch` round sealed, bucketed by
    /// [`Self::BATCH_BUCKETS`].
    batch_sizes: Vec<AtomicU64>,
}

impl ShardStats {
    /// Upper bounds of the batch-size histogram buckets (the last
    /// bucket is open-ended: every batch larger than 64 ops).
    pub const BATCH_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, u64::MAX];

    /// Fresh counters for a pool of `workers`.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        ShardStats {
            dispatched: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            queue_peak: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            merge_barriers: AtomicU64::new(0),
            merge_wait_ns: AtomicU64::new(0),
            pipeline_queue_peak: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            batch_sizes: Self::BATCH_BUCKETS
                .iter()
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// The pool size these counters describe.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.dispatched.len()
    }

    fn note_dispatch(&self, worker: usize) {
        self.dispatched[worker].fetch_add(1, Ordering::Relaxed);
    }

    fn note_queue_depth(&self, worker: usize, depth: u64) {
        self.queue_peak[worker].fetch_max(depth, Ordering::Relaxed);
    }

    fn note_merge(&self, wait_ns: u64) {
        self.merge_barriers.fetch_add(1, Ordering::Relaxed);
        self.merge_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    fn note_pipeline_depth(&self, worker: usize, depth: u64) {
        self.pipeline_queue_peak[worker].fetch_max(depth, Ordering::Relaxed);
    }

    fn note_batch(&self, ops: u64) {
        let bucket = Self::BATCH_BUCKETS
            .iter()
            .position(|&hi| ops <= hi)
            .unwrap_or(Self::BATCH_BUCKETS.len() - 1);
        self.batch_sizes[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// One row of counters, in [`Self::names`] order:
    /// `[dispatched(0..W), queue_peak(0..W), merge_barriers,
    /// merge_wait_ns, pipeline_queue_peak(0..W), batch_sizes(8)]` —
    /// the pipelining counters are appended after the pre-pipelining
    /// layout so old readers' indices stay valid.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        let mut counts = Vec::with_capacity(3 * self.workers() + 2 + self.batch_sizes.len());
        counts.extend(self.dispatched.iter().map(|c| c.load(Ordering::Relaxed)));
        counts.extend(self.queue_peak.iter().map(|c| c.load(Ordering::Relaxed)));
        counts.push(self.merge_barriers.load(Ordering::Relaxed));
        counts.push(self.merge_wait_ns.load(Ordering::Relaxed));
        counts.extend(
            self.pipeline_queue_peak
                .iter()
                .map(|c| c.load(Ordering::Relaxed)),
        );
        counts.extend(self.batch_sizes.iter().map(|c| c.load(Ordering::Relaxed)));
        counts
    }

    /// Counter names matching [`Self::snapshot`] positions, for JSON
    /// reports.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        Self::names_for(self.workers())
    }

    /// [`Self::names`] for a pool of `workers` threads, without an
    /// instance — wire clients only learn the worker count from the
    /// `ShardStats` reply and must reconstruct the layout themselves.
    #[must_use]
    pub fn names_for(workers: usize) -> Vec<String> {
        let mut names = Vec::with_capacity(3 * workers + 2 + Self::BATCH_BUCKETS.len());
        for w in 0..workers {
            names.push(format!("shard_worker{w}_dispatched"));
        }
        for w in 0..workers {
            names.push(format!("shard_worker{w}_queue_peak"));
        }
        names.push("shard_merge_barriers".to_string());
        names.push("shard_merge_wait_ns".to_string());
        for w in 0..workers {
            names.push(format!("pipeline_queue_peak_w{w}"));
        }
        for &hi in &Self::BATCH_BUCKETS {
            if hi == u64::MAX {
                names.push("pipeline_batch_gt64".to_string());
            } else {
                names.push(format!("pipeline_batch_le{hi}"));
            }
        }
        names
    }
}

/// One unit of shard work, classified by the scheduler thread and run
/// by the worker owning [`WorkItem::object`].
#[derive(Debug)]
pub(crate) enum WorkItem {
    /// A protocol message from another site (keyed by its transaction's
    /// object).
    Peer {
        /// The sending site.
        from: SiteId,
        /// The message.
        msg: Message,
    },
    /// Start a client update; the started transaction is recorded in
    /// [`WorkerGroup::starts`] so the merge can park the client on it.
    Update {
        /// The object to update.
        object: ObjectId,
        /// The cluster-unique payload the scheduler assigned.
        payload: u64,
        /// Client correlation id.
        id: u64,
        /// Where the eventual reply goes.
        reply: ReplySink,
    },
    /// Start a client read-only request.
    Read {
        /// The object to read.
        object: ObjectId,
        /// Client correlation id.
        id: u64,
        /// Where the eventual reply goes.
        reply: ReplySink,
    },
    /// A due wall-clock protocol timer.
    Timer {
        /// The transaction the timer guards.
        txn: TxnId,
        /// Which deadline fired.
        kind: TimerKind,
    },
    /// Run the Section V-C restart protocol (`Make_Current`) on one
    /// object; a started restart transaction lands in
    /// [`WorkerGroup::restarts`] so its commit is booked as restart
    /// traffic, not workload.
    Recover {
        /// The object to recover.
        object: ObjectId,
        /// The restart transaction's payload.
        payload: u64,
    },
}

impl WorkItem {
    /// The object this item addresses — what decides the owning worker.
    fn object(&self) -> ObjectId {
        match self {
            WorkItem::Peer { msg, .. } => msg.txn().object,
            WorkItem::Timer { txn, .. } => txn.object,
            WorkItem::Update { object, .. }
            | WorkItem::Read { object, .. }
            | WorkItem::Recover { object, .. } => *object,
        }
    }
}

/// One client op parked in an object's commit-pipelining FIFO, waiting
/// for the object's lock to free.
#[derive(Debug)]
enum QueuedOp {
    /// An update carrying its scheduler-assigned payload.
    Update {
        payload: u64,
        id: u64,
        reply: ReplySink,
    },
    /// A read-only request (never batched with updates — it runs its
    /// own round — but it keeps its FIFO position).
    Read { id: u64, reply: ReplySink },
}

/// Bound on one object's pending-op queue. An op arriving beyond it is
/// refused with the typed `Overloaded` reply instead of queueing
/// without bound — the front door surfaces that as `429 Retry-After`.
pub(crate) const PER_OBJECT_QUEUE_LIMIT: usize = 1024;

/// The client ops riding one started round, in payload order: the op id
/// plus where its reply goes.
pub(crate) type RoundClients = Vec<(u64, ReplySink)>;

/// Everything one worker owns: its shard partition plus the in-progress
/// batch's staged results. Locked by the worker while draining its
/// queue and by the merge barrier (after [`ShardPool::wait_idle`]) to
/// collect — never both at once, so the mutex is uncontended.
#[derive(Debug)]
pub(crate) struct WorkerGroup {
    /// The shards this worker exclusively owns.
    pub(crate) part: ShardPartition,
    /// This worker's staged actions for the in-progress batch.
    pub(crate) scratch: Vec<Action>,
    /// Rounds started this batch: the transaction plus every client op
    /// it carries, in payload order — one entry per read round, one per
    /// update batch. `txn` is `None` when the kernel refused to start
    /// anything (answered `Busy` at merge time).
    pub(crate) starts: Vec<(Option<TxnId>, RoundClients)>,
    /// Ops refused at the per-object queue bound this batch (answered
    /// `Overloaded` at merge time).
    pub(crate) overflows: RoundClients,
    /// `Make_Current` transactions started by `Recover` items this
    /// batch.
    pub(crate) restarts: Vec<TxnId>,
    /// Per-object pending-op FIFOs: ops that arrived while the object's
    /// lock was held, drained up to `max_batch` at a time into one
    /// quorum round whenever the lock frees.
    queues: HashMap<ObjectId, VecDeque<QueuedOp>>,
    /// Most queued updates one quorum round may seal.
    max_batch: usize,
    /// This group's index in the pool, for the stats row.
    worker: usize,
    stats: Arc<ShardStats>,
}

impl WorkerGroup {
    /// Park one op on its object's FIFO, refusing at the bound.
    fn enqueue(&mut self, object: ObjectId, op: QueuedOp) {
        let queue = self.queues.entry(object).or_default();
        if queue.len() >= PER_OBJECT_QUEUE_LIMIT {
            let (id, reply) = match op {
                QueuedOp::Update { id, reply, .. } | QueuedOp::Read { id, reply } => (id, reply),
            };
            self.overflows.push((id, reply));
            return;
        }
        queue.push_back(op);
        self.stats
            .note_pipeline_depth(self.worker, queue.len() as u64);
    }

    /// Fail every queued op, returning the `(id, reply)` pairs for the
    /// caller to answer (crash and shutdown paths).
    pub(crate) fn fail_queued(&mut self) -> RoundClients {
        let mut failed = Vec::new();
        for (_, queue) in self.queues.iter_mut() {
            for op in queue.drain(..) {
                match op {
                    QueuedOp::Update { id, reply, .. } | QueuedOp::Read { id, reply } => {
                        failed.push((id, reply));
                    }
                }
            }
        }
        failed
    }
}

/// Run one item against the group's partition, staging actions into its
/// scratch. The only code that touches kernels — on the owning worker
/// thread, or inline on the scheduler with one worker. Client updates
/// and reads are parked on their object's FIFO first; after every item
/// the object's queue is pumped, so an op on an idle object starts its
/// round immediately (no batching latency tax) while ops that arrived
/// under a held lock drain in one multi-op round the moment it frees.
pub(crate) fn process_item(group: &mut WorkerGroup, item: WorkItem) {
    let object = item.object();
    match item {
        WorkItem::Peer { from, msg } => {
            // Unhosted or foreign-partition objects are dropped, not
            // panicked on: a misrouted frame must not kill the worker.
            group.part.handle_message(from, msg, &mut group.scratch);
        }
        WorkItem::Update {
            object,
            payload,
            id,
            reply,
        } => {
            group.enqueue(object, QueuedOp::Update { payload, id, reply });
        }
        WorkItem::Read { object, id, reply } => {
            group.enqueue(object, QueuedOp::Read { id, reply });
        }
        WorkItem::Timer { txn, kind } => {
            group.part.timer_fired(txn, kind, &mut group.scratch);
        }
        WorkItem::Recover { object, payload } => {
            let start = group.scratch.len();
            group.part.recover(object, payload, &mut group.scratch);
            // Tag the Make_Current transaction (if one started) so the
            // merge books its commit as restart traffic.
            for action in &group.scratch[start..] {
                if let Action::Broadcast {
                    msg: Message::VoteRequest { txn },
                } = action
                {
                    group.restarts.push(*txn);
                }
            }
        }
    }
    pump(group, object);
}

/// Drain `object`'s pending-op FIFO into quorum rounds while its lock
/// is free: a head-of-queue read runs alone (reads cannot share an
/// update's log append); a head-of-queue update takes every
/// consecutively queued update behind it — up to `max_batch` — into
/// ONE vote/commit round via `start_update_batch`. The loop keeps
/// going because a round can resolve synchronously (single-site
/// views, immediate refusals); normally the freshly taken lock ends
/// it after one round.
fn pump(group: &mut WorkerGroup, object: ObjectId) {
    loop {
        if !group
            .queues
            .get(&object)
            .is_some_and(|queue| !queue.is_empty())
        {
            return;
        }
        let unlocked = group
            .part
            .shard(object)
            .is_some_and(|shard| !shard.is_locked());
        if !unlocked {
            return;
        }
        let queue = group.queues.get_mut(&object).expect("checked non-empty");
        if matches!(queue.front(), Some(QueuedOp::Read { .. })) {
            let Some(QueuedOp::Read { id, reply }) = queue.pop_front() else {
                unreachable!("front checked as read");
            };
            let start = group.scratch.len();
            group.part.start_read(object, &mut group.scratch);
            let txn = txn_started(&group.scratch[start..]);
            group.starts.push((txn, vec![(id, reply)]));
            continue;
        }
        // A run of consecutive updates, in FIFO (= payload-assignment)
        // order, capped by the adaptive batch bound.
        let mut payloads = Vec::new();
        let mut clients = Vec::new();
        while payloads.len() < group.max_batch {
            match queue.front() {
                Some(QueuedOp::Update { .. }) => {
                    let Some(QueuedOp::Update { payload, id, reply }) = queue.pop_front() else {
                        unreachable!("front checked as update");
                    };
                    payloads.push(payload);
                    clients.push((id, reply));
                }
                _ => break,
            }
        }
        let txn = group
            .part
            .start_update_batch(object, &payloads, &mut group.scratch);
        group.stats.note_batch(payloads.len() as u64);
        group.starts.push((txn, clients));
    }
}

/// The transaction a client request started, found by scanning the
/// actions the kernel just staged — the kernel does not return the
/// `TxnId` directly. `None` means the kernel refused.
fn txn_started(staged: &[Action]) -> Option<TxnId> {
    staged.iter().find_map(|action| match action {
        Action::Broadcast {
            msg: Message::VoteRequest { txn },
        }
        | Action::Resolved { txn, .. }
        | Action::SetTimer { txn, .. } => Some(*txn),
        _ => None,
    })
}

#[derive(Debug, Default)]
struct Queue {
    items: VecDeque<WorkItem>,
    closed: bool,
}

/// The scheduler <-> worker rendezvous for one worker.
#[derive(Debug)]
struct WorkerShared {
    queue: Mutex<Queue>,
    work_cv: Condvar,
    /// Items fully processed; [`ShardPool::wait_idle`] compares this
    /// against the pool's per-worker submission counter.
    completed: Mutex<u64>,
    done_cv: Condvar,
    group: Mutex<WorkerGroup>,
}

/// A worker thread's body: sleep until items arrive, drain the whole
/// burst in one queue-lock acquisition, run the kernels under the group
/// lock only, then publish the completion count for the merge barrier.
fn worker_loop(shared: &WorkerShared) {
    loop {
        let mut queue = shared.queue.lock().expect("shard queue poisoned");
        while queue.items.is_empty() && !queue.closed {
            queue = shared.work_cv.wait(queue).expect("shard queue poisoned");
        }
        if queue.items.is_empty() {
            return; // closed and fully drained
        }
        let batch: Vec<WorkItem> = queue.items.drain(..).collect();
        drop(queue);
        let done = batch.len() as u64;
        {
            let mut group = shared.group.lock().expect("shard group poisoned");
            for item in batch {
                process_item(&mut group, item);
            }
        }
        *shared.completed.lock().expect("shard counter poisoned") += done;
        shared.done_cv.notify_all();
    }
}

/// The node's worker pool: the per-worker rendezvous structures, the
/// spawned threads (none with one worker), and the submission counters
/// the merge barrier compares against. Owned by the scheduler for the
/// lifetime of [`super::Node::run`].
pub(crate) struct ShardPool {
    workers: usize,
    shareds: Vec<Arc<WorkerShared>>,
    /// Items enqueued per worker since launch. Scheduler-private — the
    /// scheduler is the only dispatcher — so no atomics needed.
    submitted: Vec<u64>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<ShardStats>,
}

impl ShardPool {
    /// Partition `sharded` across `workers` groups and, for pools of
    /// more than one worker, spawn the worker threads
    /// (`dynvote-shard-<site>-<worker>`).
    pub(crate) fn launch(
        site: SiteId,
        sharded: ShardedSite,
        workers: usize,
        stats: Arc<ShardStats>,
        max_batch: usize,
    ) -> Self {
        let shareds: Vec<Arc<WorkerShared>> = sharded
            .into_partitions(workers)
            .into_iter()
            .enumerate()
            .map(|(w, part)| {
                Arc::new(WorkerShared {
                    queue: Mutex::new(Queue::default()),
                    work_cv: Condvar::new(),
                    completed: Mutex::new(0),
                    done_cv: Condvar::new(),
                    group: Mutex::new(WorkerGroup {
                        part,
                        scratch: Vec::new(),
                        starts: Vec::new(),
                        overflows: Vec::new(),
                        restarts: Vec::new(),
                        queues: HashMap::new(),
                        max_batch: max_batch.max(1),
                        worker: w,
                        stats: Arc::clone(&stats),
                    }),
                })
            })
            .collect();
        let handles = if workers > 1 {
            shareds
                .iter()
                .enumerate()
                .map(|(w, shared)| {
                    let shared = Arc::clone(shared);
                    thread::Builder::new()
                        .name(format!("dynvote-shard-{}-{w}", site.0))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn shard worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        ShardPool {
            workers,
            shareds,
            submitted: vec![0; workers],
            handles,
            stats,
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// The worker owning `object` under the static partition.
    pub(crate) fn owner_of(&self, object: ObjectId) -> usize {
        object.index() % self.workers
    }

    /// Hand one item to its owning worker: inline (no threads, no
    /// queueing) with one worker, queued behind the worker's condvar
    /// otherwise.
    pub(crate) fn dispatch(&mut self, item: WorkItem) {
        let w = self.owner_of(item.object());
        self.stats.note_dispatch(w);
        if self.handles.is_empty() {
            let mut group = self.shareds[w].group.lock().expect("shard group poisoned");
            process_item(&mut group, item);
            return;
        }
        let depth = {
            let mut queue = self.shareds[w].queue.lock().expect("shard queue poisoned");
            queue.items.push_back(item);
            queue.items.len() as u64
        };
        self.submitted[w] += 1;
        self.stats.note_queue_depth(w, depth);
        self.shareds[w].work_cv.notify_one();
    }

    /// The merge barrier's first half: block until every worker has
    /// processed everything dispatched to it, recording how long the
    /// scheduler waited.
    pub(crate) fn wait_idle(&self) {
        if self.handles.is_empty() {
            self.stats.note_merge(0);
            return;
        }
        let start = Instant::now();
        for (w, shared) in self.shareds.iter().enumerate() {
            let mut completed = shared.completed.lock().expect("shard counter poisoned");
            while *completed < self.submitted[w] {
                completed = shared
                    .done_cv
                    .wait(completed)
                    .expect("shard counter poisoned");
            }
        }
        self.stats.note_merge(start.elapsed().as_nanos() as u64);
    }

    /// Lock every worker's group, in worker order. Callers must have
    /// drained the pool first ([`Self::wait_idle`]); the scheduler is
    /// the only dispatcher, so nothing new arrives while the guards are
    /// held.
    pub(crate) fn lock_groups(&self) -> Vec<MutexGuard<'_, WorkerGroup>> {
        self.shareds
            .iter()
            .map(|s| s.group.lock().expect("shard group poisoned"))
            .collect()
    }

    /// Replace every worker's partition with a freshly restored site's
    /// — a disk reboot under `ClientOp::Recover`.
    pub(crate) fn install(&self, sharded: ShardedSite) {
        let parts = sharded.into_partitions(self.workers);
        for (shared, part) in self.shareds.iter().zip(parts) {
            shared.group.lock().expect("shard group poisoned").part = part;
        }
    }

    /// Close every queue and join every worker thread. The scheduler
    /// merges first, so queues are already empty; `closed` makes the
    /// drain-then-exit handshake race-free regardless.
    pub(crate) fn shutdown(self) {
        for shared in &self.shareds {
            shared.queue.lock().expect("shard queue poisoned").closed = true;
            shared.work_cv.notify_all();
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_layout_matches_names() {
        let stats = ShardStats::new(2);
        stats.note_dispatch(1);
        stats.note_queue_depth(0, 5);
        stats.note_merge(120);
        stats.note_pipeline_depth(1, 4);
        stats.note_batch(3);
        let names = stats.names();
        let counts = stats.snapshot();
        assert_eq!(names.len(), counts.len());
        // The pre-pipelining prefix keeps its exact positions so old
        // readers' indices stay valid...
        assert_eq!(names[0], "shard_worker0_dispatched");
        assert_eq!(names[2], "shard_worker0_queue_peak");
        assert_eq!(names[4], "shard_merge_barriers");
        assert_eq!(names[5], "shard_merge_wait_ns");
        assert_eq!(&counts[..6], &[0, 1, 5, 0, 1, 120]);
        // ...and the pipelining counters are appended after it.
        assert_eq!(names[6], "pipeline_queue_peak_w0");
        assert_eq!(names[7], "pipeline_queue_peak_w1");
        assert_eq!(names[8], "pipeline_batch_le1");
        assert_eq!(names[10], "pipeline_batch_le4");
        assert_eq!(names[15], "pipeline_batch_gt64");
        assert_eq!(&counts[6..8], &[0, 4]);
        assert_eq!(&counts[8..], &[0, 0, 1, 0, 0, 0, 0, 0]); // 3 ops → le4
    }

    #[test]
    fn queue_peak_is_a_high_water_mark() {
        let stats = ShardStats::new(1);
        stats.note_queue_depth(0, 7);
        stats.note_queue_depth(0, 3);
        assert_eq!(stats.snapshot()[1], 7);
        stats.note_queue_depth(0, 9);
        assert_eq!(stats.snapshot()[1], 9);
    }

    #[test]
    fn batch_sizes_land_in_their_buckets() {
        let stats = ShardStats::new(1);
        for ops in [1, 1, 2, 5, 64, 65, 1000] {
            stats.note_batch(ops);
        }
        let counts = stats.snapshot();
        // Layout for W=1: [disp, qp, mb, mwns, pqp, buckets(8)].
        let buckets = &counts[5..];
        assert_eq!(buckets, &[2, 1, 0, 1, 0, 0, 1, 2]);
    }
}
