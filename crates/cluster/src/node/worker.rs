//! The shard-affine worker pool: N workers, each exclusively owning the
//! objects with `object % N == worker`, plus the counters that make the
//! pool observable.
//!
//! Ownership is the synchronization: an object's `SiteActor` lives
//! inside exactly one worker's [`WorkerGroup`], so every kernel stays
//! single-threaded and lock-free exactly as in the one-thread runtime.
//! The scheduler classifies each inbox event by `ObjectId`
//! ([`WorkItem::object`]) and enqueues it on the owning worker; workers
//! drain their queues and run the kernels into their own scratch
//! `ActionSink`s; the merge barrier (`node/merge.rs`) waits for every
//! queue to drain, locks every group, and combines the staged results
//! behind one WAL record and one transport flush.
//!
//! With one worker the pool spawns no threads at all: [`ShardPool::dispatch`]
//! runs the kernel inline under an uncontended mutex, so the default
//! configuration keeps the original single-threaded runtime's costs.

use crate::node::ReplySink;
use dynvote_core::SiteId;
use dynvote_protocol::{Action, Message, ObjectId, ShardPartition, ShardedSite, TimerKind, TxnId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Worker-pool counters in the style of [`crate::NetStats`]: relaxed
/// atomics bumped on the hot path, snapshotted wholesale for loadgen
/// reports and the front door's `/metrics`.
#[derive(Debug)]
pub struct ShardStats {
    /// Work items handed to each worker since launch.
    dispatched: Vec<AtomicU64>,
    /// High-water mark of each worker's queue depth (always 0 with one
    /// worker: dispatch runs inline, nothing ever queues).
    queue_peak: Vec<AtomicU64>,
    /// Merge barriers executed.
    merge_barriers: AtomicU64,
    /// Total nanoseconds the scheduler spent in `wait_idle` blocking on
    /// workers at merge barriers.
    merge_wait_ns: AtomicU64,
}

impl ShardStats {
    /// Fresh counters for a pool of `workers`.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        ShardStats {
            dispatched: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            queue_peak: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            merge_barriers: AtomicU64::new(0),
            merge_wait_ns: AtomicU64::new(0),
        }
    }

    /// The pool size these counters describe.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.dispatched.len()
    }

    fn note_dispatch(&self, worker: usize) {
        self.dispatched[worker].fetch_add(1, Ordering::Relaxed);
    }

    fn note_queue_depth(&self, worker: usize, depth: u64) {
        self.queue_peak[worker].fetch_max(depth, Ordering::Relaxed);
    }

    fn note_merge(&self, wait_ns: u64) {
        self.merge_barriers.fetch_add(1, Ordering::Relaxed);
        self.merge_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// One row of counters, in [`Self::names`] order:
    /// `[dispatched(0..W), queue_peak(0..W), merge_barriers,
    /// merge_wait_ns]`.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        let mut counts = Vec::with_capacity(2 * self.workers() + 2);
        counts.extend(self.dispatched.iter().map(|c| c.load(Ordering::Relaxed)));
        counts.extend(self.queue_peak.iter().map(|c| c.load(Ordering::Relaxed)));
        counts.push(self.merge_barriers.load(Ordering::Relaxed));
        counts.push(self.merge_wait_ns.load(Ordering::Relaxed));
        counts
    }

    /// Counter names matching [`Self::snapshot`] positions, for JSON
    /// reports.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        Self::names_for(self.workers())
    }

    /// [`Self::names`] for a pool of `workers` threads, without an
    /// instance — wire clients only learn the worker count from the
    /// `ShardStats` reply and must reconstruct the layout themselves.
    #[must_use]
    pub fn names_for(workers: usize) -> Vec<String> {
        let mut names = Vec::with_capacity(2 * workers + 2);
        for w in 0..workers {
            names.push(format!("shard_worker{w}_dispatched"));
        }
        for w in 0..workers {
            names.push(format!("shard_worker{w}_queue_peak"));
        }
        names.push("shard_merge_barriers".to_string());
        names.push("shard_merge_wait_ns".to_string());
        names
    }
}

/// One unit of shard work, classified by the scheduler thread and run
/// by the worker owning [`WorkItem::object`].
#[derive(Debug)]
pub(crate) enum WorkItem {
    /// A protocol message from another site (keyed by its transaction's
    /// object).
    Peer {
        /// The sending site.
        from: SiteId,
        /// The message.
        msg: Message,
    },
    /// Start a client update; the started transaction is recorded in
    /// [`WorkerGroup::starts`] so the merge can park the client on it.
    Update {
        /// The object to update.
        object: ObjectId,
        /// The cluster-unique payload the scheduler assigned.
        payload: u64,
        /// Client correlation id.
        id: u64,
        /// Where the eventual reply goes.
        reply: ReplySink,
    },
    /// Start a client read-only request.
    Read {
        /// The object to read.
        object: ObjectId,
        /// Client correlation id.
        id: u64,
        /// Where the eventual reply goes.
        reply: ReplySink,
    },
    /// A due wall-clock protocol timer.
    Timer {
        /// The transaction the timer guards.
        txn: TxnId,
        /// Which deadline fired.
        kind: TimerKind,
    },
    /// Run the Section V-C restart protocol (`Make_Current`) on one
    /// object; a started restart transaction lands in
    /// [`WorkerGroup::restarts`] so its commit is booked as restart
    /// traffic, not workload.
    Recover {
        /// The object to recover.
        object: ObjectId,
        /// The restart transaction's payload.
        payload: u64,
    },
}

impl WorkItem {
    /// The object this item addresses — what decides the owning worker.
    fn object(&self) -> ObjectId {
        match self {
            WorkItem::Peer { msg, .. } => msg.txn().object,
            WorkItem::Timer { txn, .. } => txn.object,
            WorkItem::Update { object, .. }
            | WorkItem::Read { object, .. }
            | WorkItem::Recover { object, .. } => *object,
        }
    }
}

/// Everything one worker owns: its shard partition plus the in-progress
/// batch's staged results. Locked by the worker while draining its
/// queue and by the merge barrier (after [`ShardPool::wait_idle`]) to
/// collect — never both at once, so the mutex is uncontended.
#[derive(Debug)]
pub(crate) struct WorkerGroup {
    /// The shards this worker exclusively owns.
    pub(crate) part: ShardPartition,
    /// This worker's staged actions for the in-progress batch.
    pub(crate) scratch: Vec<Action>,
    /// Client requests started this batch: `(correlation id, reply
    /// sink, txn)` — `txn` is `None` when the kernel refused to start
    /// anything (answered `Busy` at merge time).
    pub(crate) starts: Vec<(u64, ReplySink, Option<TxnId>)>,
    /// `Make_Current` transactions started by `Recover` items this
    /// batch.
    pub(crate) restarts: Vec<TxnId>,
}

/// Run one item against the group's partition, staging actions into its
/// scratch. The only code that touches kernels — on the owning worker
/// thread, or inline on the scheduler with one worker.
pub(crate) fn process_item(group: &mut WorkerGroup, item: WorkItem) {
    match item {
        WorkItem::Peer { from, msg } => {
            // Unhosted or foreign-partition objects are dropped, not
            // panicked on: a misrouted frame must not kill the worker.
            group.part.handle_message(from, msg, &mut group.scratch);
        }
        WorkItem::Update {
            object,
            payload,
            id,
            reply,
        } => {
            let start = group.scratch.len();
            group.part.start_update(object, payload, &mut group.scratch);
            let txn = txn_started(&group.scratch[start..]);
            group.starts.push((id, reply, txn));
        }
        WorkItem::Read { object, id, reply } => {
            let start = group.scratch.len();
            group.part.start_read(object, &mut group.scratch);
            let txn = txn_started(&group.scratch[start..]);
            group.starts.push((id, reply, txn));
        }
        WorkItem::Timer { txn, kind } => {
            group.part.timer_fired(txn, kind, &mut group.scratch);
        }
        WorkItem::Recover { object, payload } => {
            let start = group.scratch.len();
            group.part.recover(object, payload, &mut group.scratch);
            // Tag the Make_Current transaction (if one started) so the
            // merge books its commit as restart traffic.
            for action in &group.scratch[start..] {
                if let Action::Broadcast {
                    msg: Message::VoteRequest { txn },
                } = action
                {
                    group.restarts.push(*txn);
                }
            }
        }
    }
}

/// The transaction a client request started, found by scanning the
/// actions the kernel just staged — the kernel does not return the
/// `TxnId` directly. `None` means the kernel refused.
fn txn_started(staged: &[Action]) -> Option<TxnId> {
    staged.iter().find_map(|action| match action {
        Action::Broadcast {
            msg: Message::VoteRequest { txn },
        }
        | Action::Resolved { txn, .. }
        | Action::SetTimer { txn, .. } => Some(*txn),
        _ => None,
    })
}

#[derive(Debug, Default)]
struct Queue {
    items: VecDeque<WorkItem>,
    closed: bool,
}

/// The scheduler <-> worker rendezvous for one worker.
#[derive(Debug)]
struct WorkerShared {
    queue: Mutex<Queue>,
    work_cv: Condvar,
    /// Items fully processed; [`ShardPool::wait_idle`] compares this
    /// against the pool's per-worker submission counter.
    completed: Mutex<u64>,
    done_cv: Condvar,
    group: Mutex<WorkerGroup>,
}

/// A worker thread's body: sleep until items arrive, drain the whole
/// burst in one queue-lock acquisition, run the kernels under the group
/// lock only, then publish the completion count for the merge barrier.
fn worker_loop(shared: &WorkerShared) {
    loop {
        let mut queue = shared.queue.lock().expect("shard queue poisoned");
        while queue.items.is_empty() && !queue.closed {
            queue = shared.work_cv.wait(queue).expect("shard queue poisoned");
        }
        if queue.items.is_empty() {
            return; // closed and fully drained
        }
        let batch: Vec<WorkItem> = queue.items.drain(..).collect();
        drop(queue);
        let done = batch.len() as u64;
        {
            let mut group = shared.group.lock().expect("shard group poisoned");
            for item in batch {
                process_item(&mut group, item);
            }
        }
        *shared.completed.lock().expect("shard counter poisoned") += done;
        shared.done_cv.notify_all();
    }
}

/// The node's worker pool: the per-worker rendezvous structures, the
/// spawned threads (none with one worker), and the submission counters
/// the merge barrier compares against. Owned by the scheduler for the
/// lifetime of [`super::Node::run`].
pub(crate) struct ShardPool {
    workers: usize,
    shareds: Vec<Arc<WorkerShared>>,
    /// Items enqueued per worker since launch. Scheduler-private — the
    /// scheduler is the only dispatcher — so no atomics needed.
    submitted: Vec<u64>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<ShardStats>,
}

impl ShardPool {
    /// Partition `sharded` across `workers` groups and, for pools of
    /// more than one worker, spawn the worker threads
    /// (`dynvote-shard-<site>-<worker>`).
    pub(crate) fn launch(
        site: SiteId,
        sharded: ShardedSite,
        workers: usize,
        stats: Arc<ShardStats>,
    ) -> Self {
        let shareds: Vec<Arc<WorkerShared>> = sharded
            .into_partitions(workers)
            .into_iter()
            .map(|part| {
                Arc::new(WorkerShared {
                    queue: Mutex::new(Queue::default()),
                    work_cv: Condvar::new(),
                    completed: Mutex::new(0),
                    done_cv: Condvar::new(),
                    group: Mutex::new(WorkerGroup {
                        part,
                        scratch: Vec::new(),
                        starts: Vec::new(),
                        restarts: Vec::new(),
                    }),
                })
            })
            .collect();
        let handles = if workers > 1 {
            shareds
                .iter()
                .enumerate()
                .map(|(w, shared)| {
                    let shared = Arc::clone(shared);
                    thread::Builder::new()
                        .name(format!("dynvote-shard-{}-{w}", site.0))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn shard worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        ShardPool {
            workers,
            shareds,
            submitted: vec![0; workers],
            handles,
            stats,
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// The worker owning `object` under the static partition.
    pub(crate) fn owner_of(&self, object: ObjectId) -> usize {
        object.index() % self.workers
    }

    /// Hand one item to its owning worker: inline (no threads, no
    /// queueing) with one worker, queued behind the worker's condvar
    /// otherwise.
    pub(crate) fn dispatch(&mut self, item: WorkItem) {
        let w = self.owner_of(item.object());
        self.stats.note_dispatch(w);
        if self.handles.is_empty() {
            let mut group = self.shareds[w].group.lock().expect("shard group poisoned");
            process_item(&mut group, item);
            return;
        }
        let depth = {
            let mut queue = self.shareds[w].queue.lock().expect("shard queue poisoned");
            queue.items.push_back(item);
            queue.items.len() as u64
        };
        self.submitted[w] += 1;
        self.stats.note_queue_depth(w, depth);
        self.shareds[w].work_cv.notify_one();
    }

    /// The merge barrier's first half: block until every worker has
    /// processed everything dispatched to it, recording how long the
    /// scheduler waited.
    pub(crate) fn wait_idle(&self) {
        if self.handles.is_empty() {
            self.stats.note_merge(0);
            return;
        }
        let start = Instant::now();
        for (w, shared) in self.shareds.iter().enumerate() {
            let mut completed = shared.completed.lock().expect("shard counter poisoned");
            while *completed < self.submitted[w] {
                completed = shared
                    .done_cv
                    .wait(completed)
                    .expect("shard counter poisoned");
            }
        }
        self.stats.note_merge(start.elapsed().as_nanos() as u64);
    }

    /// Lock every worker's group, in worker order. Callers must have
    /// drained the pool first ([`Self::wait_idle`]); the scheduler is
    /// the only dispatcher, so nothing new arrives while the guards are
    /// held.
    pub(crate) fn lock_groups(&self) -> Vec<MutexGuard<'_, WorkerGroup>> {
        self.shareds
            .iter()
            .map(|s| s.group.lock().expect("shard group poisoned"))
            .collect()
    }

    /// Replace every worker's partition with a freshly restored site's
    /// — a disk reboot under `ClientOp::Recover`.
    pub(crate) fn install(&self, sharded: ShardedSite) {
        let parts = sharded.into_partitions(self.workers);
        for (shared, part) in self.shareds.iter().zip(parts) {
            shared.group.lock().expect("shard group poisoned").part = part;
        }
    }

    /// Close every queue and join every worker thread. The scheduler
    /// merges first, so queues are already empty; `closed` makes the
    /// drain-then-exit handshake race-free regardless.
    pub(crate) fn shutdown(self) {
        for shared in &self.shareds {
            shared.queue.lock().expect("shard queue poisoned").closed = true;
            shared.work_cv.notify_all();
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_layout_matches_names() {
        let stats = ShardStats::new(2);
        stats.note_dispatch(1);
        stats.note_queue_depth(0, 5);
        stats.note_merge(120);
        let names = stats.names();
        let counts = stats.snapshot();
        assert_eq!(names.len(), counts.len());
        assert_eq!(names[0], "shard_worker0_dispatched");
        assert_eq!(names[2], "shard_worker0_queue_peak");
        assert_eq!(names[4], "shard_merge_barriers");
        assert_eq!(names[5], "shard_merge_wait_ns");
        assert_eq!(counts, vec![0, 1, 5, 0, 1, 120]);
    }

    #[test]
    fn queue_peak_is_a_high_water_mark() {
        let stats = ShardStats::new(1);
        stats.note_queue_depth(0, 7);
        stats.note_queue_depth(0, 3);
        assert_eq!(stats.snapshot()[1], 7);
        stats.note_queue_depth(0, 9);
        assert_eq!(stats.snapshot()[1], 9);
    }
}
