//! The scheduler: the node's inbox thread. Blocks on the `mpsc` inbox,
//! classifies each event by `ObjectId`, and hands it to the shard-affine
//! worker owning that object ([`ShardPool::dispatch`] — inline when the
//! pool has one worker). Wall-clock timers, reachability filtering, the
//! crash/recover fault model, and control-plane queries all live here;
//! the kernels themselves only ever run inside workers.

use super::worker::{ShardPool, WorkItem};
use super::{Node, NodeEvent};
use crate::wire::{ClientOp, ClientReply};
use dynvote_core::SiteId;
use dynvote_protocol::{DurableState, Message, ObjectId, TimerKind, TxnId};
use rand::Rng;
use std::sync::mpsc::{RecvTimeoutError, TryRecvError};
use std::time::{Duration, Instant};

/// How many already-queued inbox events one loop iteration may drain
/// behind the blocking receive before timers fire and the transport
/// flushes. Bounded so a message storm cannot starve timers; large
/// enough that a commit fan-in coalesces into one flush.
const INBOX_BATCH: usize = 128;

impl Node {
    /// The event loop: block on the inbox up to the next timer
    /// deadline, drain the burst queued behind the first event
    /// (bounded by [`INBOX_BATCH`]) while the workers run kernels and
    /// **stage** their actions, fire due timers, then [`Node::merge`]
    /// the whole batch behind **one** group-commit barrier and flush
    /// the transport once, repeat until [`NodeEvent::Shutdown`].
    ///
    /// The single barrier + single flush per iteration is what makes
    /// the durable hot path cheap: every WAL op the batch produced —
    /// across every shard and every worker — is sealed by one fsync,
    /// and every frame for one peer leaves in one `write_all`. Idle
    /// timeouts also flush, so nothing lingers buffered when traffic
    /// stops.
    ///
    /// # Panics
    ///
    /// If the worker threads cannot be spawned.
    pub fn run(mut self) {
        let site = self.site.take().expect("site present until run");
        let mut pool = ShardPool::launch(
            self.id,
            site,
            self.shard_threads,
            std::sync::Arc::clone(&self.shard_stats),
            self.max_batch,
        );
        self.resume_in_doubt(&mut pool);
        'outer: loop {
            let timeout = self
                .next_timer_in()
                .unwrap_or(Duration::from_millis(50))
                .min(Duration::from_millis(50));
            match self.rx.recv_timeout(timeout) {
                Ok(NodeEvent::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Ok(event) => {
                    self.handle_event(&mut pool, event);
                    for _ in 1..INBOX_BATCH {
                        match self.rx.try_recv() {
                            Ok(NodeEvent::Shutdown) | Err(TryRecvError::Disconnected) => {
                                break 'outer;
                            }
                            Ok(event) => self.handle_event(&mut pool, event),
                            Err(TryRecvError::Empty) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
            self.fire_due_timers(&mut pool);
            // One barrier seals every worker's staged WAL ops, then the
            // staged sends and replies dispatch.
            self.merge(&mut pool);
            // Between batches: rotate the WAL if it has grown past the
            // configured threshold (no-op for amnesiac nodes). Safe
            // here because merge() just drained the pending record.
            self.maybe_rotate(&pool);
            self.transport.flush();
        }
        self.merge(&mut pool);
        self.transport.flush();
        // Ops still parked in per-object FIFOs never started a round;
        // fail them alongside the in-flight ones.
        for mut group in pool.lock_groups() {
            for (id, reply) in group.fail_queued() {
                reply.send(id, ClientReply::Down);
            }
        }
        pool.shutdown();
        for (_, clients) in self.pending.drain() {
            for client in clients {
                client.reply.send(client.id, ClientReply::Down);
            }
        }
    }

    /// A durable node that boots with a prepare record on disk is in
    /// doubt on that transaction: before serving any traffic it must
    /// re-acquire the lock the record guards and resume the
    /// termination protocol (Section V-C), exactly as the in-process
    /// recover path does. Without this, the site comes up unlocked —
    /// the next vote request overwrites the prepare record and the
    /// in-doubt commit is orphaned, which can wedge the whole cluster
    /// (a coordinator that committed alone is the only current copy,
    /// and no partition is ever distinguished again). The StatusQuery
    /// broadcast may race the peers' own boots; the PreparedRetry
    /// timer the round arms re-sends it until someone answers.
    fn resume_in_doubt(&mut self, pool: &mut ShardPool) {
        if self.durability.is_none() {
            return;
        }
        let mut in_doubt: Vec<ObjectId> = Vec::new();
        for group in pool.lock_groups() {
            in_doubt.extend(
                group
                    .part
                    .iter()
                    .filter(|(_, shard)| shard.is_in_doubt())
                    .map(|(object, _)| object),
            );
        }
        if in_doubt.is_empty() {
            return;
        }
        // Restart payloads are assigned in object order regardless of
        // how the objects are partitioned, keeping the recovery
        // byte-stream independent of the worker count.
        in_doubt.sort_by_key(|object| object.index());
        for object in in_doubt {
            let payload = self.fresh_payload();
            pool.dispatch(WorkItem::Recover { object, payload });
        }
        self.merge(pool);
        self.transport.flush();
    }

    /// Feed one inbox event to the owning worker. Actions are
    /// **staged** in the workers' scratch sinks; nothing is sent or
    /// replied until the batch's [`Node::merge`] — except control and
    /// diagnostic operations, which manage the staging discipline
    /// explicitly (see [`Node::handle_client`]).
    fn handle_event(&mut self, pool: &mut ShardPool, event: NodeEvent) {
        match event {
            NodeEvent::Peer { from, msg } => {
                // A crashed site hears nothing; a partitioned-away
                // sender's frames are dropped at the boundary.
                if self.down || !self.reachable.contains(from) {
                    return;
                }
                pool.dispatch(WorkItem::Peer { from, msg });
            }
            NodeEvent::Client { id, op, reply } => self.handle_client(pool, id, op, reply),
            NodeEvent::Shutdown => {}
        }
    }

    /// Resolve a wire key to a hosted object, or fail the client.
    fn object_for(&self, key: u32, id: u64, reply: &super::ReplySink) -> Option<ObjectId> {
        if (key as usize) < self.objects {
            Some(ObjectId(key))
        } else {
            reply.send(id, ClientReply::Rejected);
            None
        }
    }

    fn handle_client(
        &mut self,
        pool: &mut ShardPool,
        id: u64,
        op: ClientOp,
        reply: super::ReplySink,
    ) {
        match op {
            ClientOp::Update { key } => {
                if self.down {
                    reply.send(id, ClientReply::Down);
                    return;
                }
                let Some(object) = self.object_for(key, id, &reply) else {
                    return;
                };
                let payload = self.fresh_payload();
                pool.dispatch(WorkItem::Update {
                    object,
                    payload,
                    id,
                    reply,
                });
            }
            ClientOp::Read { key } => {
                if self.down {
                    reply.send(id, ClientReply::Down);
                    return;
                }
                let Some(object) = self.object_for(key, id, &reply) else {
                    return;
                };
                pool.dispatch(WorkItem::Read { object, id, reply });
            }
            ClientOp::Crash => {
                // Dispatch whatever earlier events in this batch staged
                // *before* the crash wipes volatile state: those
                // actions were produced by a live site and their
                // durable records are already hooked.
                self.merge(pool);
                if !self.down {
                    self.down = true;
                    // Lazy cancellation: already-armed entries become
                    // stale and are skimmed off at the next peek/pop.
                    self.timers.bump_epoch();
                    for mut group in pool.lock_groups() {
                        group.part.crash();
                        // Queued-but-unstarted ops die with the site
                        // too: each resolves exactly once, as Down.
                        for (qid, reply) in group.fail_queued() {
                            reply.send(qid, ClientReply::Down);
                        }
                    }
                    for (_, clients) in self.pending.drain() {
                        for client in clients {
                            client.reply.send(client.id, ClientReply::Down);
                        }
                    }
                }
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::Recover => {
                self.merge(pool);
                if self.down {
                    self.down = false;
                    // A durable site restarts from its disk, not from
                    // whatever this process still holds in memory —
                    // the same code path a genuinely rebooted process
                    // takes.
                    self.reboot_from_disk(pool);
                    for object in 0..self.objects {
                        let object = ObjectId(object as u32);
                        let payload = self.fresh_payload();
                        pool.dispatch(WorkItem::Recover { object, payload });
                    }
                    self.merge(pool);
                }
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::SetReachable(set) => {
                // Staged sends were produced under the old topology;
                // let them leave before the partition takes effect.
                self.merge(pool);
                self.reachable = set;
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::Probe { key } => {
                let Some(object) = self.object_for(key, id, &reply) else {
                    return;
                };
                // Seal staged durable ops before announcing state.
                self.merge(pool);
                let groups = pool.lock_groups();
                let shard = groups[pool.owner_of(object)]
                    .part
                    .shard(object)
                    .expect("validated object");
                reply.send(
                    id,
                    ClientReply::Probe {
                        meta: shard.meta(),
                        locked: shard.is_locked(),
                        in_doubt: shard.is_in_doubt(),
                        down: self.down,
                    },
                );
            }
            ClientOp::Events => {
                let counts = self
                    .events
                    .as_ref()
                    .map(|sink| sink.tallies().row(self.id).to_vec())
                    .unwrap_or_default();
                reply.send(id, ClientReply::Events { counts });
            }
            ClientOp::Audit => {
                self.merge(pool);
                let groups = pool.lock_groups();
                // Consistency seen from this node: every shard's log is
                // a gapless prefix of its object's chain AND no commit
                // anywhere was flagged divergent — so remote auditors
                // (the loadgen CLI) learn about ledger violations too.
                let consistent = self.ledger.violations().is_empty()
                    && (0..self.objects).all(|o| {
                        let object = ObjectId(o as u32);
                        let shard = groups[pool.owner_of(object)]
                            .part
                            .shard(object)
                            .expect("hosted object");
                        self.ledger
                            .check_log(object, shard.log(), shard.meta().version)
                    });
                let log_len: u64 = groups
                    .iter()
                    .flat_map(|g| g.part.iter())
                    .map(|(_, shard)| shard.log().len() as u64)
                    .sum();
                reply.send(
                    id,
                    ClientReply::Audit {
                        commits: self.commits,
                        log_len,
                        consistent,
                    },
                );
            }
            ClientOp::DumpLog { key } => {
                let Some(object) = self.object_for(key, id, &reply) else {
                    return;
                };
                self.merge(pool);
                let groups = pool.lock_groups();
                let shard = groups[pool.owner_of(object)]
                    .part
                    .shard(object)
                    .expect("validated object");
                reply.send(
                    id,
                    ClientReply::Log {
                        meta: shard.meta(),
                        entries: shard.log().to_vec(),
                    },
                );
            }
            ClientOp::Status => {
                self.merge(pool);
                let groups = pool.lock_groups();
                let shard = groups[pool.owner_of(ObjectId::ZERO)]
                    .part
                    .shard(ObjectId::ZERO)
                    .expect("object 0 hosted");
                let log_len: u64 = groups
                    .iter()
                    .flat_map(|g| g.part.iter())
                    .map(|(_, s)| s.log().len() as u64)
                    .sum();
                reply.send(
                    id,
                    ClientReply::Status {
                        algorithm: self.algorithm.to_string(),
                        objects: self.objects as u32,
                        meta: shard.meta(),
                        reachable: self.reachable,
                        locked: groups.iter().any(|g| g.part.any_locked()),
                        in_doubt: groups.iter().any(|g| g.part.any_in_doubt()),
                        down: self.down,
                        log_len,
                        commits: self.commits,
                        wal_epoch: shard.wal_epoch(),
                    },
                );
            }
            ClientOp::NetStats => {
                let counts = self
                    .net
                    .as_ref()
                    .map(|stats| stats.snapshot())
                    .unwrap_or_default();
                reply.send(id, ClientReply::NetStats { counts });
            }
            ClientOp::ShardStats => {
                reply.send(
                    id,
                    ClientReply::ShardStats {
                        workers: pool.workers() as u32,
                        counts: self.shard_stats.snapshot(),
                    },
                );
            }
        }
    }

    /// Rebuild the kernels from what the data directory says,
    /// discarding process memory — the in-process stand-in for a
    /// machine reboot — and install the restored partitions into the
    /// (already idle and merged) worker pool. Under a group-commit
    /// fsync policy this honestly loses whatever the store had not yet
    /// synced.
    ///
    /// # Panics
    ///
    /// On I/O failure, matching the store's own hook discipline: a
    /// durable site that cannot read its own disk cannot rejoin.
    /// Corrupt or torn files do **not** panic — recovery truncates and
    /// reports.
    fn reboot_from_disk(&mut self, pool: &mut ShardPool) {
        if self.durability.is_none() {
            return;
        }
        let report = self.reload_site_from_disk().expect("reboot from data dir");
        if let Some(torn) = &report.truncated {
            eprintln!(
                "site {}: WAL tail truncated at epoch {} offset {}: {}",
                self.id, torn.epoch, torn.offset, torn.reason
            );
        }
        pool.install(self.site.take().expect("site just restored"));
    }

    /// Rotate the shared WAL into a fresh epoch behind a node-wide
    /// snapshot of every shard's durable state, when it has grown past
    /// the configured threshold. Called right after [`Node::merge`], so
    /// the pending group-commit record is empty and the snapshot is a
    /// consistent cut across all objects.
    fn maybe_rotate(&mut self, pool: &ShardPool) {
        let Some(core) = self.store.clone() else {
            return;
        };
        if !core.lock().expect("store poisoned").wants_rotation() {
            return;
        }
        let groups = pool.lock_groups();
        let states: Vec<DurableState> = (0..self.objects)
            .map(|o| {
                let object = ObjectId(o as u32);
                groups[pool.owner_of(object)]
                    .part
                    .shard(object)
                    .expect("hosted object")
                    .durable()
                    .clone()
            })
            .collect();
        drop(groups);
        let outcome = core.lock().expect("store poisoned").rotate(&states);
        if let Err(err) = outcome {
            // Rotation is an optimization; a failed attempt leaves the
            // old epoch intact and will be retried next batch.
            eprintln!("site {}: WAL rotation failed: {err}", self.id);
        }
    }

    pub(crate) fn send(&mut self, to: SiteId, msg: Message) {
        if self.down || !self.reachable.contains(to) {
            return;
        }
        self.transport.send(to, &msg);
    }

    /// Arm one wall-clock deadline. `prepared_rounds` is the shard's
    /// current termination-round count, read by the merge pass while it
    /// holds the group locks (the scheduler itself never touches
    /// kernels).
    pub(crate) fn arm_timer(&mut self, txn: TxnId, kind: TimerKind, prepared_rounds: u32) {
        let delay = match kind {
            TimerKind::VoteDeadline => self.config.vote_deadline,
            TimerKind::CatchUpDeadline => self.config.catchup_deadline,
            TimerKind::PreparedRetry => {
                let u: f64 = self.rng.gen();
                let ms = self.config.backoff.delay(prepared_rounds, u);
                Duration::from_secs_f64(ms / 1000.0)
            }
        };
        self.timers.schedule(Instant::now() + delay, (txn, kind));
    }

    fn next_timer_in(&mut self) -> Option<Duration> {
        let now = Instant::now();
        self.timers
            .next_deadline()
            .map(|when| when.saturating_duration_since(now))
    }

    /// Fire every due timer, dispatching each to its object's worker;
    /// the caller's [`Node::merge`] collects the results with the
    /// batch.
    fn fire_due_timers(&mut self, pool: &mut ShardPool) {
        while let Some((_, (txn, kind))) = self.timers.pop_due(&Instant::now()) {
            if self.down {
                continue;
            }
            pool.dispatch(WorkItem::Timer { txn, kind });
        }
    }

    /// A cluster-unique payload: site in the top bits, a local counter
    /// below, so divergence checks can attribute every committed value.
    /// Assigned by the scheduler at classification time — in arrival
    /// order, independent of the worker count — which is one leg of the
    /// determinism contract.
    fn fresh_payload(&mut self) -> u64 {
        self.payload_seq += 1;
        ((u64::from(self.id.0) + 1) << 48) | self.payload_seq
    }
}
