//! The hand-rolled wire codec: protocol and client frames over bytes.
//!
//! Frames are length-prefixed: a little-endian `u32` byte count
//! followed by the body. The body is a tagged binary encoding — one tag
//! byte per enum variant, little-endian fixed-width integers for every
//! field, no padding and no self-description. The format is the same in
//! both directions and shared by peer links and client connections; the
//! two are told apart by a one-byte connection preamble
//! ([`HELLO_PEER`] / [`HELLO_CLIENT`]) written immediately after
//! connecting.
//!
//! The codec is deliberately bincode-free: the container builds offline
//! and the repo's compat `serde` is a tree-walking stand-in, so the
//! cluster's hot path gets a purpose-built encoder whose cost is a
//! handful of `extend_from_slice` calls per message.

use dynvote_core::{CopyMeta, SiteId, SiteSet};
use dynvote_protocol::codec::{
    put_entries, put_meta, put_site_set, put_txn, put_u32, put_u64, put_u8, Reader,
};
use dynvote_protocol::{LogEntry, Message, StatusOutcome};
use std::io::{self, Read, Write};

pub use dynvote_protocol::codec::WireError;

/// Connection preamble byte announcing a peer (protocol) link; the next
/// byte is the sending site's id.
pub const HELLO_PEER: u8 = b'P';
/// Connection preamble byte announcing a client connection.
pub const HELLO_CLIENT: u8 = b'C';

/// Upper bound on an accepted frame body, guarding against corrupt
/// length prefixes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// A request a client sends to one node.
///
/// Data-plane ops carry the object (`key`) they address; key `0` is the
/// default object, which is what keyless HTTP bodies map to.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Submit an update on one object, coordinated by the receiving
    /// node.
    Update {
        /// The object (shard) to update.
        key: u32,
    },
    /// Submit a read-only request on one object (paper footnote 5).
    Read {
        /// The object (shard) to read.
        key: u32,
    },
    /// Fault injection: crash the site (volatile state lost; durable
    /// prepare/commit records survive). The node process stays up and
    /// keeps answering control traffic.
    Crash,
    /// Fault injection: recover the site; it runs the Section V-C
    /// restart protocol (`Make_Current`).
    Recover,
    /// Fault injection: restrict the site's connectivity to `0` —
    /// messages to and from sites outside the set are dropped, emulating
    /// a network partition at the node boundary (transport-agnostic).
    SetReachable(SiteSet),
    /// Inspect one object's current protocol state on this node.
    Probe {
        /// The object (shard) to inspect.
        key: u32,
    },
    /// Ask the node to audit its durable log against the cluster's
    /// shared omniscient ledger.
    Audit,
    /// Fetch the node's protocol-event tallies (one counter per
    /// [`dynvote_protocol::EventKind`], in declaration order).
    Events,
    /// Fetch one object's durable metadata and full committed log, so
    /// an external harness can audit consistency across nodes that do
    /// not share a process (and hence no in-memory ledger).
    DumpLog {
        /// The object (shard) to dump.
        key: u32,
    },
    /// Fetch a one-shot operational snapshot (algorithm, partition
    /// view, metadata, WAL epoch) — the front door's `GET /status`.
    Status,
    /// Fetch the node's transport/front-door counters (dial failures,
    /// decode errors, backpressure drops, …) in
    /// [`crate::NetStats::NAMES`] order.
    NetStats,
    /// Fetch the node's shard worker-pool counters (per-worker dispatch
    /// totals and queue-depth peaks, merge-barrier count and wait
    /// time) in [`crate::ShardStats::names`] order.
    ShardStats,
}

/// A node's reply to a [`ClientOp`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClientReply {
    /// The update committed; the node's new version number.
    Committed {
        /// Version installed by the commit.
        version: u64,
    },
    /// The read was served from a distinguished partition.
    ReadServed,
    /// Refused: the partition was not distinguished.
    Rejected,
    /// Refused: the local copy was locked by another transaction.
    Busy,
    /// Refused at admission: the object's pending-op queue is full.
    /// Distinct from [`ClientReply::Busy`] — the op never reached the
    /// protocol; retry after backing off.
    Overloaded,
    /// Aborted: vote collection or catch-up timed out.
    TimedOut,
    /// Refused: the site is crashed (or crashed while coordinating the
    /// request).
    Down,
    /// Control acknowledged (crash/recover/set-reachable).
    Ok,
    /// Probe result.
    Probe {
        /// The durable `(VN, SC, DS)` triple.
        meta: CopyMeta,
        /// True if the file lock is held.
        locked: bool,
        /// True if a durable prepare record exists (in-doubt txn).
        in_doubt: bool,
        /// True if the site is crashed.
        down: bool,
    },
    /// Audit result.
    Audit {
        /// Updates committed here as coordinator (workload only;
        /// `Make_Current` restart commits are excluded).
        commits: u64,
        /// Durable log length.
        log_len: u64,
        /// True if the log is a gapless prefix of the shared ledger and
        /// the metadata version matches the log.
        consistent: bool,
    },
    /// Protocol-event tallies for the queried site, indexed by
    /// [`dynvote_protocol::EventKind`] declaration order.
    Events {
        /// One counter per event kind.
        counts: Vec<u64>,
    },
    /// The node's durable `(VN, SC, DS)` triple and committed log, in
    /// version order.
    Log {
        /// The durable metadata triple.
        meta: CopyMeta,
        /// Every committed entry, version-ordered and gapless.
        entries: Vec<LogEntry>,
    },
    /// Operational snapshot for `GET /status`. Protocol-state fields
    /// describe object 0 (the default object); `objects` says how many
    /// shards the node hosts in total.
    Status {
        /// Name of the vote-assignment algorithm the cluster runs.
        algorithm: String,
        /// Number of objects (shards) this node hosts.
        objects: u32,
        /// The durable `(VN, SC, DS)` triple of object 0.
        meta: CopyMeta,
        /// The node's current reachability set (partition view).
        reachable: SiteSet,
        /// True if the file lock is held right now.
        locked: bool,
        /// True if a durable prepare record exists (in-doubt txn).
        in_doubt: bool,
        /// True if the site is crashed.
        down: bool,
        /// Durable log length.
        log_len: u64,
        /// Updates committed here as coordinator.
        commits: u64,
        /// WAL epoch when running durable, `None` on a volatile node.
        wal_epoch: Option<u64>,
    },
    /// Transport/front-door counters in [`crate::NetStats::NAMES`]
    /// order.
    NetStats {
        /// One counter per [`crate::NetStats::NAMES`] entry.
        counts: Vec<u64>,
    },
    /// Shard worker-pool counters in [`crate::ShardStats::names`]
    /// order: `[dispatched(0..W), queue_peak(0..W), merge_barriers,
    /// merge_wait_ns]`.
    ShardStats {
        /// Pool size `W` (1 = kernels ran inline on the scheduler).
        workers: u32,
        /// One counter per [`crate::ShardStats::names`] entry.
        counts: Vec<u64>,
    },
}

// The primitive `put_*` encoders and the `Reader` decoder live in
// `dynvote_protocol::codec`, shared with the durable storage formats.

// ----- protocol messages -------------------------------------------------

/// Encode a protocol [`Message`] into a frame body.
///
/// Thin wrapper over [`encode_message_into`] for callers without a
/// reusable buffer.
#[must_use]
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    encode_message_into(&mut out, msg);
    out
}

/// Append a protocol [`Message`] body to `out` (which is *not*
/// cleared: the transport batches several bodies, each behind its
/// length prefix, into one write buffer).
pub fn encode_message_into(out: &mut Vec<u8>, msg: &Message) {
    match msg {
        Message::VoteRequest { txn } => {
            put_u8(out, 1);
            put_txn(out, *txn);
        }
        Message::VoteGranted { txn, meta, from } => {
            put_u8(out, 2);
            put_txn(out, *txn);
            put_meta(out, *meta);
            put_u8(out, from.0);
        }
        Message::VoteBusy { txn, from } => {
            put_u8(out, 3);
            put_txn(out, *txn);
            put_u8(out, from.0);
        }
        Message::CatchUpRequest { txn, after_version } => {
            put_u8(out, 4);
            put_txn(out, *txn);
            put_u64(out, *after_version);
        }
        Message::CatchUpReply { txn, entries } => {
            put_u8(out, 5);
            put_txn(out, *txn);
            put_entries(out, entries);
        }
        Message::Commit {
            txn,
            meta,
            entries,
            participants,
        } => {
            put_u8(out, 6);
            put_txn(out, *txn);
            put_meta(out, *meta);
            put_entries(out, entries);
            put_site_set(out, *participants);
        }
        Message::Abort { txn } => {
            put_u8(out, 7);
            put_txn(out, *txn);
        }
        Message::StatusQuery {
            txn,
            after_version,
            from,
        } => {
            put_u8(out, 8);
            put_txn(out, *txn);
            put_u64(out, *after_version);
            put_u8(out, from.0);
        }
        Message::StatusReply { txn, outcome } => {
            put_u8(out, 9);
            put_txn(out, *txn);
            match outcome {
                StatusOutcome::Committed {
                    meta,
                    entries,
                    participants,
                } => {
                    put_u8(out, 0);
                    put_meta(out, *meta);
                    put_entries(out, entries);
                    put_site_set(out, *participants);
                }
                StatusOutcome::Aborted => put_u8(out, 1),
                StatusOutcome::Unknown => put_u8(out, 2),
            }
        }
    }
}

/// Decode a protocol [`Message`] from a frame body.
pub fn decode_message(body: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(body);
    let msg = match r.u8()? {
        1 => Message::VoteRequest { txn: r.txn()? },
        2 => Message::VoteGranted {
            txn: r.txn()?,
            meta: r.meta()?,
            from: SiteId(r.u8()?),
        },
        3 => Message::VoteBusy {
            txn: r.txn()?,
            from: SiteId(r.u8()?),
        },
        4 => Message::CatchUpRequest {
            txn: r.txn()?,
            after_version: r.u64()?,
        },
        5 => Message::CatchUpReply {
            txn: r.txn()?,
            entries: r.entries()?,
        },
        6 => Message::Commit {
            txn: r.txn()?,
            meta: r.meta()?,
            entries: r.entries()?,
            participants: r.site_set()?,
        },
        7 => Message::Abort { txn: r.txn()? },
        8 => Message::StatusQuery {
            txn: r.txn()?,
            after_version: r.u64()?,
            from: SiteId(r.u8()?),
        },
        9 => {
            let txn = r.txn()?;
            let outcome = match r.u8()? {
                0 => StatusOutcome::Committed {
                    meta: r.meta()?,
                    entries: r.entries()?,
                    participants: r.site_set()?,
                },
                1 => StatusOutcome::Aborted,
                2 => StatusOutcome::Unknown,
                tag => return Err(WireError::BadTag(tag)),
            };
            Message::StatusReply { txn, outcome }
        }
        tag => return Err(WireError::BadTag(tag)),
    };
    r.finish(msg)
}

// ----- peer batch frames -------------------------------------------------

/// Body tag of a peer **batch** frame: one frame carrying many protocol
/// messages — typically many different objects' vote/commit rounds that
/// one event-loop iteration produced for the same peer. Distinct from
/// every single-message tag (1–9), so a receiver dispatches on the
/// first byte.
pub const MSG_BATCH_TAG: u8 = 10;

/// Append a peer-batch frame body: `[MSG_BATCH_TAG][count]` followed by
/// `count` length-prefixed message bodies (`bodies` is their
/// concatenation, each already behind its own `u32` length — the
/// transport accumulates them via [`encode_frame_into`] +
/// [`encode_message_into`] into a reusable buffer).
pub fn encode_batch_into(out: &mut Vec<u8>, count: u32, bodies: &[u8]) {
    put_u8(out, MSG_BATCH_TAG);
    put_u32(out, count);
    out.extend_from_slice(bodies);
}

/// Decode a peer frame body that is either a single protocol message or
/// a batch, feeding each decoded [`Message`] to `sink` in order.
/// Returns the number of messages delivered.
pub fn decode_peer_frame(body: &[u8], mut sink: impl FnMut(Message)) -> Result<u32, WireError> {
    if body.first() == Some(&MSG_BATCH_TAG) {
        let mut r = Reader::new(&body[1..]);
        let count = r.u32()?;
        for _ in 0..count {
            let len = r.u32()? as usize;
            let msg_body = r.take(len)?;
            sink(decode_message(msg_body)?);
        }
        r.finish(count)
    } else {
        sink(decode_message(body)?);
        Ok(1)
    }
}

// ----- client frames -----------------------------------------------------

/// Encode a client request (correlation id + operation).
///
/// Thin wrapper over [`encode_request_into`].
#[must_use]
pub fn encode_request(id: u64, op: &ClientOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_request_into(&mut out, id, op);
    out
}

/// Append a client request body to `out` (not cleared).
pub fn encode_request_into(out: &mut Vec<u8>, id: u64, op: &ClientOp) {
    put_u64(out, id);
    match op {
        ClientOp::Update { key } => {
            put_u8(out, 0);
            put_u32(out, *key);
        }
        ClientOp::Read { key } => {
            put_u8(out, 1);
            put_u32(out, *key);
        }
        ClientOp::Crash => put_u8(out, 2),
        ClientOp::Recover => put_u8(out, 3),
        ClientOp::SetReachable(set) => {
            put_u8(out, 4);
            put_site_set(out, *set);
        }
        ClientOp::Probe { key } => {
            put_u8(out, 5);
            put_u32(out, *key);
        }
        ClientOp::Audit => put_u8(out, 6),
        ClientOp::Events => put_u8(out, 7),
        ClientOp::DumpLog { key } => {
            put_u8(out, 8);
            put_u32(out, *key);
        }
        ClientOp::Status => put_u8(out, 9),
        ClientOp::NetStats => put_u8(out, 10),
        ClientOp::ShardStats => put_u8(out, 11),
    }
}

/// Decode a client request.
pub fn decode_request(body: &[u8]) -> Result<(u64, ClientOp), WireError> {
    let mut r = Reader::new(body);
    let id = r.u64()?;
    let op = match r.u8()? {
        0 => ClientOp::Update { key: r.u32()? },
        1 => ClientOp::Read { key: r.u32()? },
        2 => ClientOp::Crash,
        3 => ClientOp::Recover,
        4 => ClientOp::SetReachable(r.site_set()?),
        5 => ClientOp::Probe { key: r.u32()? },
        6 => ClientOp::Audit,
        7 => ClientOp::Events,
        8 => ClientOp::DumpLog { key: r.u32()? },
        9 => ClientOp::Status,
        10 => ClientOp::NetStats,
        11 => ClientOp::ShardStats,
        tag => return Err(WireError::BadTag(tag)),
    };
    r.finish((id, op))
}

/// Encode a client reply (correlation id + outcome).
///
/// Thin wrapper over [`encode_reply_into`].
#[must_use]
pub fn encode_reply(id: u64, reply: &ClientReply) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    encode_reply_into(&mut out, id, reply);
    out
}

/// Append a client reply body to `out` (not cleared).
pub fn encode_reply_into(out: &mut Vec<u8>, id: u64, reply: &ClientReply) {
    put_u64(out, id);
    match reply {
        ClientReply::Committed { version } => {
            put_u8(out, 0);
            put_u64(out, *version);
        }
        ClientReply::ReadServed => put_u8(out, 1),
        ClientReply::Rejected => put_u8(out, 2),
        ClientReply::Busy => put_u8(out, 3),
        ClientReply::TimedOut => put_u8(out, 4),
        ClientReply::Down => put_u8(out, 5),
        ClientReply::Ok => put_u8(out, 6),
        ClientReply::Probe {
            meta,
            locked,
            in_doubt,
            down,
        } => {
            put_u8(out, 7);
            put_meta(out, *meta);
            put_u8(out, u8::from(*locked));
            put_u8(out, u8::from(*in_doubt));
            put_u8(out, u8::from(*down));
        }
        ClientReply::Audit {
            commits,
            log_len,
            consistent,
        } => {
            put_u8(out, 8);
            put_u64(out, *commits);
            put_u64(out, *log_len);
            put_u8(out, u8::from(*consistent));
        }
        ClientReply::Events { counts } => {
            put_u8(out, 9);
            put_u32(out, counts.len() as u32);
            for &c in counts {
                put_u64(out, c);
            }
        }
        ClientReply::Log { meta, entries } => {
            put_u8(out, 10);
            put_meta(out, *meta);
            put_entries(out, entries);
        }
        ClientReply::Status {
            algorithm,
            objects,
            meta,
            reachable,
            locked,
            in_doubt,
            down,
            log_len,
            commits,
            wal_epoch,
        } => {
            put_u8(out, 11);
            put_u32(out, algorithm.len() as u32);
            out.extend_from_slice(algorithm.as_bytes());
            put_u32(out, *objects);
            put_meta(out, *meta);
            put_site_set(out, *reachable);
            put_u8(out, u8::from(*locked));
            put_u8(out, u8::from(*in_doubt));
            put_u8(out, u8::from(*down));
            put_u64(out, *log_len);
            put_u64(out, *commits);
            match wal_epoch {
                Some(e) => {
                    put_u8(out, 1);
                    put_u64(out, *e);
                }
                None => put_u8(out, 0),
            }
        }
        ClientReply::NetStats { counts } => {
            put_u8(out, 12);
            put_u32(out, counts.len() as u32);
            for &c in counts {
                put_u64(out, c);
            }
        }
        ClientReply::ShardStats { workers, counts } => {
            put_u8(out, 13);
            put_u32(out, *workers);
            put_u32(out, counts.len() as u32);
            for &c in counts {
                put_u64(out, c);
            }
        }
        // Tag 14: appended after every pre-pipelining reply tag so old
        // decoders only ever see it when talking to a new server.
        ClientReply::Overloaded => put_u8(out, 14),
    }
}

/// Decode a client reply.
pub fn decode_reply(body: &[u8]) -> Result<(u64, ClientReply), WireError> {
    let mut r = Reader::new(body);
    let id = r.u64()?;
    let reply = match r.u8()? {
        0 => ClientReply::Committed { version: r.u64()? },
        1 => ClientReply::ReadServed,
        2 => ClientReply::Rejected,
        3 => ClientReply::Busy,
        4 => ClientReply::TimedOut,
        5 => ClientReply::Down,
        6 => ClientReply::Ok,
        7 => ClientReply::Probe {
            meta: r.meta()?,
            locked: r.u8()? != 0,
            in_doubt: r.u8()? != 0,
            down: r.u8()? != 0,
        },
        8 => ClientReply::Audit {
            commits: r.u64()?,
            log_len: r.u64()?,
            consistent: r.u8()? != 0,
        },
        9 => {
            let count = r.u32()? as usize;
            // Guard: each counter is 8 bytes, so a valid count is
            // bounded by the remaining body.
            if count > r.remaining() / 8 {
                return Err(WireError::Truncated);
            }
            let mut counts = Vec::with_capacity(count);
            for _ in 0..count {
                counts.push(r.u64()?);
            }
            ClientReply::Events { counts }
        }
        10 => ClientReply::Log {
            meta: r.meta()?,
            entries: r.entries()?,
        },
        11 => {
            let name_len = r.u32()? as usize;
            if name_len > r.remaining() {
                return Err(WireError::Truncated);
            }
            let mut name = Vec::with_capacity(name_len);
            for _ in 0..name_len {
                name.push(r.u8()?);
            }
            let algorithm = String::from_utf8_lossy(&name).into_owned();
            ClientReply::Status {
                algorithm,
                objects: r.u32()?,
                meta: r.meta()?,
                reachable: r.site_set()?,
                locked: r.u8()? != 0,
                in_doubt: r.u8()? != 0,
                down: r.u8()? != 0,
                log_len: r.u64()?,
                commits: r.u64()?,
                wal_epoch: match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    tag => return Err(WireError::BadTag(tag)),
                },
            }
        }
        12 => {
            let count = r.u32()? as usize;
            if count > r.remaining() / 8 {
                return Err(WireError::Truncated);
            }
            let mut counts = Vec::with_capacity(count);
            for _ in 0..count {
                counts.push(r.u64()?);
            }
            ClientReply::NetStats { counts }
        }
        13 => {
            let workers = r.u32()?;
            let count = r.u32()? as usize;
            if count > r.remaining() / 8 {
                return Err(WireError::Truncated);
            }
            let mut counts = Vec::with_capacity(count);
            for _ in 0..count {
                counts.push(r.u64()?);
            }
            ClientReply::ShardStats { workers, counts }
        }
        14 => ClientReply::Overloaded,
        tag => return Err(WireError::BadTag(tag)),
    };
    r.finish((id, reply))
}

// ----- frame transport ---------------------------------------------------

/// Append one length-prefixed frame to `out`, letting `fill` append
/// the body directly into the same buffer.
///
/// Writes a 4-byte length placeholder, runs `fill`, then patches the
/// placeholder with the observed body length — one buffer, no copy.
/// The transport uses this to coalesce every frame of an event-loop
/// iteration into a single write buffer per peer.
///
/// # Panics
///
/// If `fill` appends more than `u32::MAX` bytes.
pub fn encode_frame_into(out: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    fill(out);
    let len = u32::try_from(out.len() - at - 4).expect("frame body exceeds u32::MAX bytes");
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `UnexpectedEof` when the
/// connection closes cleanly between frames.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_core::Distinguished;
    use dynvote_protocol::TxnId;

    fn txn(c: u8, seq: u64) -> TxnId {
        TxnId::new(SiteId(c), seq)
    }

    fn sample_meta() -> CopyMeta {
        CopyMeta {
            version: 42,
            cardinality: 3,
            distinguished: Distinguished::Trio(SiteSet::parse("ABC").unwrap()),
        }
    }

    /// One value of every `Message` variant (and every `StatusOutcome`
    /// arm), shared by the round-trip and byte-identity tests so a new
    /// variant only needs listing once.
    fn all_message_variants() -> Vec<Message> {
        let entries = vec![
            LogEntry {
                version: 1,
                payload: 100,
            },
            LogEntry {
                version: 2,
                payload: u64::MAX,
            },
        ];
        vec![
            Message::VoteRequest { txn: txn(0, 1) },
            Message::VoteGranted {
                txn: txn(1, 2),
                meta: sample_meta(),
                from: SiteId(1),
            },
            Message::VoteBusy {
                txn: txn(2, 3),
                from: SiteId(2),
            },
            Message::CatchUpRequest {
                txn: txn(3, 4),
                after_version: 7,
            },
            Message::CatchUpReply {
                txn: txn(4, 5),
                entries: entries.clone(),
            },
            Message::Commit {
                txn: txn(0, 6),
                meta: CopyMeta {
                    version: 9,
                    cardinality: 4,
                    distinguished: Distinguished::Single(SiteId(3)),
                },
                entries: entries.clone(),
                participants: SiteSet::parse("ABCD").unwrap(),
            },
            Message::Abort { txn: txn(1, 7) },
            Message::StatusQuery {
                txn: txn(2, 8),
                after_version: 3,
                from: SiteId(4),
            },
            Message::StatusReply {
                txn: txn(3, 9),
                outcome: StatusOutcome::Committed {
                    meta: CopyMeta {
                        version: 5,
                        cardinality: 5,
                        distinguished: Distinguished::Irrelevant,
                    },
                    entries,
                    participants: SiteSet::all(5),
                },
            },
            Message::StatusReply {
                txn: txn(4, 10),
                outcome: StatusOutcome::Aborted,
            },
            Message::StatusReply {
                txn: txn(0, 11),
                outcome: StatusOutcome::Unknown,
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in all_message_variants() {
            let bytes = encode_message(&msg);
            assert_eq!(decode_message(&bytes).unwrap(), msg, "{}", msg.kind());
        }
    }

    #[test]
    fn into_encoders_are_byte_identical_and_append_only() {
        // The reusable-buffer encoders back the transport's batched
        // write path; they must produce exactly the allocating
        // encoders' bytes, appended after whatever the buffer already
        // holds (prior frames of the same batch).
        let preamble = b"prior-frame-bytes".to_vec();
        for msg in all_message_variants() {
            let mut buf = preamble.clone();
            encode_message_into(&mut buf, &msg);
            assert_eq!(&buf[..preamble.len()], &preamble[..], "{}", msg.kind());
            assert_eq!(
                &buf[preamble.len()..],
                encode_message(&msg),
                "{}",
                msg.kind()
            );
        }
        let mut buf = preamble.clone();
        encode_request_into(&mut buf, 7, &ClientOp::Update { key: 3 });
        assert_eq!(
            &buf[preamble.len()..],
            encode_request(7, &ClientOp::Update { key: 3 })
        );
        let mut buf = preamble.clone();
        let reply = ClientReply::Committed { version: 12 };
        encode_reply_into(&mut buf, 9, &reply);
        assert_eq!(&buf[preamble.len()..], encode_reply(9, &reply));
    }

    #[test]
    fn encode_frame_into_length_prefixes_in_place() {
        let msg = Message::VoteRequest { txn: txn(0, 1) };
        let mut buf = vec![0xAB, 0xCD];
        encode_frame_into(&mut buf, |out| encode_message_into(out, &msg));
        let body = encode_message(&msg);
        assert_eq!(&buf[..2], &[0xAB, 0xCD]);
        assert_eq!(&buf[2..6], (body.len() as u32).to_le_bytes());
        assert_eq!(&buf[6..], body);
    }

    #[test]
    fn every_distinguished_variant_round_trips() {
        for ds in [
            Distinguished::Irrelevant,
            Distinguished::Single(SiteId(7)),
            Distinguished::Trio(SiteSet::parse("BDE").unwrap()),
            Distinguished::Set(SiteSet::parse("AE").unwrap()),
        ] {
            let msg = Message::VoteGranted {
                txn: txn(0, 1),
                meta: CopyMeta {
                    version: 1,
                    cardinality: 2,
                    distinguished: ds,
                },
                from: SiteId(0),
            };
            let bytes = encode_message(&msg);
            assert_eq!(decode_message(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn every_client_frame_round_trips() {
        let ops = vec![
            ClientOp::Update { key: 0 },
            ClientOp::Update { key: 17 },
            ClientOp::Read { key: 0 },
            ClientOp::Read { key: u32::MAX },
            ClientOp::Crash,
            ClientOp::Recover,
            ClientOp::SetReachable(SiteSet::parse("ACE").unwrap()),
            ClientOp::Probe { key: 2 },
            ClientOp::Audit,
            ClientOp::Events,
            ClientOp::DumpLog { key: 5 },
            ClientOp::Status,
            ClientOp::NetStats,
            ClientOp::ShardStats,
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let bytes = encode_request(i as u64, &op);
            assert_eq!(decode_request(&bytes).unwrap(), (i as u64, op));
        }
        let replies = vec![
            ClientReply::Committed { version: 12 },
            ClientReply::ReadServed,
            ClientReply::Rejected,
            ClientReply::Busy,
            ClientReply::TimedOut,
            ClientReply::Down,
            ClientReply::Ok,
            ClientReply::Probe {
                meta: sample_meta(),
                locked: true,
                in_doubt: false,
                down: true,
            },
            ClientReply::Audit {
                commits: 9,
                log_len: 13,
                consistent: true,
            },
            ClientReply::Events {
                counts: vec![0, 3, 0, 17, u64::MAX],
            },
            ClientReply::Events { counts: Vec::new() },
            ClientReply::Log {
                meta: sample_meta(),
                entries: vec![
                    LogEntry {
                        version: 1,
                        payload: 11,
                    },
                    LogEntry {
                        version: 2,
                        payload: 22,
                    },
                ],
            },
            ClientReply::Log {
                meta: sample_meta(),
                entries: Vec::new(),
            },
            ClientReply::Status {
                algorithm: "hybrid".to_string(),
                objects: 16,
                meta: sample_meta(),
                reachable: SiteSet::parse("ABDE").unwrap(),
                locked: false,
                in_doubt: true,
                down: false,
                log_len: 42,
                commits: 17,
                wal_epoch: Some(3),
            },
            ClientReply::Status {
                algorithm: String::new(),
                objects: 1,
                meta: sample_meta(),
                reachable: SiteSet::all(5),
                locked: true,
                in_doubt: false,
                down: true,
                log_len: 0,
                commits: 0,
                wal_epoch: None,
            },
            ClientReply::NetStats {
                counts: vec![1, 0, 99, u64::MAX],
            },
            ClientReply::NetStats { counts: Vec::new() },
            ClientReply::ShardStats {
                workers: 4,
                counts: vec![10, 20, 30, 40, 3, 2, 1, 0, 7, 123_456],
            },
            ClientReply::ShardStats {
                workers: 1,
                counts: Vec::new(),
            },
            ClientReply::Overloaded,
        ];
        for (i, reply) in replies.into_iter().enumerate() {
            let bytes = encode_reply(i as u64, &reply);
            assert_eq!(decode_reply(&bytes).unwrap(), (i as u64, reply));
        }
    }

    #[test]
    fn malformed_bodies_are_rejected_not_panicked() {
        assert_eq!(decode_message(&[]), Err(WireError::Truncated));
        assert_eq!(decode_message(&[0xEE]), Err(WireError::BadTag(0xEE)));
        // VoteRequest with a truncated txn.
        assert_eq!(decode_message(&[1, 0]), Err(WireError::Truncated));
        // Valid VoteRequest with junk appended.
        let mut bytes = encode_message(&Message::VoteRequest { txn: txn(0, 1) });
        bytes.push(0);
        assert_eq!(decode_message(&bytes), Err(WireError::TrailingBytes(1)));
        // Entry count far beyond the body length must not allocate.
        let mut reply = Vec::new();
        put_u8(&mut reply, 5);
        put_txn(&mut reply, txn(0, 1));
        put_u32(&mut reply, u32::MAX);
        assert_eq!(decode_message(&reply), Err(WireError::Truncated));
    }

    #[test]
    fn peer_batch_frames_round_trip_many_objects() {
        use dynvote_protocol::ObjectId;
        // Build the batch exactly as the transport does: accumulate
        // length-prefixed message bodies in a reusable buffer, then wrap
        // them behind the batch tag.
        let msgs: Vec<Message> = (0..5u32)
            .map(|o| Message::VoteRequest {
                txn: TxnId::keyed(SiteId(0), u64::from(o) + 1, ObjectId(o)),
            })
            .collect();
        let mut bodies = Vec::new();
        for msg in &msgs {
            encode_frame_into(&mut bodies, |out| encode_message_into(out, msg));
        }
        let mut frame = Vec::new();
        encode_batch_into(&mut frame, msgs.len() as u32, &bodies);
        let mut decoded = Vec::new();
        let n = decode_peer_frame(&frame, |m| decoded.push(m)).unwrap();
        assert_eq!(n, 5);
        assert_eq!(decoded, msgs);

        // A single bare message still decodes through the same entry
        // point (count 1), so mixed senders interoperate.
        let single = encode_message(&msgs[0]);
        let mut decoded = Vec::new();
        assert_eq!(decode_peer_frame(&single, |m| decoded.push(m)), Ok(1));
        assert_eq!(decoded, vec![msgs[0].clone()]);

        // Hostile batches: truncated inner body, trailing bytes, bad
        // inner message — all typed errors, never panics.
        let mut torn = frame.clone();
        torn.truncate(frame.len() - 3);
        assert!(decode_peer_frame(&torn, |_| ()).is_err());
        let mut trailing = frame.clone();
        trailing.push(0xEE);
        assert_eq!(
            decode_peer_frame(&trailing, |_| ()),
            Err(WireError::TrailingBytes(1))
        );
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut stream = Vec::new();
        let a = encode_message(&Message::Abort { txn: txn(1, 2) });
        let b = encode_request(7, &ClientOp::Probe { key: 0 });
        write_frame(&mut stream, &a).unwrap();
        write_frame(&mut stream, &b).unwrap();
        let mut cursor = &stream[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), a);
        assert_eq!(read_frame(&mut cursor).unwrap(), b);
        assert!(read_frame(&mut cursor).is_err(), "clean EOF");
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = &stream[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
