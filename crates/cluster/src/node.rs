//! The per-site node runtime: one OS thread driving a [`ShardedSite`]
//! — many independent per-object protocol kernels behind one router.
//!
//! A node owns the protocol kernels for its site and translates their
//! [`Action`]s into the outside world: sends go to the [`Transport`],
//! `SetTimer` becomes an entry in a wall-clock timer heap, and
//! `Resolved` completes the client request that started the
//! transaction. Everything arrives through one `mpsc` inbox
//! ([`NodeEvent`]) — peer frames, client requests, and shutdown — so
//! the kernels are only ever touched from their own thread and need no
//! locking. Transactions on different objects never contend: each
//! shard has its own lock, commit chain, and prepare record.
//!
//! **Group commit.** The event loop drains a whole inbox batch while
//! the kernels *stage* their actions; then **one** durability barrier
//! seals every shard's WAL ops as a single record, and only afterwards
//! are the staged sends and client replies dispatched. The force-write
//! discipline is intact — nothing announced is ever lost — but the
//! fsync is amortized across every object the batch touched.
//!
//! Fault injection mirrors the simulator's model exactly:
//!
//! * **crash** wipes the kernel's volatile state (durable
//!   prepare/commit records survive), cancels pending wall-clock timers
//!   (they guard volatile transactions) and fails parked clients with
//!   [`ClientReply::Down`]. The thread itself stays up so control
//!   traffic keeps working.
//! * **recover** runs the Section V-C restart protocol
//!   (`Make_Current`); its transaction is tagged so a resulting commit
//!   is booked as restart traffic, not workload.
//! * **partitions** are emulated at the node boundary by a
//!   [`SiteSet`] of reachable sites, filtering both inbound and
//!   outbound messages — transport-agnostic, and equivalent to the
//!   simulator's link topology once in-flight traffic has drained.

use crate::frontdoor::HttpTx;
use crate::reactor::ConnTx;
use crate::transport::{NetStats, Transport};
use crate::wire::{ClientOp, ClientReply};
use dynvote_core::{AlgorithmKind, BackoffPolicy, SiteId, SiteSet, TimerWheel};
use dynvote_protocol::{
    Action, CountingSink, DurableState, EventSink, FanoutSink, LogEntry, Message, ObjectId,
    RenderSink, ResolveReason, ShardedSite, TimerKind, TxnId,
};
use dynvote_storage::{NodeStore, RecoveryReport, ShardHandle, StorageError, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a client reply should go.
#[derive(Debug, Clone)]
pub enum ReplySink {
    /// In-process client: replies land on an `mpsc` channel as
    /// `(correlation id, reply)` pairs.
    Channel(Sender<(u64, ClientReply)>),
    /// Remote binary client: the reply is framed and staged on its
    /// reactor-owned connection; the reactor writes it out.
    Conn(ConnTx),
    /// HTTP front-door client: the reply is rendered to an HTTP
    /// response, staged on the connection, and the admission slot is
    /// released (see [`crate::frontdoor`]).
    Http(HttpTx),
    /// Discard the reply (fire-and-forget control operations).
    Null,
}

impl ReplySink {
    /// Deliver a reply, best-effort — a vanished client is not an
    /// error.
    pub fn send(&self, id: u64, reply: ClientReply) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send((id, reply));
            }
            ReplySink::Conn(tx) => tx.send_reply(id, &reply),
            ReplySink::Http(tx) => tx.deliver(&reply),
            ReplySink::Null => {}
        }
    }
}

/// Everything that can arrive on a node's inbox.
#[derive(Debug)]
pub enum NodeEvent {
    /// A protocol message from another site.
    Peer {
        /// The sending site.
        from: SiteId,
        /// The message.
        msg: Message,
    },
    /// A client request with a correlation id and a reply path.
    Client {
        /// Client-chosen correlation id, echoed in the reply.
        id: u64,
        /// The requested operation.
        op: ClientOp,
        /// Where the reply goes.
        reply: ReplySink,
    },
    /// Stop the node thread (parked clients are failed with `Down`).
    Shutdown,
}

/// Wall-clock protocol deadlines for one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Coordinator: how long to wait for votes before deciding with
    /// whatever arrived. Only ever waited out when sites are down or
    /// partitioned away — with all peers reachable the coordinator
    /// decides on the last reply.
    pub vote_deadline: Duration,
    /// Coordinator: how long to wait for a catch-up reply before
    /// aborting.
    pub catchup_deadline: Duration,
    /// Prepared-subordinate retry schedule, in **milliseconds** (shared
    /// with the simulator via [`BackoffPolicy`]).
    pub backoff: BackoffPolicy,
    /// Seed for the jitter RNG (combined with the site id, so nodes
    /// jitter independently).
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            vote_deadline: Duration::from_millis(25),
            catchup_deadline: Duration::from_millis(50),
            backoff: BackoffPolicy::new(5.0, 80.0).with_jitter(0.1),
            seed: 0x00D1_5C0D,
        }
    }
}

/// The cluster-wide omniscient commit ledger: every coordinator records
/// its commits here, and divergence (two different payloads claiming
/// the same version number of the same object) or version gaps are
/// flagged immediately. One independent chain per object — commits on
/// different shards never order against each other. This is the
/// live-cluster analogue of the simulator's ledger — a checking device,
/// not part of the protocol.
#[derive(Debug)]
pub struct ClusterLedger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    /// Per-object payload chains; `chains[o][v - 1]` holds the payload
    /// committed at version `v` of object `o`.
    chains: Vec<Vec<u64>>,
    violations: Vec<String>,
}

impl ClusterLedger {
    /// A fresh, empty ledger tracking `objects` independent chains.
    #[must_use]
    pub fn new(objects: usize) -> Self {
        ClusterLedger {
            inner: Mutex::new(LedgerInner {
                chains: vec![Vec::new(); objects.max(1)],
                violations: Vec::new(),
            }),
        }
    }

    fn record(&self, site: SiteId, object: ObjectId, version: u64, payload: u64) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        let o = object.index();
        if o >= inner.chains.len() {
            inner
                .violations
                .push(format!("site {site} committed on unknown object {object}"));
            return;
        }
        let next = inner.chains[o].len() as u64 + 1;
        match version.cmp(&next) {
            Ordering::Equal => inner.chains[o].push(payload),
            Ordering::Less => {
                let existing = inner.chains[o][(version - 1) as usize];
                inner.violations.push(format!(
                    "site {site} re-committed {object} version {version} \
                     (payload {payload:#x}, chain has {existing:#x})"
                ));
            }
            Ordering::Greater => {
                inner.violations.push(format!(
                    "site {site} committed {object} version {version} but \
                     the chain only reaches {}",
                    next - 1
                ));
            }
        }
    }

    /// Number of versions committed cluster-wide, summed over every
    /// object's chain (including `Make_Current` restart commits).
    #[must_use]
    pub fn chain_len(&self) -> u64 {
        let inner = self.inner.lock().expect("ledger poisoned");
        inner.chains.iter().map(|c| c.len() as u64).sum()
    }

    /// Length of one object's chain (0 for an unknown object).
    #[must_use]
    pub fn chain_len_of(&self, object: ObjectId) -> u64 {
        let inner = self.inner.lock().expect("ledger poisoned");
        inner
            .chains
            .get(object.index())
            .map_or(0, |c| c.len() as u64)
    }

    /// All violations flagged so far (empty on a correct run).
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("ledger poisoned")
            .violations
            .clone()
    }

    /// Seed one object's chain from a recovered site's durable log, so
    /// a durable cluster rebooted from disk audits against the history
    /// its disks already hold rather than flagging the first
    /// post-reboot commit as a gap. Entries extend the chain exactly
    /// where they continue it; anything already covered is left for
    /// [`Self::check_log`] and [`Self::record`] to cross-check. Priming
    /// with every site's logs in any order converges on the longest
    /// recovered prefix per object.
    pub fn prime(&self, object: ObjectId, log: &[LogEntry]) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        let o = object.index();
        if o >= inner.chains.len() {
            return;
        }
        for entry in log {
            if entry.version == inner.chains[o].len() as u64 + 1 {
                inner.chains[o].push(entry.payload);
            }
        }
    }

    /// True if `log` is a gapless prefix of `object`'s global chain and
    /// `meta_version` matches its length — the paper's invariant for
    /// every copy.
    #[must_use]
    pub fn check_log(&self, object: ObjectId, log: &[LogEntry], meta_version: u64) -> bool {
        let inner = self.inner.lock().expect("ledger poisoned");
        let Some(chain) = inner.chains.get(object.index()) else {
            return false;
        };
        meta_version == log.len() as u64
            && log
                .iter()
                .enumerate()
                .all(|(i, e)| e.version == (i + 1) as u64 && chain.get(i) == Some(&e.payload))
    }
}

/// The verdict of a cluster-wide audit (see [`crate::Cluster::audit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Workload updates committed, summed over all coordinators
    /// (`Make_Current` restart commits excluded).
    pub commits: u64,
    /// Length of the global version chain (restart commits included).
    pub chain_len: u64,
    /// True if every site's durable log is a gapless prefix of the
    /// chain and no ledger violation was flagged.
    pub consistent: bool,
    /// Human-readable ledger violations (empty on a correct run).
    pub violations: Vec<String>,
}

/// Where (and how) one node keeps its durable state on disk.
#[derive(Debug, Clone)]
pub struct NodeDurability {
    /// This site's data directory (each site owns its own).
    pub dir: PathBuf,
    /// WAL fsync discipline and rotation threshold.
    pub store: StoreConfig,
}

struct PendingClient {
    id: u64,
    reply: ReplySink,
}

/// A live protocol site: the sharded kernels plus their wall-clock
/// surroundings. Consume with [`Node::run`] on a dedicated thread.
pub struct Node {
    id: SiteId,
    n: usize,
    objects: usize,
    algorithm: AlgorithmKind,
    site: ShardedSite,
    /// `Some` when this node owns a data directory: every boot and
    /// every [`ClientOp::Recover`] reloads the kernels' durable state
    /// from disk instead of trusting process memory.
    durability: Option<NodeDurability>,
    /// The shared multi-object store behind every shard's persistence
    /// hook, kept so the event loop can issue the group-commit barrier
    /// and drive WAL rotation. `None` for amnesiac nodes.
    store: Option<Arc<Mutex<NodeStore>>>,
    /// The installed event sink, kept so a disk reboot can re-install
    /// it on the freshly restored kernel.
    sink: Option<Arc<dyn EventSink>>,
    transport: Box<dyn Transport>,
    rx: Receiver<NodeEvent>,
    config: NodeConfig,
    ledger: Arc<ClusterLedger>,
    down: bool,
    reachable: SiteSet,
    /// Wall-clock protocol deadlines, in the shared [`TimerWheel`] (the
    /// simulator arms the same wheel under a virtual clock). Its epoch
    /// is bumped on every crash so timers armed before the crash are
    /// recognizably stale (volatile state they guard is gone).
    timers: TimerWheel<Instant, (TxnId, TimerKind)>,
    /// The cluster-shared counting sink, kept to answer
    /// [`ClientOp::Events`] with this site's tally row.
    events: Option<Arc<CountingSink>>,
    /// This node's reactor counters, kept to answer
    /// [`ClientOp::NetStats`]. `None` under the channel transport.
    net: Option<Arc<NetStats>>,
    pending: HashMap<TxnId, PendingClient>,
    restart_txns: HashSet<TxnId>,
    payload_seq: u64,
    commits: u64,
    rng: StdRng,
    /// Reusable action sink: every kernel call emits into this buffer
    /// and [`Node::apply`] drains it, so the steady-state event loop
    /// allocates no per-event `Vec<Action>`.
    scratch: Vec<Action>,
}

/// How many already-queued inbox events one loop iteration may drain
/// behind the blocking receive before timers fire and the transport
/// flushes. Bounded so a message storm cannot starve timers; large
/// enough that a commit fan-in coalesces into one flush.
const INBOX_BATCH: usize = 128;

impl Node {
    /// Build the runtime for site `id` of an `n`-site cluster hosting
    /// `objects` independent replicated objects under `algorithm`,
    /// reading events from `rx` and sending through `transport`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: SiteId,
        n: usize,
        objects: usize,
        algorithm: AlgorithmKind,
        config: NodeConfig,
        transport: Box<dyn Transport>,
        rx: Receiver<NodeEvent>,
        ledger: Arc<ClusterLedger>,
    ) -> Self {
        let site = ShardedSite::new(id, n, objects, || algorithm.instantiate(n));
        let rng = StdRng::seed_from_u64(config.seed ^ (0x9E37 + u64::from(id.0)));
        Node {
            id,
            n,
            objects,
            algorithm,
            site,
            durability: None,
            store: None,
            sink: None,
            transport,
            rx,
            config,
            ledger,
            down: false,
            reachable: SiteSet::all(n),
            timers: TimerWheel::new(),
            events: None,
            net: None,
            pending: HashMap::new(),
            restart_txns: HashSet::new(),
            payload_seq: 0,
            commits: 0,
            rng,
            scratch: Vec::new(),
        }
    }

    /// Give this node a data directory: recover every hosted object's
    /// durable state from it (snapshot + keyed WAL replay) and install
    /// per-shard handles onto the shared [`NodeStore`] as each kernel's
    /// [`dynvote_protocol::Persistence`] hook, so every durable-write
    /// point (prepare records, commit records, log appends, metadata
    /// installs) reaches the WAL before the action that announced it
    /// leaves the node.
    ///
    /// Call before [`Node::run`]. Returns what recovery found.
    pub fn enable_durability(
        &mut self,
        durability: NodeDurability,
    ) -> Result<RecoveryReport, StorageError> {
        let (store, states, report) = NodeStore::open(
            &durability.dir,
            durability.store,
            self.objects,
            DurableState::initial(self.n),
        )?;
        let core = Arc::new(Mutex::new(store));
        let mut site = ShardedSite::restore(self.id, self.n, states, || {
            self.algorithm.instantiate(self.n)
        });
        site.set_persistence(|object| Box::new(ShardHandle::new(Arc::clone(&core), object)));
        if let Some(sink) = &self.sink {
            site.set_sink(Arc::clone(sink));
        }
        self.site = site;
        self.store = Some(core);
        self.durability = Some(durability);
        Ok(report)
    }

    /// True when this node reloads state from a data directory.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// One object's durable committed log (what recovery
    /// reconstructed, for a freshly booted durable node). Used to prime
    /// the cluster ledger's per-object chains before the first
    /// post-reboot commit. Empty for unhosted objects.
    #[must_use]
    pub fn recovered_log(&self, object: ObjectId) -> &[LogEntry] {
        self.site
            .shard(object)
            .map_or(&[], |shard| &shard.durable().log)
    }

    /// Install the cluster-shared event sink: every protocol event the
    /// kernel emits is counted per site (and, with `trace`, rendered to
    /// stderr as it happens). Must be called before [`Node::run`].
    pub fn set_event_sink(&mut self, counting: Arc<CountingSink>, trace: bool) {
        let sink: Arc<dyn EventSink> = if trace {
            Arc::new(FanoutSink::new(vec![
                counting.clone() as Arc<dyn EventSink>,
                Arc::new(RenderSink),
            ]))
        } else {
            counting.clone()
        };
        self.site.set_sink(Arc::clone(&sink));
        self.sink = Some(sink);
        self.events = Some(counting);
    }

    /// Share the node's reactor counters so [`ClientOp::NetStats`] can
    /// report them. Called by cluster boot under the TCP transport.
    pub fn set_net_stats(&mut self, stats: Arc<NetStats>) {
        self.net = Some(stats);
    }

    /// Rebuild the kernel from what the data directory says, discarding
    /// process memory — the in-process stand-in for a machine reboot.
    /// Under a group-commit fsync policy this honestly loses whatever
    /// the store had not yet synced.
    ///
    /// # Panics
    ///
    /// On I/O failure, matching the store's own hook discipline: a
    /// durable site that cannot read its own disk cannot rejoin.
    /// Corrupt or torn files do **not** panic — recovery truncates and
    /// reports.
    fn reboot_from_disk(&mut self) {
        let Some(durability) = self.durability.clone() else {
            return;
        };
        let report = self
            .enable_durability(durability)
            .expect("reboot from data dir");
        if let Some(torn) = &report.truncated {
            eprintln!(
                "site {}: WAL tail truncated at epoch {} offset {}: {}",
                self.id, torn.epoch, torn.offset, torn.reason
            );
        }
    }

    /// A durable node that boots with a prepare record on disk is in
    /// doubt on that transaction: before serving any traffic it must
    /// re-acquire the lock the record guards and resume the
    /// termination protocol (Section V-C), exactly as the in-process
    /// recover path does. Without this, the site comes up unlocked —
    /// the next vote request overwrites the prepare record and the
    /// in-doubt commit is orphaned, which can wedge the whole cluster
    /// (a coordinator that committed alone is the only current copy,
    /// and no partition is ever distinguished again). The StatusQuery
    /// broadcast may race the peers' own boots; the PreparedRetry
    /// timer the round arms re-sends it until someone answers.
    fn resume_in_doubt(&mut self) {
        if self.durability.is_none() || !self.site.any_in_doubt() {
            return;
        }
        for object in 0..self.objects {
            let object = ObjectId(object as u32);
            if self.site.shard(object).is_some_and(|s| s.is_in_doubt()) {
                let payload = self.fresh_payload();
                if let Some(shard) = self.site.shard_mut(object) {
                    shard.recover(payload, &mut self.scratch);
                }
            }
        }
        self.apply();
        self.transport.flush();
    }

    /// The event loop: block on the inbox up to the next timer
    /// deadline, drain the burst queued behind the first event
    /// (bounded by [`INBOX_BATCH`]) while the kernels **stage** their
    /// actions, fire due timers, then [`Node::apply`] the whole batch
    /// behind **one** group-commit barrier and flush the transport
    /// once, repeat until [`NodeEvent::Shutdown`].
    ///
    /// The single barrier + single flush per iteration is what makes
    /// the durable hot path cheap: every WAL op the batch produced —
    /// across every shard — is sealed by one fsync, and every frame for
    /// one peer leaves in one `write_all`. Idle timeouts also flush, so
    /// nothing lingers buffered when traffic stops.
    pub fn run(mut self) {
        self.resume_in_doubt();
        'outer: loop {
            let timeout = self
                .next_timer_in()
                .unwrap_or(Duration::from_millis(50))
                .min(Duration::from_millis(50));
            match self.rx.recv_timeout(timeout) {
                Ok(NodeEvent::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Ok(event) => {
                    self.handle_event(event);
                    for _ in 1..INBOX_BATCH {
                        match self.rx.try_recv() {
                            Ok(NodeEvent::Shutdown) | Err(TryRecvError::Disconnected) => {
                                break 'outer;
                            }
                            Ok(event) => self.handle_event(event),
                            Err(TryRecvError::Empty) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
            self.fire_due_timers();
            // One barrier seals every shard's staged WAL ops, then the
            // staged sends and replies dispatch.
            self.apply();
            // Between batches: rotate the WAL if it has grown past the
            // configured threshold (no-op for amnesiac nodes). Safe
            // here because apply() just drained the pending record.
            self.maybe_rotate();
            self.transport.flush();
        }
        self.apply();
        self.transport.flush();
        for (_, client) in self.pending.drain() {
            client.reply.send(client.id, ClientReply::Down);
        }
    }

    /// Feed one inbox event to the kernels. Actions are **staged** in
    /// the scratch sink; nothing is sent or replied until the batch's
    /// [`Node::apply`] — except control and diagnostic operations,
    /// which manage the staging discipline explicitly (see
    /// [`Node::handle_client`]).
    fn handle_event(&mut self, event: NodeEvent) {
        match event {
            NodeEvent::Peer { from, msg } => {
                // A crashed site hears nothing; a partitioned-away
                // sender's frames are dropped at the boundary.
                if self.down || !self.reachable.contains(from) {
                    return;
                }
                // Unhosted objects are dropped, not panicked on: a
                // misconfigured or hostile peer must not kill the node.
                self.site.handle_message(from, msg, &mut self.scratch);
            }
            NodeEvent::Client { id, op, reply } => self.handle_client(id, op, reply),
            NodeEvent::Shutdown => {}
        }
    }

    /// Resolve a wire key to a hosted object, or fail the client.
    fn object_for(&self, key: u32, id: u64, reply: &ReplySink) -> Option<ObjectId> {
        if (key as usize) < self.objects {
            Some(ObjectId(key))
        } else {
            reply.send(id, ClientReply::Rejected);
            None
        }
    }

    fn handle_client(&mut self, id: u64, op: ClientOp, reply: ReplySink) {
        match op {
            ClientOp::Update { key } => {
                if self.down {
                    reply.send(id, ClientReply::Down);
                    return;
                }
                let Some(object) = self.object_for(key, id, &reply) else {
                    return;
                };
                let payload = self.fresh_payload();
                let start = self.scratch.len();
                self.site.start_update(object, payload, &mut self.scratch);
                self.register_client(id, reply, start);
            }
            ClientOp::Read { key } => {
                if self.down {
                    reply.send(id, ClientReply::Down);
                    return;
                }
                let Some(object) = self.object_for(key, id, &reply) else {
                    return;
                };
                let start = self.scratch.len();
                self.site.start_read(object, &mut self.scratch);
                self.register_client(id, reply, start);
            }
            ClientOp::Crash => {
                // Dispatch whatever earlier events in this batch staged
                // *before* the crash wipes volatile state: those
                // actions were produced by a live site and their
                // durable records are already hooked.
                self.apply();
                if !self.down {
                    self.down = true;
                    // Lazy cancellation: already-armed entries become
                    // stale and are skimmed off at the next peek/pop.
                    self.timers.bump_epoch();
                    self.site.crash();
                    for (_, client) in self.pending.drain() {
                        client.reply.send(client.id, ClientReply::Down);
                    }
                }
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::Recover => {
                self.apply();
                if self.down {
                    self.down = false;
                    // A durable site restarts from its disk, not from
                    // whatever this process still holds in memory —
                    // the same code path a genuinely rebooted process
                    // takes.
                    self.reboot_from_disk();
                    for object in 0..self.objects {
                        let object = ObjectId(object as u32);
                        let payload = self.fresh_payload();
                        if let Some(shard) = self.site.shard_mut(object) {
                            shard.recover(payload, &mut self.scratch);
                        }
                    }
                    // Tag the Make_Current transactions (per shard, if
                    // any started) so their commits are booked as
                    // restart traffic.
                    for action in &self.scratch {
                        if let Action::Broadcast {
                            msg: Message::VoteRequest { txn },
                        } = action
                        {
                            self.restart_txns.insert(*txn);
                        }
                    }
                    self.apply();
                }
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::SetReachable(set) => {
                // Staged sends were produced under the old topology;
                // let them leave before the partition takes effect.
                self.apply();
                self.reachable = set;
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::Probe { key } => {
                let Some(object) = self.object_for(key, id, &reply) else {
                    return;
                };
                // Seal staged durable ops before announcing state.
                self.apply();
                let shard = self.site.shard(object).expect("validated object");
                reply.send(
                    id,
                    ClientReply::Probe {
                        meta: shard.meta(),
                        locked: shard.is_locked(),
                        in_doubt: shard.is_in_doubt(),
                        down: self.down,
                    },
                );
            }
            ClientOp::Events => {
                let counts = self
                    .events
                    .as_ref()
                    .map(|sink| sink.tallies().row(self.id).to_vec())
                    .unwrap_or_default();
                reply.send(id, ClientReply::Events { counts });
            }
            ClientOp::Audit => {
                self.apply();
                // Consistency seen from this node: every shard's log is
                // a gapless prefix of its object's chain AND no commit
                // anywhere was flagged divergent — so remote auditors
                // (the loadgen CLI) learn about ledger violations too.
                let consistent = self.ledger.violations().is_empty()
                    && self.site.iter().enumerate().all(|(o, shard)| {
                        self.ledger
                            .check_log(ObjectId(o as u32), shard.log(), shard.meta().version)
                    });
                let log_len: u64 = self.site.iter().map(|s| s.log().len() as u64).sum();
                reply.send(
                    id,
                    ClientReply::Audit {
                        commits: self.commits,
                        log_len,
                        consistent,
                    },
                );
            }
            ClientOp::DumpLog { key } => {
                let Some(object) = self.object_for(key, id, &reply) else {
                    return;
                };
                self.apply();
                let shard = self.site.shard(object).expect("validated object");
                reply.send(
                    id,
                    ClientReply::Log {
                        meta: shard.meta(),
                        entries: shard.log().to_vec(),
                    },
                );
            }
            ClientOp::Status => {
                self.apply();
                let shard = self.site.shard(ObjectId::ZERO).expect("object 0 hosted");
                let log_len: u64 = self.site.iter().map(|s| s.log().len() as u64).sum();
                reply.send(
                    id,
                    ClientReply::Status {
                        algorithm: self.algorithm.to_string(),
                        objects: self.objects as u32,
                        meta: shard.meta(),
                        reachable: self.reachable,
                        locked: self.site.any_locked(),
                        in_doubt: self.site.any_in_doubt(),
                        down: self.down,
                        log_len,
                        commits: self.commits,
                        wal_epoch: shard.wal_epoch(),
                    },
                );
            }
            ClientOp::NetStats => {
                let counts = self
                    .net
                    .as_ref()
                    .map(|stats| stats.snapshot())
                    .unwrap_or_default();
                reply.send(id, ClientReply::NetStats { counts });
            }
        }
    }

    /// Park the client on the transaction its request started, found by
    /// scanning the actions the kernel just staged — `start` is the
    /// scratch length recorded before the kernel call, so only *this*
    /// request's actions are scanned even though the sink accumulates
    /// across the whole batch (the kernel does not return the `TxnId`
    /// directly).
    fn register_client(&mut self, id: u64, reply: ReplySink, start: usize) {
        let txn = self.scratch[start..]
            .iter()
            .find_map(|action| match action {
                Action::Broadcast {
                    msg: Message::VoteRequest { txn },
                }
                | Action::Resolved { txn, .. }
                | Action::SetTimer { txn, .. } => Some(*txn),
                _ => None,
            });
        match txn {
            Some(txn) => {
                self.pending.insert(txn, PendingClient { id, reply });
            }
            // The kernel refused to start anything — treat as busy.
            None => reply.send(id, ClientReply::Busy),
        }
    }

    /// Drain the scratch sink — the whole batch's staged actions —
    /// interpreting each one. The buffer is taken out of `self` for the
    /// duration (no kernel re-entry happens inside) and put back with
    /// its capacity intact. Idempotent: an empty sink costs one
    /// no-op barrier check.
    fn apply(&mut self) {
        // Group-commit barrier first: every WAL op any shard staged
        // through its persistence hook this batch is sealed as one
        // record and fsynced (per the fsync policy) before any send or
        // client reply below announces it. One fsync covers every
        // object the batch touched.
        self.site.sync_persistence();
        let mut actions = std::mem::take(&mut self.scratch);
        // Ledger bookkeeping first: a commit must be globally recorded
        // before the Commit fan-out below can trigger a dependent
        // commit (version + 1) on another thread, or the ledger would
        // flag a spurious gap.
        let mut committed: HashMap<TxnId, u64> = HashMap::new();
        for action in &actions {
            if let Action::CommitRecorded {
                version,
                payload,
                txn,
            } = action
            {
                self.ledger.record(self.id, txn.object, *version, *payload);
                committed.insert(*txn, *version);
                if !self.restart_txns.contains(txn) {
                    self.commits += 1;
                }
            }
        }
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.send(to, msg),
                Action::Broadcast { msg } => {
                    for i in 0..self.n {
                        let to = SiteId(i as u8);
                        if to != self.id {
                            self.send(to, msg.clone());
                        }
                    }
                }
                Action::SetTimer { txn, kind } => self.arm_timer(txn, kind),
                Action::Resolved { txn, reason } => {
                    self.restart_txns.remove(&txn);
                    if let Some(client) = self.pending.remove(&txn) {
                        let reply = match reason {
                            ResolveReason::Committed => ClientReply::Committed {
                                version: committed.get(&txn).copied().unwrap_or_else(|| {
                                    self.site.shard(txn.object).map_or(0, |s| s.meta().version)
                                }),
                            },
                            ResolveReason::ReadServed => ClientReply::ReadServed,
                            ResolveReason::NotDistinguished => ClientReply::Rejected,
                            ResolveReason::LockBusy => ClientReply::Busy,
                            ResolveReason::Timeout => ClientReply::TimedOut,
                        };
                        client.reply.send(client.id, reply);
                    }
                }
                // Group mode is a multi-file transaction-manager hook;
                // the live cluster runs single-file updates only.
                Action::DecisionReady { .. } => {}
                Action::CommitRecorded { .. } => {} // handled above
            }
        }
        self.scratch = actions;
    }

    /// Rotate the shared WAL into a fresh epoch behind a node-wide
    /// snapshot of every shard's durable state, when it has grown past
    /// the configured threshold. Called right after [`Node::apply`], so
    /// the pending group-commit record is empty and the snapshot is a
    /// consistent cut across all objects.
    fn maybe_rotate(&mut self) {
        let Some(core) = self.store.clone() else {
            return;
        };
        if !core.lock().expect("store poisoned").wants_rotation() {
            return;
        }
        let states: Vec<DurableState> = self.site.iter().map(|s| s.durable().clone()).collect();
        let outcome = core.lock().expect("store poisoned").rotate(&states);
        if let Err(err) = outcome {
            // Rotation is an optimization; a failed attempt leaves the
            // old epoch intact and will be retried next batch.
            eprintln!("site {}: WAL rotation failed: {err}", self.id);
        }
    }

    fn send(&mut self, to: SiteId, msg: Message) {
        if self.down || !self.reachable.contains(to) {
            return;
        }
        self.transport.send(to, &msg);
    }

    fn arm_timer(&mut self, txn: TxnId, kind: TimerKind) {
        let delay = match kind {
            TimerKind::VoteDeadline => self.config.vote_deadline,
            TimerKind::CatchUpDeadline => self.config.catchup_deadline,
            TimerKind::PreparedRetry => {
                let u: f64 = self.rng.gen();
                let rounds = self
                    .site
                    .shard(txn.object)
                    .map_or(0, |s| s.prepared_rounds());
                let ms = self.config.backoff.delay(rounds, u);
                Duration::from_secs_f64(ms / 1000.0)
            }
        };
        self.timers.schedule(Instant::now() + delay, (txn, kind));
    }

    fn next_timer_in(&mut self) -> Option<Duration> {
        let now = Instant::now();
        self.timers
            .next_deadline()
            .map(|when| when.saturating_duration_since(now))
    }

    /// Fire every due timer, staging the resulting actions; the
    /// caller's [`Node::apply`] dispatches them with the batch.
    fn fire_due_timers(&mut self) {
        while let Some((_, (txn, kind))) = self.timers.pop_due(&Instant::now()) {
            if self.down {
                continue;
            }
            self.site.timer_fired(txn, kind, &mut self.scratch);
        }
    }

    /// A cluster-unique payload: site in the top bits, a local counter
    /// below, so divergence checks can attribute every committed value.
    fn fresh_payload(&mut self) -> u64 {
        self.payload_seq += 1;
        ((u64::from(self.id.0) + 1) << 48) | self.payload_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accepts_the_chain_and_flags_divergence() {
        let ledger = ClusterLedger::new(1);
        let o = ObjectId::ZERO;
        ledger.record(SiteId(0), o, 1, 0x10);
        ledger.record(SiteId(1), o, 2, 0x20);
        assert_eq!(ledger.chain_len(), 2);
        assert!(ledger.violations().is_empty());

        ledger.record(SiteId(2), o, 2, 0x99); // divergent re-commit
        ledger.record(SiteId(3), o, 9, 0x30); // gap
        let violations = ledger.violations();
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("version 2"));
        assert!(violations[1].contains("version 9"));
    }

    #[test]
    fn ledger_checks_logs_as_gapless_prefixes() {
        let ledger = ClusterLedger::new(1);
        let o = ObjectId::ZERO;
        ledger.record(SiteId(0), o, 1, 0x10);
        ledger.record(SiteId(0), o, 2, 0x20);
        let full = [
            LogEntry {
                version: 1,
                payload: 0x10,
            },
            LogEntry {
                version: 2,
                payload: 0x20,
            },
        ];
        assert!(ledger.check_log(o, &full, 2));
        assert!(ledger.check_log(o, &full[..1], 1)); // stale prefix is fine
        assert!(!ledger.check_log(o, &full, 1)); // meta out of step
        let diverged = [LogEntry {
            version: 1,
            payload: 0x99,
        }];
        assert!(!ledger.check_log(o, &diverged, 1));
    }

    #[test]
    fn ledger_chains_are_independent_per_object() {
        let ledger = ClusterLedger::new(3);
        // Version 1 of three different objects: three independent
        // chains, no gaps, no divergence.
        ledger.record(SiteId(0), ObjectId(0), 1, 0xA0);
        ledger.record(SiteId(1), ObjectId(1), 1, 0xB0);
        ledger.record(SiteId(2), ObjectId(2), 1, 0xC0);
        assert!(ledger.violations().is_empty());
        assert_eq!(ledger.chain_len(), 3);
        assert_eq!(ledger.chain_len_of(ObjectId(1)), 1);

        // Same payload at the same version of two objects is fine —
        // but a second version-1 commit on object 1 diverges.
        ledger.record(SiteId(0), ObjectId(1), 1, 0xB1);
        assert_eq!(ledger.violations().len(), 1);

        // A commit on an object the ledger does not track is flagged.
        ledger.record(SiteId(0), ObjectId(9), 1, 0xD0);
        assert_eq!(ledger.violations().len(), 2);

        // check_log keys by object: object 0's log does not validate
        // against object 1's chain.
        let log = [LogEntry {
            version: 1,
            payload: 0xA0,
        }];
        assert!(ledger.check_log(ObjectId(0), &log, 1));
        assert!(!ledger.check_log(ObjectId(1), &log, 1));
    }

    #[test]
    fn ledger_primes_per_object() {
        let ledger = ClusterLedger::new(2);
        let log0 = [
            LogEntry {
                version: 1,
                payload: 0x10,
            },
            LogEntry {
                version: 2,
                payload: 0x20,
            },
        ];
        let log1 = [LogEntry {
            version: 1,
            payload: 0x99,
        }];
        ledger.prime(ObjectId(0), &log0);
        ledger.prime(ObjectId(1), &log1);
        assert_eq!(ledger.chain_len_of(ObjectId(0)), 2);
        assert_eq!(ledger.chain_len_of(ObjectId(1)), 1);
        // Post-prime commits continue each chain where its log left off.
        ledger.record(SiteId(0), ObjectId(0), 3, 0x30);
        ledger.record(SiteId(1), ObjectId(1), 2, 0xAA);
        assert!(ledger.violations().is_empty());
    }
}
