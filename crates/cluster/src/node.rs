//! The per-site node runtime: one OS thread driving one [`SiteActor`].
//!
//! A node owns the protocol kernel for its site and translates the
//! kernel's [`Action`]s into the outside world: sends go to the
//! [`Transport`], `SetTimer` becomes an entry in a wall-clock timer
//! heap, and `Resolved` completes the client request that started the
//! transaction. Everything arrives through one `mpsc` inbox
//! ([`NodeEvent`]) — peer frames, client requests, and shutdown — so
//! the kernel is only ever touched from its own thread and needs no
//! locking.
//!
//! Fault injection mirrors the simulator's model exactly:
//!
//! * **crash** wipes the kernel's volatile state (durable
//!   prepare/commit records survive), cancels pending wall-clock timers
//!   (they guard volatile transactions) and fails parked clients with
//!   [`ClientReply::Down`]. The thread itself stays up so control
//!   traffic keeps working.
//! * **recover** runs the Section V-C restart protocol
//!   (`Make_Current`); its transaction is tagged so a resulting commit
//!   is booked as restart traffic, not workload.
//! * **partitions** are emulated at the node boundary by a
//!   [`SiteSet`] of reachable sites, filtering both inbound and
//!   outbound messages — transport-agnostic, and equivalent to the
//!   simulator's link topology once in-flight traffic has drained.

use crate::frontdoor::HttpTx;
use crate::reactor::ConnTx;
use crate::transport::{NetStats, Transport};
use crate::wire::{ClientOp, ClientReply};
use dynvote_core::{AlgorithmKind, BackoffPolicy, SiteId, SiteSet, TimerWheel};
use dynvote_protocol::{
    Action, CountingSink, DurableState, EventSink, FanoutSink, LogEntry, Message, RenderSink,
    ResolveReason, SiteActor, TimerKind, TxnId,
};
use dynvote_storage::{RecoveryReport, SiteStore, StorageError, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a client reply should go.
#[derive(Debug, Clone)]
pub enum ReplySink {
    /// In-process client: replies land on an `mpsc` channel as
    /// `(correlation id, reply)` pairs.
    Channel(Sender<(u64, ClientReply)>),
    /// Remote binary client: the reply is framed and staged on its
    /// reactor-owned connection; the reactor writes it out.
    Conn(ConnTx),
    /// HTTP front-door client: the reply is rendered to an HTTP
    /// response, staged on the connection, and the admission slot is
    /// released (see [`crate::frontdoor`]).
    Http(HttpTx),
    /// Discard the reply (fire-and-forget control operations).
    Null,
}

impl ReplySink {
    /// Deliver a reply, best-effort — a vanished client is not an
    /// error.
    pub fn send(&self, id: u64, reply: ClientReply) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send((id, reply));
            }
            ReplySink::Conn(tx) => tx.send_reply(id, &reply),
            ReplySink::Http(tx) => tx.deliver(&reply),
            ReplySink::Null => {}
        }
    }
}

/// Everything that can arrive on a node's inbox.
#[derive(Debug)]
pub enum NodeEvent {
    /// A protocol message from another site.
    Peer {
        /// The sending site.
        from: SiteId,
        /// The message.
        msg: Message,
    },
    /// A client request with a correlation id and a reply path.
    Client {
        /// Client-chosen correlation id, echoed in the reply.
        id: u64,
        /// The requested operation.
        op: ClientOp,
        /// Where the reply goes.
        reply: ReplySink,
    },
    /// Stop the node thread (parked clients are failed with `Down`).
    Shutdown,
}

/// Wall-clock protocol deadlines for one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Coordinator: how long to wait for votes before deciding with
    /// whatever arrived. Only ever waited out when sites are down or
    /// partitioned away — with all peers reachable the coordinator
    /// decides on the last reply.
    pub vote_deadline: Duration,
    /// Coordinator: how long to wait for a catch-up reply before
    /// aborting.
    pub catchup_deadline: Duration,
    /// Prepared-subordinate retry schedule, in **milliseconds** (shared
    /// with the simulator via [`BackoffPolicy`]).
    pub backoff: BackoffPolicy,
    /// Seed for the jitter RNG (combined with the site id, so nodes
    /// jitter independently).
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            vote_deadline: Duration::from_millis(25),
            catchup_deadline: Duration::from_millis(50),
            backoff: BackoffPolicy::new(5.0, 80.0).with_jitter(0.1),
            seed: 0x00D1_5C0D,
        }
    }
}

/// The cluster-wide omniscient commit ledger: every coordinator records
/// its commits here, and divergence (two different payloads claiming
/// the same version number) or version gaps are flagged immediately.
/// This is the live-cluster analogue of the simulator's ledger — a
/// checking device, not part of the protocol.
#[derive(Debug, Default)]
pub struct ClusterLedger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    /// Payload committed at each version; index `v - 1` holds version
    /// `v`.
    chain: Vec<u64>,
    violations: Vec<String>,
}

impl ClusterLedger {
    /// A fresh, empty ledger.
    #[must_use]
    pub fn new() -> Self {
        ClusterLedger::default()
    }

    fn record(&self, site: SiteId, version: u64, payload: u64) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        let next = inner.chain.len() as u64 + 1;
        match version.cmp(&next) {
            Ordering::Equal => inner.chain.push(payload),
            Ordering::Less => {
                let existing = inner.chain[(version - 1) as usize];
                inner.violations.push(format!(
                    "site {site} re-committed version {version} \
                     (payload {payload:#x}, chain has {existing:#x})"
                ));
            }
            Ordering::Greater => {
                inner.violations.push(format!(
                    "site {site} committed version {version} but the chain \
                     only reaches {}",
                    next - 1
                ));
            }
        }
    }

    /// Number of versions committed cluster-wide (including
    /// `Make_Current` restart commits).
    #[must_use]
    pub fn chain_len(&self) -> u64 {
        self.inner.lock().expect("ledger poisoned").chain.len() as u64
    }

    /// All violations flagged so far (empty on a correct run).
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("ledger poisoned")
            .violations
            .clone()
    }

    /// Seed the chain from a recovered site's durable log, so a durable
    /// cluster rebooted from disk audits against the history its disks
    /// already hold rather than flagging the first post-reboot commit
    /// as a gap. Entries extend the chain exactly where they continue
    /// it; anything already covered is left for [`Self::check_log`] and
    /// [`Self::record`] to cross-check. Priming with every site's log
    /// in any order converges on the longest recovered prefix.
    pub fn prime(&self, log: &[LogEntry]) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        for entry in log {
            if entry.version == inner.chain.len() as u64 + 1 {
                inner.chain.push(entry.payload);
            }
        }
    }

    /// True if `log` is a gapless prefix of the global chain and
    /// `meta_version` matches its length — the paper's invariant for
    /// every copy.
    #[must_use]
    pub fn check_log(&self, log: &[LogEntry], meta_version: u64) -> bool {
        let inner = self.inner.lock().expect("ledger poisoned");
        meta_version == log.len() as u64
            && log
                .iter()
                .enumerate()
                .all(|(i, e)| e.version == (i + 1) as u64 && inner.chain.get(i) == Some(&e.payload))
    }
}

/// The verdict of a cluster-wide audit (see [`crate::Cluster::audit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Workload updates committed, summed over all coordinators
    /// (`Make_Current` restart commits excluded).
    pub commits: u64,
    /// Length of the global version chain (restart commits included).
    pub chain_len: u64,
    /// True if every site's durable log is a gapless prefix of the
    /// chain and no ledger violation was flagged.
    pub consistent: bool,
    /// Human-readable ledger violations (empty on a correct run).
    pub violations: Vec<String>,
}

/// Where (and how) one node keeps its durable state on disk.
#[derive(Debug, Clone)]
pub struct NodeDurability {
    /// This site's data directory (each site owns its own).
    pub dir: PathBuf,
    /// WAL fsync discipline and rotation threshold.
    pub store: StoreConfig,
}

struct PendingClient {
    id: u64,
    reply: ReplySink,
}

/// A live protocol site: the kernel plus its wall-clock surroundings.
/// Consume with [`Node::run`] on a dedicated thread.
pub struct Node {
    id: SiteId,
    n: usize,
    algorithm: AlgorithmKind,
    actor: SiteActor,
    /// `Some` when this node owns a data directory: every boot and
    /// every [`ClientOp::Recover`] reloads the kernel's durable state
    /// from disk instead of trusting process memory.
    durability: Option<NodeDurability>,
    /// The installed event sink, kept so a disk reboot can re-install
    /// it on the freshly restored kernel.
    sink: Option<Arc<dyn EventSink>>,
    transport: Box<dyn Transport>,
    rx: Receiver<NodeEvent>,
    config: NodeConfig,
    ledger: Arc<ClusterLedger>,
    down: bool,
    reachable: SiteSet,
    /// Wall-clock protocol deadlines, in the shared [`TimerWheel`] (the
    /// simulator arms the same wheel under a virtual clock). Its epoch
    /// is bumped on every crash so timers armed before the crash are
    /// recognizably stale (volatile state they guard is gone).
    timers: TimerWheel<Instant, (TxnId, TimerKind)>,
    /// The cluster-shared counting sink, kept to answer
    /// [`ClientOp::Events`] with this site's tally row.
    events: Option<Arc<CountingSink>>,
    /// This node's reactor counters, kept to answer
    /// [`ClientOp::NetStats`]. `None` under the channel transport.
    net: Option<Arc<NetStats>>,
    pending: HashMap<TxnId, PendingClient>,
    restart_txns: HashSet<TxnId>,
    payload_seq: u64,
    commits: u64,
    rng: StdRng,
    /// Reusable action sink: every kernel call emits into this buffer
    /// and [`Node::apply`] drains it, so the steady-state event loop
    /// allocates no per-event `Vec<Action>`.
    scratch: Vec<Action>,
}

/// How many already-queued inbox events one loop iteration may drain
/// behind the blocking receive before timers fire and the transport
/// flushes. Bounded so a message storm cannot starve timers; large
/// enough that a commit fan-in coalesces into one flush.
const INBOX_BATCH: usize = 128;

impl Node {
    /// Build the runtime for site `id` of an `n`-site cluster running
    /// `algorithm`, reading events from `rx` and sending through
    /// `transport`.
    #[must_use]
    pub fn new(
        id: SiteId,
        n: usize,
        algorithm: AlgorithmKind,
        config: NodeConfig,
        transport: Box<dyn Transport>,
        rx: Receiver<NodeEvent>,
        ledger: Arc<ClusterLedger>,
    ) -> Self {
        let actor = SiteActor::new(id, n, algorithm.instantiate(n));
        let rng = StdRng::seed_from_u64(config.seed ^ (0x9E37 + u64::from(id.0)));
        Node {
            id,
            n,
            algorithm,
            actor,
            durability: None,
            sink: None,
            transport,
            rx,
            config,
            ledger,
            down: false,
            reachable: SiteSet::all(n),
            timers: TimerWheel::new(),
            events: None,
            net: None,
            pending: HashMap::new(),
            restart_txns: HashSet::new(),
            payload_seq: 0,
            commits: 0,
            rng,
            scratch: Vec::new(),
        }
    }

    /// Give this node a data directory: recover the kernel's durable
    /// state from it (snapshot + WAL replay) and install the store as
    /// the kernel's [`dynvote_protocol::Persistence`] hook, so every
    /// durable-write point (prepare records, commit records, log
    /// appends, metadata installs) reaches the WAL before the action
    /// that announced it leaves the node.
    ///
    /// Call before [`Node::run`]. Returns what recovery found.
    pub fn enable_durability(
        &mut self,
        durability: NodeDurability,
    ) -> Result<RecoveryReport, StorageError> {
        let (store, state, report) = SiteStore::open(
            &durability.dir,
            durability.store,
            DurableState::initial(self.n),
        )?;
        let mut actor =
            SiteActor::restore(self.id, self.n, self.algorithm.instantiate(self.n), state);
        actor.set_persistence(Box::new(store));
        if let Some(sink) = &self.sink {
            actor.set_sink(Arc::clone(sink));
        }
        self.actor = actor;
        self.durability = Some(durability);
        Ok(report)
    }

    /// True when this node reloads state from a data directory.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The site's durable committed log (what recovery reconstructed,
    /// for a freshly booted durable node). Used to prime the cluster
    /// ledger before the first post-reboot commit.
    #[must_use]
    pub fn recovered_log(&self) -> &[LogEntry] {
        &self.actor.durable().log
    }

    /// Install the cluster-shared event sink: every protocol event the
    /// kernel emits is counted per site (and, with `trace`, rendered to
    /// stderr as it happens). Must be called before [`Node::run`].
    pub fn set_event_sink(&mut self, counting: Arc<CountingSink>, trace: bool) {
        let sink: Arc<dyn EventSink> = if trace {
            Arc::new(FanoutSink::new(vec![
                counting.clone() as Arc<dyn EventSink>,
                Arc::new(RenderSink),
            ]))
        } else {
            counting.clone()
        };
        self.actor.set_sink(Arc::clone(&sink));
        self.sink = Some(sink);
        self.events = Some(counting);
    }

    /// Share the node's reactor counters so [`ClientOp::NetStats`] can
    /// report them. Called by cluster boot under the TCP transport.
    pub fn set_net_stats(&mut self, stats: Arc<NetStats>) {
        self.net = Some(stats);
    }

    /// Rebuild the kernel from what the data directory says, discarding
    /// process memory — the in-process stand-in for a machine reboot.
    /// Under a group-commit fsync policy this honestly loses whatever
    /// the store had not yet synced.
    ///
    /// # Panics
    ///
    /// On I/O failure, matching the store's own hook discipline: a
    /// durable site that cannot read its own disk cannot rejoin.
    /// Corrupt or torn files do **not** panic — recovery truncates and
    /// reports.
    fn reboot_from_disk(&mut self) {
        let Some(durability) = self.durability.clone() else {
            return;
        };
        let report = self
            .enable_durability(durability)
            .expect("reboot from data dir");
        if let Some(torn) = &report.truncated {
            eprintln!(
                "site {}: WAL tail truncated at epoch {} offset {}: {}",
                self.id, torn.epoch, torn.offset, torn.reason
            );
        }
    }

    /// A durable node that boots with a prepare record on disk is in
    /// doubt on that transaction: before serving any traffic it must
    /// re-acquire the lock the record guards and resume the
    /// termination protocol (Section V-C), exactly as the in-process
    /// recover path does. Without this, the site comes up unlocked —
    /// the next vote request overwrites the prepare record and the
    /// in-doubt commit is orphaned, which can wedge the whole cluster
    /// (a coordinator that committed alone is the only current copy,
    /// and no partition is ever distinguished again). The StatusQuery
    /// broadcast may race the peers' own boots; the PreparedRetry
    /// timer the round arms re-sends it until someone answers.
    fn resume_in_doubt(&mut self) {
        if self.durability.is_none() || !self.actor.is_in_doubt() {
            return;
        }
        let payload = self.fresh_payload();
        self.actor.recover(payload, &mut self.scratch);
        self.apply();
        self.transport.flush();
    }

    /// The event loop: block on the inbox up to the next timer
    /// deadline, drain the burst queued behind the first event
    /// (bounded by [`INBOX_BATCH`]), fire due timers, flush the
    /// transport once for the whole batch, repeat until
    /// [`NodeEvent::Shutdown`].
    ///
    /// The single flush per iteration is what makes the TCP hot path
    /// cheap: every frame the batch produced for one peer leaves in
    /// one `write_all`. Idle timeouts also flush, so nothing lingers
    /// buffered when traffic stops.
    pub fn run(mut self) {
        self.resume_in_doubt();
        'outer: loop {
            let timeout = self
                .next_timer_in()
                .unwrap_or(Duration::from_millis(50))
                .min(Duration::from_millis(50));
            match self.rx.recv_timeout(timeout) {
                Ok(NodeEvent::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Ok(event) => {
                    self.handle_event(event);
                    for _ in 1..INBOX_BATCH {
                        match self.rx.try_recv() {
                            Ok(NodeEvent::Shutdown) | Err(TryRecvError::Disconnected) => {
                                break 'outer;
                            }
                            Ok(event) => self.handle_event(event),
                            Err(TryRecvError::Empty) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
            self.fire_due_timers();
            // Between batches: rotate the WAL if it has grown past the
            // configured threshold (no-op for amnesiac nodes).
            self.actor.maybe_checkpoint();
            self.transport.flush();
        }
        self.transport.flush();
        for (_, client) in self.pending.drain() {
            client.reply.send(client.id, ClientReply::Down);
        }
    }

    fn handle_event(&mut self, event: NodeEvent) {
        match event {
            NodeEvent::Peer { from, msg } => {
                // A crashed site hears nothing; a partitioned-away
                // sender's frames are dropped at the boundary.
                if self.down || !self.reachable.contains(from) {
                    return;
                }
                self.actor.handle_message(from, msg, &mut self.scratch);
                self.apply();
            }
            NodeEvent::Client { id, op, reply } => self.handle_client(id, op, reply),
            NodeEvent::Shutdown => {}
        }
    }

    fn handle_client(&mut self, id: u64, op: ClientOp, reply: ReplySink) {
        match op {
            ClientOp::Update => {
                if self.down {
                    reply.send(id, ClientReply::Down);
                    return;
                }
                let payload = self.fresh_payload();
                self.actor.start_update(payload, &mut self.scratch);
                self.register_client(id, reply);
                self.apply();
            }
            ClientOp::Read => {
                if self.down {
                    reply.send(id, ClientReply::Down);
                    return;
                }
                self.actor.start_read(&mut self.scratch);
                self.register_client(id, reply);
                self.apply();
            }
            ClientOp::Crash => {
                if !self.down {
                    self.down = true;
                    // Lazy cancellation: already-armed entries become
                    // stale and are skimmed off at the next peek/pop.
                    self.timers.bump_epoch();
                    self.actor.crash();
                    for (_, client) in self.pending.drain() {
                        client.reply.send(client.id, ClientReply::Down);
                    }
                }
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::Recover => {
                if self.down {
                    self.down = false;
                    // A durable site restarts from its disk, not from
                    // whatever this process still holds in memory —
                    // the same code path a genuinely rebooted process
                    // takes.
                    self.reboot_from_disk();
                    let payload = self.fresh_payload();
                    self.actor.recover(payload, &mut self.scratch);
                    // Tag the Make_Current transaction (if one started)
                    // so its commit is booked as restart traffic.
                    for action in &self.scratch {
                        if let Action::Broadcast {
                            msg: Message::VoteRequest { txn },
                        } = action
                        {
                            self.restart_txns.insert(*txn);
                        }
                    }
                    self.apply();
                }
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::SetReachable(set) => {
                self.reachable = set;
                reply.send(id, ClientReply::Ok);
            }
            ClientOp::Probe => {
                reply.send(
                    id,
                    ClientReply::Probe {
                        meta: self.actor.meta(),
                        locked: self.actor.is_locked(),
                        in_doubt: self.actor.is_in_doubt(),
                        down: self.down,
                    },
                );
            }
            ClientOp::Events => {
                let counts = self
                    .events
                    .as_ref()
                    .map(|sink| sink.tallies().row(self.id).to_vec())
                    .unwrap_or_default();
                reply.send(id, ClientReply::Events { counts });
            }
            ClientOp::Audit => {
                // Consistency seen from this node: its own log is a
                // gapless chain prefix AND no commit anywhere was
                // flagged divergent — so remote auditors (the loadgen
                // CLI) learn about ledger violations too.
                let consistent = self.ledger.violations().is_empty()
                    && self
                        .ledger
                        .check_log(self.actor.log(), self.actor.meta().version);
                reply.send(
                    id,
                    ClientReply::Audit {
                        commits: self.commits,
                        log_len: self.actor.log().len() as u64,
                        consistent,
                    },
                );
            }
            ClientOp::DumpLog => {
                reply.send(
                    id,
                    ClientReply::Log {
                        meta: self.actor.meta(),
                        entries: self.actor.log().to_vec(),
                    },
                );
            }
            ClientOp::Status => {
                reply.send(
                    id,
                    ClientReply::Status {
                        algorithm: self.algorithm.to_string(),
                        meta: self.actor.meta(),
                        reachable: self.reachable,
                        locked: self.actor.is_locked(),
                        in_doubt: self.actor.is_in_doubt(),
                        down: self.down,
                        log_len: self.actor.log().len() as u64,
                        commits: self.commits,
                        wal_epoch: self.actor.wal_epoch(),
                    },
                );
            }
            ClientOp::NetStats => {
                let counts = self
                    .net
                    .as_ref()
                    .map(|stats| stats.snapshot())
                    .unwrap_or_default();
                reply.send(id, ClientReply::NetStats { counts });
            }
        }
    }

    /// Park the client on the transaction its request started, found by
    /// scanning the kernel's first action batch — still sitting in the
    /// scratch sink — (the kernel does not return the `TxnId`
    /// directly).
    fn register_client(&mut self, id: u64, reply: ReplySink) {
        let txn = self.scratch.iter().find_map(|action| match action {
            Action::Broadcast {
                msg: Message::VoteRequest { txn },
            }
            | Action::Resolved { txn, .. }
            | Action::SetTimer { txn, .. } => Some(*txn),
            _ => None,
        });
        match txn {
            Some(txn) => {
                self.pending.insert(txn, PendingClient { id, reply });
            }
            // The kernel refused to start anything — treat as busy.
            None => reply.send(id, ClientReply::Busy),
        }
    }

    /// Drain the scratch sink, interpreting each action. The buffer is
    /// taken out of `self` for the duration (no kernel re-entry happens
    /// inside) and put back with its capacity intact.
    fn apply(&mut self) {
        // Durability barrier first: whatever the kernel just recorded
        // through its persistence hooks must be on disk (per the fsync
        // policy) before any send or client reply below announces it.
        self.actor.sync_persistence();
        let mut actions = std::mem::take(&mut self.scratch);
        // Ledger bookkeeping first: a commit must be globally recorded
        // before the Commit fan-out below can trigger a dependent
        // commit (version + 1) on another thread, or the ledger would
        // flag a spurious gap.
        let mut committed: HashMap<TxnId, u64> = HashMap::new();
        for action in &actions {
            if let Action::CommitRecorded {
                version,
                payload,
                txn,
            } = action
            {
                self.ledger.record(self.id, *version, *payload);
                committed.insert(*txn, *version);
                if !self.restart_txns.contains(txn) {
                    self.commits += 1;
                }
            }
        }
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.send(to, msg),
                Action::Broadcast { msg } => {
                    for i in 0..self.n {
                        let to = SiteId(i as u8);
                        if to != self.id {
                            self.send(to, msg.clone());
                        }
                    }
                }
                Action::SetTimer { txn, kind } => self.arm_timer(txn, kind),
                Action::Resolved { txn, reason } => {
                    self.restart_txns.remove(&txn);
                    if let Some(client) = self.pending.remove(&txn) {
                        let reply = match reason {
                            ResolveReason::Committed => ClientReply::Committed {
                                version: committed
                                    .get(&txn)
                                    .copied()
                                    .unwrap_or_else(|| self.actor.meta().version),
                            },
                            ResolveReason::ReadServed => ClientReply::ReadServed,
                            ResolveReason::NotDistinguished => ClientReply::Rejected,
                            ResolveReason::LockBusy => ClientReply::Busy,
                            ResolveReason::Timeout => ClientReply::TimedOut,
                        };
                        client.reply.send(client.id, reply);
                    }
                }
                // Group mode is a multi-file transaction-manager hook;
                // the live cluster runs single-file updates only.
                Action::DecisionReady { .. } => {}
                Action::CommitRecorded { .. } => {} // handled above
            }
        }
        self.scratch = actions;
    }

    fn send(&mut self, to: SiteId, msg: Message) {
        if self.down || !self.reachable.contains(to) {
            return;
        }
        self.transport.send(to, &msg);
    }

    fn arm_timer(&mut self, txn: TxnId, kind: TimerKind) {
        let delay = match kind {
            TimerKind::VoteDeadline => self.config.vote_deadline,
            TimerKind::CatchUpDeadline => self.config.catchup_deadline,
            TimerKind::PreparedRetry => {
                let u: f64 = self.rng.gen();
                let ms = self.config.backoff.delay(self.actor.prepared_rounds(), u);
                Duration::from_secs_f64(ms / 1000.0)
            }
        };
        self.timers.schedule(Instant::now() + delay, (txn, kind));
    }

    fn next_timer_in(&mut self) -> Option<Duration> {
        let now = Instant::now();
        self.timers
            .next_deadline()
            .map(|when| when.saturating_duration_since(now))
    }

    fn fire_due_timers(&mut self) {
        while let Some((_, (txn, kind))) = self.timers.pop_due(&Instant::now()) {
            if self.down {
                continue;
            }
            self.actor.timer_fired(txn, kind, &mut self.scratch);
            self.apply();
        }
    }

    /// A cluster-unique payload: site in the top bits, a local counter
    /// below, so divergence checks can attribute every committed value.
    fn fresh_payload(&mut self) -> u64 {
        self.payload_seq += 1;
        ((u64::from(self.id.0) + 1) << 48) | self.payload_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accepts_the_chain_and_flags_divergence() {
        let ledger = ClusterLedger::new();
        ledger.record(SiteId(0), 1, 0x10);
        ledger.record(SiteId(1), 2, 0x20);
        assert_eq!(ledger.chain_len(), 2);
        assert!(ledger.violations().is_empty());

        ledger.record(SiteId(2), 2, 0x99); // divergent re-commit
        ledger.record(SiteId(3), 9, 0x30); // gap
        let violations = ledger.violations();
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("re-committed version 2"));
        assert!(violations[1].contains("committed version 9"));
    }

    #[test]
    fn ledger_checks_logs_as_gapless_prefixes() {
        let ledger = ClusterLedger::new();
        ledger.record(SiteId(0), 1, 0x10);
        ledger.record(SiteId(0), 2, 0x20);
        let full = [
            LogEntry {
                version: 1,
                payload: 0x10,
            },
            LogEntry {
                version: 2,
                payload: 0x20,
            },
        ];
        assert!(ledger.check_log(&full, 2));
        assert!(ledger.check_log(&full[..1], 1)); // stale prefix is fine
        assert!(!ledger.check_log(&full, 1)); // meta out of step
        let diverged = [LogEntry {
            version: 1,
            payload: 0x99,
        }];
        assert!(!ledger.check_log(&diverged, 1));
    }
}
