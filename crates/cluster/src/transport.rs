//! Pluggable inter-site message transports.
//!
//! A [`Transport`] is a node's *outbound* half: the node runtime hands
//! it `(destination, message)` pairs and it delivers them — or silently
//! doesn't, because message loss is a legal fault in the dynamic-voting
//! model and every protocol path tolerates it. The *inbound* half is a
//! plain `mpsc::Sender<NodeEvent>` that the transport's delivery
//! machinery (a peer's channel clone, or a TCP reader thread) feeds.
//!
//! Two implementations:
//!
//! * [`ChannelTransport`] — in-process `std::sync::mpsc` fan-out. Zero
//!   serialization; the fastest way to run a whole cluster inside one
//!   test.
//! * [`TcpTransport`] — loopback TCP with the length-prefixed wire
//!   format of [`crate::wire`]. Sends are *buffered per peer* and
//!   pushed by [`Transport::flush`]: the node runtime flushes once per
//!   event-loop batch, so every frame produced by one batch reaches a
//!   peer in a single `write_all` (one syscall, one TCP segment on
//!   loopback) instead of one write per message. Connections are opened
//!   lazily at flush time, identified by a [`wire::HELLO_PEER`]
//!   preamble, and dropped (to be re-dialed later) on any I/O error — a
//!   send never blocks the protocol on a dead peer.

use crate::node::NodeEvent;
use crate::wire::{self, HELLO_PEER};
use dynvote_core::SiteId;
use dynvote_protocol::Message;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::Sender;
use std::time::Duration;

/// Why an outbound TCP link failed. Delivery stays best-effort — a
/// failed link means lost messages, which the protocol tolerates — but
/// the *cause* is typed and surfaced (see [`TcpTransport::take_error`])
/// instead of being swallowed by `.ok()?` chains.
#[derive(Debug)]
pub enum TransportError {
    /// No listen address is known for the destination site.
    UnknownPeer(SiteId),
    /// Dialing the peer failed or timed out.
    Dial(io::Error),
    /// The [`HELLO_PEER`] preamble could not be written after connecting.
    Hello(io::Error),
    /// Writing buffered frames to an established connection failed.
    Write(io::Error),
    /// Reading from an established connection failed (includes the
    /// peer hanging up — legal message loss, but no longer anonymous).
    Read(io::Error),
    /// A received frame body failed to decode.
    Decode(crate::wire::WireError),
    /// An inbound connection announced an unknown preamble byte.
    BadPreamble(u8),
    /// The node's inbox is closed (shutdown); the connection is done.
    NodeGone,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownPeer(site) => {
                write!(f, "no address known for peer site {site}")
            }
            TransportError::Dial(e) => write!(f, "dialing peer failed: {e}"),
            TransportError::Hello(e) => write!(f, "peer handshake failed: {e}"),
            TransportError::Write(e) => write!(f, "writing to peer failed: {e}"),
            TransportError::Read(e) => write!(f, "reading from connection failed: {e}"),
            TransportError::Decode(e) => write!(f, "malformed frame: {e}"),
            TransportError::BadPreamble(b) => {
                write!(f, "unknown connection preamble byte {b:#04x}")
            }
            TransportError::NodeGone => write!(f, "node inbox closed"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::UnknownPeer(_)
            | TransportError::BadPreamble(_)
            | TransportError::NodeGone => None,
            TransportError::Dial(e)
            | TransportError::Hello(e)
            | TransportError::Write(e)
            | TransportError::Read(e) => Some(e),
            TransportError::Decode(e) => Some(e),
        }
    }
}

/// A node's outbound message path. Delivery is best-effort by design.
pub trait Transport: Send {
    /// Deliver `msg` to site `to`, or drop it if the destination is
    /// unreachable. Must not block indefinitely. A transport may buffer
    /// until [`Transport::flush`].
    fn send(&mut self, to: SiteId, msg: &Message);

    /// Push any buffered frames to the wire. The node runtime calls
    /// this once per event-loop batch (and on idle timeouts); eager
    /// transports need not override the no-op default.
    fn flush(&mut self) {}
}

/// In-process transport: every peer's inbox is an `mpsc` sender.
pub struct ChannelTransport {
    from: SiteId,
    peers: Vec<Sender<NodeEvent>>,
}

impl ChannelTransport {
    /// A transport for site `from`, given every node's inbox (indexed
    /// by site).
    #[must_use]
    pub fn new(from: SiteId, peers: Vec<Sender<NodeEvent>>) -> Self {
        ChannelTransport { from, peers }
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, to: SiteId, msg: &Message) {
        if let Some(peer) = self.peers.get(to.index()) {
            // A closed inbox means the peer shut down — equivalent to a
            // lost message.
            let _ = peer.send(NodeEvent::Peer {
                from: self.from,
                msg: msg.clone(),
            });
        }
    }
}

/// How long a lazy peer dial may take before the message is dropped.
/// Loopback connects in microseconds; anything slower means the peer is
/// down and the message is legally lost.
const DIAL_TIMEOUT: Duration = Duration::from_millis(100);

/// Cap on one peer's write buffer. A batch exceeding it is flushed
/// inline, so an unreachable peer cannot pin unbounded memory between
/// flushes (its buffer is discarded when the dial fails).
const MAX_BUFFERED: usize = 256 * 1024;

/// TCP loopback transport with lazy, self-healing peer connections and
/// per-peer write coalescing.
pub struct TcpTransport {
    from: SiteId,
    addrs: Vec<SocketAddr>,
    conns: Vec<Option<TcpStream>>,
    /// Per-peer pending frames: `send` encodes into these (no I/O);
    /// `flush` writes each non-empty buffer in one `write_all` and
    /// clears it, keeping the capacity for the next batch.
    bufs: Vec<Vec<u8>>,
    last_error: Option<TransportError>,
}

impl TcpTransport {
    /// A transport for site `from`, given every node's listen address
    /// (indexed by site).
    #[must_use]
    pub fn new(from: SiteId, addrs: Vec<SocketAddr>) -> Self {
        let conns = addrs.iter().map(|_| None).collect();
        let bufs = addrs.iter().map(|_| Vec::new()).collect();
        TcpTransport {
            from,
            addrs,
            conns,
            bufs,
            last_error: None,
        }
    }

    /// The most recent link failure, if any, clearing it. Messages to a
    /// failed peer are legally lost; this surfaces *why* for operators
    /// and tests.
    pub fn take_error(&mut self) -> Option<TransportError> {
        self.last_error.take()
    }

    fn connect(&self, to: SiteId) -> Result<TcpStream, TransportError> {
        let addr = self
            .addrs
            .get(to.index())
            .ok_or(TransportError::UnknownPeer(to))?;
        let mut stream =
            TcpStream::connect_timeout(addr, DIAL_TIMEOUT).map_err(TransportError::Dial)?;
        stream.set_nodelay(true).map_err(TransportError::Dial)?;
        // Identify this link as a peer link carrying protocol frames.
        stream
            .write_all(&[HELLO_PEER, self.from.0])
            .map_err(TransportError::Hello)?;
        Ok(stream)
    }

    fn flush_peer(&mut self, idx: usize) {
        if self.bufs[idx].is_empty() {
            return;
        }
        if self.conns[idx].is_none() {
            match self.connect(SiteId(idx as u8)) {
                Ok(stream) => self.conns[idx] = Some(stream),
                Err(e) => {
                    // Peer unreachable: the batch is lost (legal), and
                    // the buffer must not grow without bound.
                    self.bufs[idx].clear();
                    self.last_error = Some(e);
                    return;
                }
            }
        }
        let stream = self.conns[idx].as_mut().expect("dialed above");
        let result = stream
            .write_all(&self.bufs[idx])
            .and_then(|()| stream.flush());
        self.bufs[idx].clear();
        if let Err(e) = result {
            // Broken pipe (peer restarted, socket torn down): drop the
            // connection so the next flush re-dials.
            self.conns[idx] = None;
            self.last_error = Some(TransportError::Write(e));
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: SiteId, msg: &Message) {
        let Some(buf) = self.bufs.get_mut(to.index()) else {
            return;
        };
        wire::encode_frame_into(buf, |out| wire::encode_message_into(out, msg));
        if self.bufs[to.index()].len() >= MAX_BUFFERED {
            self.flush_peer(to.index());
        }
    }

    fn flush(&mut self) {
        for idx in 0..self.bufs.len() {
            self.flush_peer(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_protocol::TxnId;
    use std::net::TcpListener;
    use std::sync::mpsc;

    fn abort(seq: u64) -> Message {
        Message::Abort {
            txn: TxnId {
                coordinator: SiteId(0),
                seq,
            },
        }
    }

    #[test]
    fn channel_transport_delivers_with_sender_identity() {
        let (tx, rx) = mpsc::channel();
        let mut t = ChannelTransport::new(SiteId(2), vec![tx.clone(), tx]);
        t.send(SiteId(1), &abort(7));
        match rx.recv().unwrap() {
            NodeEvent::Peer { from, msg } => {
                assert_eq!(from, SiteId(2));
                assert_eq!(msg, abort(7));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn channel_transport_tolerates_closed_and_missing_peers() {
        let (tx, rx) = mpsc::channel();
        drop(rx);
        let mut t = ChannelTransport::new(SiteId(0), vec![tx]);
        t.send(SiteId(0), &abort(1)); // closed inbox
        t.send(SiteId(9), &abort(2)); // out of range
    }

    #[test]
    fn tcp_transport_handshakes_frames_and_survives_peer_loss() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut t = TcpTransport::new(SiteId(3), vec![addr]);

        t.send(SiteId(0), &abort(11));
        t.flush();
        let (mut conn, _) = listener.accept().unwrap();
        let mut hello = [0u8; 2];
        std::io::Read::read_exact(&mut conn, &mut hello).unwrap();
        assert_eq!(hello, [HELLO_PEER, 3]);
        let body = wire::read_frame(&mut conn).unwrap();
        assert_eq!(wire::decode_message(&body).unwrap(), abort(11));

        // Kill the peer; subsequent flushes must not wedge the caller
        // and must re-dial once a listener is back.
        drop(conn);
        drop(listener);
        t.send(SiteId(0), &abort(12));
        t.flush(); // may "succeed" into the dead socket
        t.send(SiteId(0), &abort(13));
        t.flush(); // detects the broken pipe, drops conn, surfaces why
        assert!(t.take_error().is_some(), "link failure is surfaced, typed");
        let listener = TcpListener::bind(addr);
        let Ok(listener) = listener else {
            return; // port got reused by another test runner; nothing more to pin
        };
        t.send(SiteId(0), &abort(14));
        t.flush();
        let (mut conn, _) = listener.accept().unwrap();
        std::io::Read::read_exact(&mut conn, &mut hello).unwrap();
        assert_eq!(hello, [HELLO_PEER, 3]);
        let body = wire::read_frame(&mut conn).unwrap();
        assert_eq!(wire::decode_message(&body).unwrap(), abort(14));
    }

    #[test]
    fn tcp_transport_coalesces_a_batch_into_ordered_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut t = TcpTransport::new(SiteId(1), vec![addr]);

        // Several sends, one flush: all frames arrive, in order.
        for seq in 1..=5 {
            t.send(SiteId(0), &abort(seq));
        }
        t.flush();
        let (mut conn, _) = listener.accept().unwrap();
        let mut hello = [0u8; 2];
        std::io::Read::read_exact(&mut conn, &mut hello).unwrap();
        assert_eq!(hello, [HELLO_PEER, 1]);
        for seq in 1..=5 {
            let body = wire::read_frame(&mut conn).unwrap();
            assert_eq!(wire::decode_message(&body).unwrap(), abort(seq));
        }
    }

    #[test]
    fn unreachable_peer_discards_the_batch_with_a_typed_error() {
        // A port with nothing listening: the dial fails at flush, the
        // buffer is discarded (no unbounded growth) and the cause is
        // typed.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let mut t = TcpTransport::new(SiteId(0), vec![addr]);
        t.send(SiteId(0), &abort(1));
        t.flush();
        match t.take_error() {
            Some(TransportError::Dial(_)) => {}
            other => panic!("expected a dial error, got {other:?}"),
        }
        assert!(t.bufs[0].is_empty(), "failed batch is discarded");
    }
}
